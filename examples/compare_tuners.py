#!/usr/bin/env python3
"""Compare every optimizer in the suite on the same benchmark.

This is the use-case the paper builds the suite for: run many optimization algorithms
against identical tunable kernels and compare how close they get to the optimum within
a fixed evaluation budget.  The comparison runs on a *cache replay* -- the benchmark is
evaluated once (exhaustively or by sampling) and every tuner then draws its
measurements from that cache, exactly how BAT distributes pre-measured campaigns so
that search research does not need a GPU.

Run with::

    python examples/compare_tuners.py [benchmark] [gpu] [budget] [repetitions]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import benchmark_suite, gpu_catalog
from repro.analysis import report
from repro.core.runner import run_tuning
from repro.tuners import all_tuners


def main() -> None:
    benchmark_name = sys.argv[1] if len(sys.argv) > 1 else "pnpoly"
    gpu_name = sys.argv[2] if len(sys.argv) > 2 else "RTX_3090"
    budget = int(sys.argv[3]) if len(sys.argv) > 3 else 150
    repetitions = int(sys.argv[4]) if len(sys.argv) > 4 else 5

    benchmark = benchmark_suite()[benchmark_name]
    gpu = gpu_catalog()[gpu_name]

    sample_size = None if benchmark.space.cardinality <= 100_000 else 5_000
    print(f"Building the {benchmark.display_name} campaign on {gpu.name} "
          f"({'exhaustive' if sample_size is None else f'{sample_size} samples'}) ...")
    cache = benchmark.build_cache(gpu, sample_size=sample_size, seed=1)
    optimum = cache.optimum()
    print(f"  {cache.num_valid:,} valid configurations, optimum {optimum:.3f} ms, "
          f"median {cache.median():.3f} ms")
    print()

    problem = cache.to_problem(strict=False)
    rows = []
    for tuner_name, factory in all_tuners().items():
        relative = []
        evals_to_90 = []
        for rep in range(repetitions):
            problem.reset_cache()
            result = run_tuning(factory(seed=rep), problem, max_evaluations=budget)
            relative.append(optimum / result.best_value)
            needed = result.evaluations_to_reach(0.9, optimum=optimum)
            evals_to_90.append(needed if needed is not None else budget + 1)
        rows.append((tuner_name, f"{np.mean(relative):.3f}", f"{np.min(relative):.3f}",
                     f"{np.median(evals_to_90):.0f}"))

    rows.sort(key=lambda r: -float(r[1]))
    print(report.format_table(
        ("Tuner", "Mean rel. perf", "Worst rel. perf", "Median evals to 90%"), rows,
        title=f"Tuner comparison on {benchmark.display_name} / {gpu.name} "
              f"({budget} evaluations, {repetitions} repetitions)"))


if __name__ == "__main__":
    main()
