#!/usr/bin/env python3
"""Search-difficulty study (the paper's Fig. 3): fitness flow graph + proportion of centrality.

For an exhaustively-searchable benchmark, builds the fitness flow graph of the
landscape on each GPU, computes the PageRank-based proportion-of-centrality metric at
several quality bands, and cross-checks the metric's prediction against an actual local
search: landscapes with a higher centrality proportion should let first-improvement
hill climbing end up closer to the optimum.

Run with::

    python examples/search_difficulty.py [benchmark]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import benchmark_suite, gpu_catalog
from repro.analysis import report
from repro.analysis.centrality_report import centrality_study
from repro.core.runner import run_tuning
from repro.tuners import LocalSearch


def main() -> None:
    benchmark_name = sys.argv[1] if len(sys.argv) > 1 else "pnpoly"
    benchmark = benchmark_suite()[benchmark_name]
    if benchmark.space.cardinality > 100_000:
        raise SystemExit("pick one of the exhaustively searchable benchmarks "
                         "(pnpoly, nbody, convolution, gemm)")
    gpus = gpu_catalog()

    print(f"Exhaustively evaluating {benchmark.display_name} on all four GPUs ...")
    caches = {(benchmark_name, gpu_name): benchmark.build_cache(gpu)
              for gpu_name, gpu in gpus.items()}

    reports = centrality_study(caches, benchmark_names=(benchmark_name,),
                               proportions=(0.01, 0.05, 0.1, 0.2, 0.5))
    print()
    print(report.format_centrality(reports))
    print()

    # Empirical cross-check: run first-improvement local search on each landscape.
    rows = []
    for (name, gpu_name), cache in caches.items():
        optimum = cache.optimum()
        problem = cache.to_problem(strict=False)
        finals = []
        for rep in range(5):
            problem.reset_cache()
            result = run_tuning(LocalSearch(seed=rep, strategy="first"), problem,
                                max_evaluations=150)
            finals.append(optimum / result.best_value)
        rows.append((gpu_name, f"{reports[(name, gpu_name)].value_at(0.05):.3f}",
                     f"{np.mean(finals):.3f}"))
    print(report.format_table(
        ("GPU", "centrality (p=0.05)", "local search mean rel. perf"),
        rows,
        title=f"Centrality metric vs actual local-search outcome ({benchmark.display_name})"))


if __name__ == "__main__":
    main()
