#!/usr/bin/env python3
"""Parallel, resumable measurement campaigns with ``repro.exec``.

The paper's evaluation is built from per-(benchmark, GPU) campaign caches; this
walkthrough shows the execution subsystem that produces them at scale:

1. plan a campaign -- deterministic shards over the search-space index codecs;
2. run it serially (the reference) and in parallel (a process pool), and verify the
   merged caches are *byte-identical*;
3. checkpoint shards to disk, "crash" mid-campaign, and resume without
   re-evaluating completed work;
4. crash-and-recover under *injected* faults: a deterministic ``FaultPlan``
   crashes workers and raises transient errors mid-campaign, a ``RetryPolicy``
   absorbs them, a checkpoint fragment gets corrupted on disk and healed on
   resume -- and the final caches are still byte-identical to the serial
   reference.

Everything here is also reachable without Python::

    python -m repro.exec plan   --benchmarks hotspot --gpus RTX_3090
    python -m repro.exec run    --benchmarks hotspot --workers 4 \
        --max-retries 3 --shard-timeout 600 \
        --checkpoint-dir ckpt/ --output-dir caches/
    python -m repro.exec doctor --checkpoint-dir ckpt/ --fix
    python -m repro.exec resume --checkpoint-dir ckpt/ --workers 4
    python -m repro.exec status --checkpoint-dir ckpt/

Run with::

    python examples/parallel_campaign.py [sample_size] [workers]
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time
from pathlib import Path

from repro import benchmark_suite, gpu_catalog
from repro.exec import (CheckpointStore, Fault, FaultPlan, ParallelExecutor,
                        RetryPolicy, SerialExecutor, ShardPlanner, corrupt_fragment,
                        resume_campaign)


def main() -> None:
    sample_size = int(sys.argv[1]) if len(sys.argv) > 1 else 2_000
    workers = int(sys.argv[2]) if len(sys.argv) > 2 else 4

    benchmarks = benchmark_suite()
    gpus = gpu_catalog()
    sampled = {name: benchmarks[name] for name in ("hotspot", "expdist")}

    # ------------------------------------------------------------------- 1. plan
    planner = ShardPlanner(sampled, gpus, sample_size=sample_size, seed=2023)
    plan = planner.plan()
    print(f"campaign: {len(plan.units)} units, {plan.n_configs} evaluations, "
          f"{len(plan.shards)} shards of <= {plan.shard_size}")
    for row in plan.summary_rows():
        print(f"  {row['benchmark']:>10} on {row['gpu']:<12} {row['mode']:>14} "
              f"seed={row['seed']}  {row['configs']} configs in {row['shards']} shards")

    # ------------------------------------------------- 2. serial vs parallel run
    t0 = time.perf_counter()
    serial = SerialExecutor().run(plan, benchmarks=sampled, gpus=gpus)
    t_serial = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = ParallelExecutor(workers=workers).run(plan, benchmarks=sampled,
                                                     gpus=gpus)
    t_parallel = time.perf_counter() - t0

    identical = all(json.dumps(serial[key].to_dict())
                    == json.dumps(parallel[key].to_dict()) for key in serial)
    print(f"\nserial {t_serial:.2f}s  parallel({workers}w) {t_parallel:.2f}s  "
          f"byte-identical caches: {identical}  "
          f"({os.cpu_count() or 1} core(s) available)")

    # ------------------------------------------- 3. checkpoint, "crash", resume
    with tempfile.TemporaryDirectory() as tmp:
        store = CheckpointStore(Path(tmp) / "ckpt")
        ParallelExecutor(workers=workers).run(plan, benchmarks=sampled, gpus=gpus,
                                              checkpoint=store)
        # Simulate a mid-campaign kill by deleting a third of the fragments;
        # atomic writes mean surviving fragments are always complete.
        for shard in plan.shards:
            if shard.shard_id % 3 == 0:
                os.unlink(store.fragment_path(shard))
        status = store.status(plan)
        print(f"\nafter 'crash': {status['shards_completed']}/"
              f"{status['shards_total']} shards on disk")

        resumed = resume_campaign(store, executor=ParallelExecutor(workers=workers),
                                  benchmarks=sampled, gpus=gpus)
        identical = all(json.dumps(serial[key].to_dict())
                        == json.dumps(resumed[key].to_dict()) for key in serial)
        print(f"resumed campaign byte-identical to uninterrupted serial run: "
              f"{identical}")

    # --------------------------------- 4. chaos: crash, retry, corrupt, heal
    # Shard evaluation is a pure function of (benchmark, GPU, indices), so a
    # retried shard reproduces exactly the rows the first attempt would have
    # written -- faults cost wall-clock time, never correctness.
    shard_ids = [shard.shard_id for shard in plan.shards]
    fault_plan = FaultPlan([
        # First attempt of the first shard dies hard (os._exit in the worker);
        # the parallel executor notices the dead process, respawns the pool
        # slot, and retries the shard.
        Fault(site="worker", kind="crash", shard_id=shard_ids[0], attempts=(0,)),
        # A mid-campaign shard raises a transient error twice before
        # succeeding on its third attempt.
        Fault(site="worker", kind="transient", shard_id=shard_ids[len(shard_ids) // 2],
              attempts=(0, 1)),
    ])
    retry = RetryPolicy(max_retries=3, base_delay=0.01, max_delay=0.1, seed=2023)
    print(f"\nchaos run: crashing shard {shard_ids[0]} once, failing shard "
          f"{shard_ids[len(shard_ids) // 2]} transiently twice "
          f"(backoff for shard {shard_ids[0]}: "
          f"{[round(d, 4) for d in retry.delays(shard_ids[0])]}s)")

    with tempfile.TemporaryDirectory() as tmp:
        store = CheckpointStore(Path(tmp) / "ckpt")
        executor = ParallelExecutor(workers=workers, retry_policy=retry,
                                    shard_timeout=600.0, fault_plan=fault_plan)
        chaotic = executor.run(plan, benchmarks=sampled, gpus=gpus, checkpoint=store)
        identical = all(json.dumps(serial[key].to_dict())
                        == json.dumps(chaotic[key].to_dict()) for key in serial)
        print(f"retries per shard: {executor.retry_counts}  quarantined: "
              f"{len(executor.quarantine)}  byte-identical despite faults: "
              f"{identical}")

        # Now damage a completed fragment on disk (a bit flip, as a failing
        # device or interrupted write would).  ``doctor`` flags it; resume
        # discards and re-executes exactly that shard.
        victim = plan.shards[1]
        corrupt_fragment(store.fragment_path(victim), "bitflip")
        report = store.verify_fragments(plan)
        print(f"after bit flip: {len(report['ok'])} fragments ok, "
              f"{len(report['damaged'])} damaged "
              f"(shard {report['damaged'][0]['shard_id']})")

        healer = ParallelExecutor(workers=workers, retry_policy=retry)
        healed = resume_campaign(store, executor=healer,
                                 benchmarks=sampled, gpus=gpus)
        identical = all(json.dumps(serial[key].to_dict())
                        == json.dumps(healed[key].to_dict()) for key in serial)
        print(f"healed on resume: repaired shards {healer.repaired_shards}, "
              f"byte-identical after repair: {identical}")


if __name__ == "__main__":
    main()
