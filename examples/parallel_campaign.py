#!/usr/bin/env python3
"""Parallel, resumable measurement campaigns with ``repro.exec``.

The paper's evaluation is built from per-(benchmark, GPU) campaign caches; this
walkthrough shows the execution subsystem that produces them at scale:

1. plan a campaign -- deterministic shards over the search-space index codecs;
2. run it serially (the reference) and in parallel (a process pool), and verify the
   merged caches are *byte-identical*;
3. checkpoint shards to disk, "crash" mid-campaign, and resume without
   re-evaluating completed work.

Everything here is also reachable without Python::

    python -m repro.exec plan   --benchmarks hotspot --gpus RTX_3090
    python -m repro.exec run    --benchmarks hotspot --workers 4 \
        --checkpoint-dir ckpt/ --output-dir caches/
    python -m repro.exec resume --checkpoint-dir ckpt/ --workers 4
    python -m repro.exec status --checkpoint-dir ckpt/

Run with::

    python examples/parallel_campaign.py [sample_size] [workers]
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time
from pathlib import Path

from repro import benchmark_suite, gpu_catalog
from repro.exec import CheckpointStore, ParallelExecutor, SerialExecutor, ShardPlanner
from repro.exec import resume_campaign


def main() -> None:
    sample_size = int(sys.argv[1]) if len(sys.argv) > 1 else 2_000
    workers = int(sys.argv[2]) if len(sys.argv) > 2 else 4

    benchmarks = benchmark_suite()
    gpus = gpu_catalog()
    sampled = {name: benchmarks[name] for name in ("hotspot", "expdist")}

    # ------------------------------------------------------------------- 1. plan
    planner = ShardPlanner(sampled, gpus, sample_size=sample_size, seed=2023)
    plan = planner.plan()
    print(f"campaign: {len(plan.units)} units, {plan.n_configs} evaluations, "
          f"{len(plan.shards)} shards of <= {plan.shard_size}")
    for row in plan.summary_rows():
        print(f"  {row['benchmark']:>10} on {row['gpu']:<12} {row['mode']:>14} "
              f"seed={row['seed']}  {row['configs']} configs in {row['shards']} shards")

    # ------------------------------------------------- 2. serial vs parallel run
    t0 = time.perf_counter()
    serial = SerialExecutor().run(plan, benchmarks=sampled, gpus=gpus)
    t_serial = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = ParallelExecutor(workers=workers).run(plan, benchmarks=sampled,
                                                     gpus=gpus)
    t_parallel = time.perf_counter() - t0

    identical = all(json.dumps(serial[key].to_dict())
                    == json.dumps(parallel[key].to_dict()) for key in serial)
    print(f"\nserial {t_serial:.2f}s  parallel({workers}w) {t_parallel:.2f}s  "
          f"byte-identical caches: {identical}  "
          f"({os.cpu_count() or 1} core(s) available)")

    # ------------------------------------------- 3. checkpoint, "crash", resume
    with tempfile.TemporaryDirectory() as tmp:
        store = CheckpointStore(Path(tmp) / "ckpt")
        ParallelExecutor(workers=workers).run(plan, benchmarks=sampled, gpus=gpus,
                                              checkpoint=store)
        # Simulate a mid-campaign kill by deleting a third of the fragments;
        # atomic writes mean surviving fragments are always complete.
        for shard in plan.shards:
            if shard.shard_id % 3 == 0:
                os.unlink(store.fragment_path(shard))
        status = store.status(plan)
        print(f"\nafter 'crash': {status['shards_completed']}/"
              f"{status['shards_total']} shards on disk")

        resumed = resume_campaign(store, executor=ParallelExecutor(workers=workers),
                                  benchmarks=sampled, gpus=gpus)
        identical = all(json.dumps(serial[key].to_dict())
                        == json.dumps(resumed[key].to_dict()) for key in serial)
        print(f"resumed campaign byte-identical to uninterrupted serial run: "
              f"{identical}")


if __name__ == "__main__":
    main()
