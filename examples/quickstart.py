#!/usr/bin/env python3
"""Quickstart: tune one kernel on one (simulated) GPU.

This is the 60-second tour of the public API:

1. pick a benchmark from the suite and a GPU from the catalog,
2. turn the pair into a tuning problem (the shared problem interface),
3. run an optimizer under an evaluation budget,
4. inspect the result and compare it against the known optimum of the search space.

Run with::

    python examples/quickstart.py [benchmark] [gpu] [budget]
"""

from __future__ import annotations

import sys

from repro import benchmark_suite, gpu_catalog
from repro.core.runner import run_tuning
from repro.tuners import GeneticAlgorithm, RandomSearch


def main() -> None:
    benchmark_name = sys.argv[1] if len(sys.argv) > 1 else "gemm"
    gpu_name = sys.argv[2] if len(sys.argv) > 2 else "RTX_3090"
    budget = int(sys.argv[3]) if len(sys.argv) > 3 else 200

    benchmark = benchmark_suite()[benchmark_name]
    gpu = gpu_catalog()[gpu_name]

    print(f"Benchmark : {benchmark.display_name} ({benchmark.description})")
    print(f"Workload  : {benchmark.workload.description} {dict(benchmark.workload.sizes)}")
    print(f"Space     : {benchmark.space.dimensions} parameters, "
          f"{benchmark.space.cardinality:,} raw configurations")
    print(f"Device    : {gpu.name} ({gpu.architecture}, {gpu.sm_count} SMs, "
          f"{gpu.fp32_tflops:.1f} TFLOP/s, {gpu.memory_bandwidth_gb_s:.0f} GB/s)")
    print()

    # The shared problem interface: any tuner can consume this object.
    problem = benchmark.problem(gpu)

    for tuner in (RandomSearch(seed=0), GeneticAlgorithm(seed=0)):
        problem.reset_cache()
        result = run_tuning(tuner, problem, max_evaluations=budget)
        best = result.best_observation
        print(f"--- {tuner.name} ({budget} evaluations) ---")
        print(f"best runtime : {best.value:.3f} ms "
              f"({result.num_failures} failed configurations along the way)")
        print(f"best config  : {best.config}")
        print()

    # For the small benchmarks we can afford the exhaustive optimum as a yardstick.
    if benchmark.space.cardinality <= 20_000:
        cache = benchmark.build_cache(gpu)
        print(f"exhaustive optimum: {cache.optimum():.3f} ms "
              f"(median configuration: {cache.median():.3f} ms)")


if __name__ == "__main__":
    main()
