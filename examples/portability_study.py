#!/usr/bin/env python3
"""Performance-portability study (the paper's Fig. 5) for one benchmark.

Tunes a kernel exhaustively on each of the four simulated GPUs, then transfers each
GPU's optimal configuration to every other GPU and reports what fraction of the
achievable performance the transferred configuration retains.  This is the experiment
behind the paper's headline number: naively reusing a configuration tuned on a
different GPU can leave 40%+ of the performance on the table.

Run with::

    python examples/portability_study.py [benchmark]
"""

from __future__ import annotations

import sys

from repro import benchmark_suite, gpu_catalog
from repro.analysis import report
from repro.analysis.portability import portability_matrix

SUPPORTED = ("pnpoly", "nbody", "convolution", "gemm")


def main() -> None:
    benchmark_name = sys.argv[1] if len(sys.argv) > 1 else "pnpoly"
    if benchmark_name not in SUPPORTED:
        raise SystemExit(f"portability needs an exhaustively searchable benchmark; "
                         f"choose one of {SUPPORTED}")

    benchmark = benchmark_suite()[benchmark_name]
    gpus = gpu_catalog()

    print(f"Exhaustively evaluating {benchmark.display_name} on all four GPUs ...")
    caches = {}
    for gpu_name, gpu in gpus.items():
        caches[gpu_name] = benchmark.build_cache(gpu)
        best = caches[gpu_name].best()
        print(f"  {gpu_name:12s} optimum {best.value:8.3f} ms  config {dict(best.config)}")
    print()

    matrix = portability_matrix(benchmark, caches, gpus)
    print(report.format_portability({benchmark_name: matrix}))
    print()
    source, target, value = matrix.worst_transfer()
    print(f"Worst transfer: the configuration tuned on {source} reaches only "
          f"{value * 100:.1f}% of the optimal performance on {target}.")
    print(f"Mean cross-device retention: {matrix.mean_off_diagonal() * 100:.1f}%.")


if __name__ == "__main__":
    main()
