#!/usr/bin/env python3
"""Registering a custom benchmark and running it through ``repro.exec``.

The suite's benchmark registry is *open*: beyond the seven paper kernels, any factory
that mints a :class:`~repro.kernels.base.KernelBenchmark` can join -- registered as a
**picklable spec** (``"module:factory"`` plus JSON kwargs), never as a live object, so
worker processes can rebuild it by spec alone.  This walkthrough uses a generated
scenario from :mod:`repro.kernels.synthetic` and shows that a runtime-registered
benchmark is a first-class campaign citizen:

1. register a synthetic scenario with :func:`repro.register_benchmark`;
2. ``plan`` a campaign for it through the ``python -m repro.exec`` CLI;
3. ``run`` it serially and in parallel and verify the merged caches are
   *byte-identical*;
4. "crash" the checkpointed run and ``resume`` it -- with the registration gone, the
   spec recorded in the plan manifest rebuilds the scenario;
5. sweep a whole family of generated scenarios with ``run_matrix`` problem specs.

Every CLI call below is ``python -m repro.exec ...`` run in-process; the equivalent
shell command is printed first.  Run with::

    PYTHONPATH=src python examples/custom_benchmark.py
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
from pathlib import Path

from repro import get_benchmark, register_benchmark, unregister_benchmark
from repro.exec import ParallelExecutor, SerialExecutor, ShardPlanner
from repro.exec.cli import main as exec_cli
from repro.kernels.synthetic import FACTORY_SPEC


def run_cli(*argv: str) -> None:
    """Run one ``python -m repro.exec`` command in-process, echoing the shell form."""
    print(f"\n$ python -m repro.exec {' '.join(argv)}")
    code = exec_cli(list(argv))
    if code != 0:
        raise SystemExit(f"command failed with exit code {code}")


def main() -> None:
    gpu = "RTX_3090"
    scenario_kwargs = {"name": "demo_scn", "family": "coupled", "dimensions": 4,
                       "seed": 42, "constraint_density": 0.5, "failure_rate": 0.08}

    # ---------------------------------------------------------------- 1. register
    spec = register_benchmark("demo_scn", FACTORY_SPEC, **scenario_kwargs)
    benchmark = get_benchmark("demo_scn")
    print(f"registered {benchmark.name!r}: {benchmark.space.dimensions} parameters, "
          f"{benchmark.space.cardinality} configurations "
          f"({benchmark.space.count_constrained()} feasible)")
    print(f"spec: {json.dumps(spec.to_dict())}")

    # The CLI needs no registration at all -- a --benchmark-spec argument carries
    # the same spec, and the plan manifest records it.
    spec_argument = "demo_scn=" + json.dumps(spec.to_dict())

    # -------------------------------------------------------------------- 2. plan
    run_cli("plan", "--benchmark-spec", spec_argument,
            "--benchmarks", "demo_scn", "--gpus", gpu)

    # ------------------------------------------------- 3. serial vs parallel run
    planner = ShardPlanner({"demo_scn": benchmark}, gpus=None, shard_size=30)
    plan = planner.plan(units=[planner.unit_for("demo_scn", gpu)])
    serial = SerialExecutor().run(plan, benchmarks={"demo_scn": benchmark})
    parallel = ParallelExecutor(workers=2).run(plan, benchmarks={"demo_scn": benchmark})
    key = ("demo_scn", gpu)
    identical = (json.dumps(serial[key].to_dict())
                 == json.dumps(parallel[key].to_dict()))
    print(f"\nserial vs parallel caches byte-identical: {identical} "
          f"({len(serial[key])} entries, best {serial[key].optimum():.4f} ms)")
    if not identical:
        raise SystemExit("parallel cache diverged from the serial reference")

    with tempfile.TemporaryDirectory() as tmp:
        ckpt = str(Path(tmp) / "ckpt")
        outdir = str(Path(tmp) / "caches")

        run_cli("run", "--benchmark-spec", spec_argument,
                "--benchmarks", "demo_scn", "--gpus", gpu,
                "--shard-size", "30", "--workers", "2",
                "--checkpoint-dir", ckpt, "--output-dir", outdir, "--quiet")
        first = (Path(outdir) / f"demo_scn_{gpu}.json").read_bytes()

        # ------------------------------------------------- 4. "crash" and resume
        fragments = sorted(Path(ckpt).glob("shard_*.json"))
        for fragment in fragments[::2]:
            os.unlink(fragment)
        print(f"\nsimulated crash: deleted {len(fragments[::2])} of "
              f"{len(fragments)} shard fragments")
        # Drop the registration entirely: resume must rebuild the scenario from
        # the spec stored in the checkpoint manifest.
        unregister_benchmark("demo_scn")
        run_cli("status", "--checkpoint-dir", ckpt)
        run_cli("resume", "--checkpoint-dir", ckpt,
                "--output-dir", outdir, "--quiet")
        resumed = (Path(outdir) / f"demo_scn_{gpu}.json").read_bytes()
        print(f"resumed cache byte-identical to the uninterrupted run: "
              f"{resumed == first}")
        if resumed != first:
            raise SystemExit("resumed cache diverged from the uninterrupted run")

    # ------------------------------------------------------- 5. scenario sweeps
    from repro.core.runner import run_matrix
    from repro.kernels.synthetic import scenario_specs
    from repro.tuners.random_search import RandomSearch

    sweep = scenario_specs(4, base_seed=7, dimensions=3, failure_rate=0.0)
    for name, scenario_spec in sweep.items():
        register_benchmark(name, scenario_spec)
    try:
        results = run_matrix({"random": lambda seed=None: RandomSearch(seed=seed)},
                             {name: f"{name}@{gpu}" for name in sweep},
                             max_evaluations=30, seed=1)
        print("\nscenario sweep (random search, 30 evaluations):")
        for (tuner, problem), result in results.items():
            print(f"  {problem:>20}: best {result.best_value:.4f} ms")
    finally:
        for name in sweep:
            unregister_benchmark(name)


if __name__ == "__main__":
    sys.exit(main())
