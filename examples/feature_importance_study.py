#!/usr/bin/env python3
"""Feature-importance study (the paper's Fig. 6) for one benchmark.

Builds the measurement campaign for one benchmark on every GPU, fits the GBDT
regression model on each campaign, and reports the permutation feature importance of
every tuning parameter plus the model's R^2 -- the analysis the paper uses to argue
which parameters matter, that their importance is consistent across GPUs, and that the
interactions between them call for global optimization.

Run with::

    python examples/feature_importance_study.py [benchmark] [sample_size]
"""

from __future__ import annotations

import sys

from repro import benchmark_suite, gpu_catalog
from repro.analysis import report
from repro.analysis.importance import feature_importance, important_parameters


def main() -> None:
    benchmark_name = sys.argv[1] if len(sys.argv) > 1 else "hotspot"
    sample_size = int(sys.argv[2]) if len(sys.argv) > 2 else 3000

    benchmark = benchmark_suite()[benchmark_name]
    gpus = gpu_catalog()

    reports = {}
    for gpu_name, gpu in gpus.items():
        size = None if benchmark.space.cardinality <= 20_000 else sample_size
        print(f"Campaign on {gpu_name} "
              f"({'exhaustive' if size is None else f'{size} samples'}) ...")
        cache = benchmark.build_cache(gpu, sample_size=size, seed=1)
        reports[(benchmark_name, gpu_name)] = feature_importance(
            cache, n_estimators=150, max_depth=5, n_repeats=2)

    print()
    print(report.format_importance(reports, top_k=6))
    print()

    keep = important_parameters(list(reports.values()), threshold=0.05)
    dropped = [p for p in benchmark.space.parameter_names if p not in keep]
    reduced = benchmark.space.reduced(keep) if keep else benchmark.space
    print(f"Parameters with importance >= 0.05 on any GPU : {', '.join(keep)}")
    print(f"Parameters that could be dropped              : {', '.join(dropped) or '(none)'}")
    print(f"Reduced search-space cardinality              : {reduced.cardinality:,} "
          f"(full: {benchmark.space.cardinality:,})")
    totals = [r.total_importance for r in reports.values()]
    print(f"Sum of importances per GPU                    : "
          f"{', '.join(f'{t:.2f}' for t in totals)} "
          f"(values above 1 indicate parameter interactions)")


if __name__ == "__main__":
    main()
