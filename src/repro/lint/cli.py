"""``python -m repro.lint`` -- run the contract checker from the command line.

Exit codes follow the convention of the other repro CLIs:

* ``0`` -- clean (every finding suppressed or baselined);
* ``1`` -- new, unbaselined findings (printed to stdout);
* ``2`` -- usage error (bad arguments, missing paths, unreadable baseline).

``--write-baseline`` snapshots the current findings into the baseline file
(preserving the reasons of entries that still match) and exits 0; commit the file
after filling in each new entry's reason.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core.errors import SerializationError
from repro.lint.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.lint.engine import lint_paths, render_json, render_text
from repro.lint.rules import RULES

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="AST-based contract checker: the ROADMAP standing contracts "
                    "(seeded RNG only, atomic writes, error taxonomy, budget and "
                    "spec protocols) as enforced lint rules.")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint (e.g. src/repro)")
    parser.add_argument("--root", default=".",
                        help="directory report paths are made relative to "
                             "(default: current directory)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="report format (json output is byte-deterministic)")
    parser.add_argument("--baseline", default=None,
                        help=f"baseline file of grandfathered findings "
                             f"(default: {DEFAULT_BASELINE_NAME} under --root, "
                             f"when it exists)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file (report every finding)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="snapshot current findings into the baseline file "
                             "and exit 0")
    parser.add_argument("--select", default=None, metavar="CODES",
                        help="comma-separated rule codes to run (e.g. "
                             "RPL001,RPL003); default: all rules")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule registry and exit")
    return parser


def _list_rules() -> str:
    lines = []
    for rule in RULES:
        scope = ", ".join(rule.scope) if rule.scope else "all modules"
        lines.append(f"{rule.code} {rule.name} [{scope}]")
        lines.append(f"    contract: {rule.contract}")
        for module, reason in sorted(rule.allowlist.items()):
            lines.append(f"    allowlisted: {module} -- {reason}")
    return "\n".join(lines) + "\n"


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        sys.stdout.write(_list_rules())
        return 0
    if not args.paths:
        parser.error("the following arguments are required: paths")

    root = Path(args.root)
    if not root.is_dir():
        parser.error(f"--root {args.root!r} is not a directory")

    select = None
    if args.select:
        select = frozenset(code.strip().upper() for code in args.select.split(","))
        known = {rule.code for rule in RULES}
        unknown = select - known
        if unknown:
            parser.error(f"unknown rule code(s) {sorted(unknown)}; "
                         f"known: {sorted(known)}")

    baseline_path = Path(args.baseline) if args.baseline else root / DEFAULT_BASELINE_NAME
    baseline = None
    if not args.no_baseline and not args.write_baseline and baseline_path.is_file():
        try:
            baseline = Baseline.load(baseline_path)
        except SerializationError as exc:
            print(f"error: unreadable baseline {baseline_path}: {exc}",
                  file=sys.stderr)
            return 2
    elif args.baseline and not baseline_path.is_file() and not args.write_baseline:
        print(f"error: baseline file {baseline_path} does not exist "
              f"(create it with --write-baseline)", file=sys.stderr)
        return 2

    try:
        result = lint_paths(list(args.paths), root, baseline=baseline,
                            select=select)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        previous = (Baseline.load(baseline_path) if baseline_path.is_file()
                    else None)
        snapshot = Baseline.from_findings(result.findings, previous=previous)
        snapshot.save(baseline_path)
        print(f"wrote {len(snapshot.entries)} baseline entr"
              f"{'y' if len(snapshot.entries) == 1 else 'ies'} to {baseline_path}")
        return 0

    render = render_json if args.format == "json" else render_text
    sys.stdout.write(render(result))
    return result.exit_code
