"""Discovery, rule execution, suppression/baseline filtering, and reporting.

Everything here is deterministic by construction, matching the repo's byte-identity
discipline: files are discovered in sorted POSIX-path order, findings sort by
``(path, line, col, code, message)``, reports carry no timestamps or absolute paths,
and the JSON reporter emits byte-identical output for the same tree no matter the
argument order or filesystem enumeration order.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.findings import Finding, fingerprint
from repro.lint.rules import LintContext, rules_for_module
from repro.lint.suppressions import scan_suppressions

__all__ = ["LintResult", "discover_files", "lint_file", "lint_paths",
           "render_text", "render_json"]

#: Meta-code for problems with the lint annotations themselves (reason-less or
#: unused suppressions, unparsable files).  Not suppressible and never baselined.
META_CODE = "RPL000"


@dataclass
class LintResult:
    """Outcome of one lint run (pre-baseline findings are kept for snapshots)."""

    findings: list[Finding] = field(default_factory=list)       # actionable
    baselined: list[Finding] = field(default_factory=list)      # grandfathered
    suppressed: list[Finding] = field(default_factory=list)     # inline-annotated
    stale_baseline: list[dict[str, object]] = field(default_factory=list)
    files_checked: int = 0

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def counts(self) -> dict[str, int]:
        tally: dict[str, int] = {}
        for finding in self.findings:
            tally[finding.code] = tally.get(finding.code, 0) + 1
        return dict(sorted(tally.items()))


def discover_files(paths: list[str | Path], root: Path) -> list[Path]:
    """Resolve ``paths`` to a sorted, duplicate-free list of ``.py`` files.

    Directories are walked recursively.  Sorting happens on the final
    root-relative POSIX strings, so the result -- and every report built from
    it -- is independent of argument order and directory enumeration order.
    """
    files: set[Path] = set()
    for entry in paths:
        path = Path(entry)
        if not path.is_absolute():
            path = root / path
        if path.is_dir():
            files.update(p for p in path.rglob("*.py") if p.is_file())
        elif path.is_file():
            files.add(path)
        else:
            raise FileNotFoundError(f"lint target does not exist: {entry}")
    return sorted(files, key=lambda p: _relative(p, root))


def _relative(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.resolve().as_posix()


def _module_name(rel_path: str) -> str:
    """Dotted module for a root-relative path, anchored at its last ``repro`` part.

    Files outside any ``repro`` package (fixtures, scripts) get ``""`` -- scoped
    rules skip them, unscoped rules still run.
    """
    parts = list(Path(rel_path).parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts.pop()
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return ".".join(parts[index:])
    return ""


def lint_file(path: Path, root: Path,
              select: frozenset[str] | None = None) -> tuple[list[Finding], list[Finding]]:
    """Lint one file; returns ``(findings, suppressed)`` in sorted order."""
    rel = _relative(path, root)
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=rel)
    except SyntaxError as exc:
        broken = Finding(path=rel, line=exc.lineno or 1, col=(exc.offset or 1) - 1,
                         code=META_CODE, message=f"file does not parse: {exc.msg}")
        return [_stamp(broken, "")], []
    ctx = LintContext(path=rel, module=_module_name(rel), source=source,
                      lines=tuple(source.splitlines()))
    raw: list[Finding] = []
    for rule in rules_for_module(ctx.module, select=select):
        for line, col, message in rule.check(tree, ctx):
            raw.append(Finding(path=rel, line=line, col=col, code=rule.code,
                               message=message))

    suppressions = scan_suppressions(source)
    kept: list[Finding] = []
    suppressed: list[Finding] = []
    for finding in sorted(raw):
        covered = False
        for suppression in suppressions:
            if finding.code in suppression.codes and suppression.covers(finding.line):
                suppression.used.add(finding.code)
                covered = True
        (suppressed if covered else kept).append(finding)

    for suppression in suppressions:
        unused = [code for code in suppression.codes if code not in suppression.used]
        if unused:
            kept.append(Finding(
                path=rel, line=suppression.line, col=0, code=META_CODE,
                message=f"unused suppression for {', '.join(unused)}: no such "
                        f"finding on the covered line(s); delete or fix the "
                        f"annotation"))
        if not suppression.reason:
            kept.append(Finding(
                path=rel, line=suppression.line, col=0, code=META_CODE,
                message="suppression without a reason; write down why the "
                        "contract may be bent here (# repro: allow[RPL###] "
                        "because ...)"))

    occurrences: dict[tuple[str, str], int] = {}
    stamped: list[Finding] = []
    for finding in sorted(kept):
        stamped.append(_stamp_with(finding, ctx.lines, occurrences))
    stamped_suppressed: list[Finding] = []
    for finding in sorted(suppressed):
        stamped_suppressed.append(_stamp_with(finding, ctx.lines, occurrences))
    return stamped, stamped_suppressed


def _stamp_with(finding: Finding, lines: tuple[str, ...],
                occurrences: dict[tuple[str, str], int]) -> Finding:
    text = lines[finding.line - 1] if 0 < finding.line <= len(lines) else ""
    key = (finding.code, text.strip())
    index = occurrences.get(key, 0)
    occurrences[key] = index + 1
    return _stamp(finding, text, index)


def _stamp(finding: Finding, source_line: str, occurrence: int = 0) -> Finding:
    return Finding(path=finding.path, line=finding.line, col=finding.col,
                   code=finding.code, message=finding.message,
                   fingerprint=fingerprint(finding.path, finding.code,
                                           source_line, occurrence))


def lint_paths(paths: list[str | Path], root: str | Path,
               baseline: "object | None" = None,
               select: frozenset[str] | None = None) -> LintResult:
    """Lint every file under ``paths``; apply ``baseline`` when given.

    ``baseline`` is a :class:`repro.lint.baseline.Baseline` (duck-typed via its
    ``absorbs``/``stale_entries`` methods to keep this module import-light).
    """
    root = Path(root)
    result = LintResult()
    for path in discover_files(paths, root):
        findings, suppressed = lint_file(path, root, select=select)
        result.files_checked += 1
        result.suppressed.extend(suppressed)
        for finding in findings:
            if (baseline is not None and finding.code != META_CODE
                    and baseline.absorbs(finding)):
                result.baselined.append(finding)
            else:
                result.findings.append(finding)
    result.findings.sort()
    result.baselined.sort()
    result.suppressed.sort()
    if baseline is not None:
        result.stale_baseline = baseline.stale_entries()
    return result


# -------------------------------------------------------------------------- reports


def render_text(result: LintResult) -> str:
    """Human-oriented report: one line per finding plus a summary."""
    lines = [finding.render() for finding in result.findings]
    summary = (f"{len(result.findings)} finding(s) in {result.files_checked} "
               f"file(s) ({len(result.baselined)} baselined, "
               f"{len(result.suppressed)} suppressed)")
    lines.append(("clean: " if not result.findings else "") + summary)
    for entry in result.stale_baseline:
        lines.append(f"warning: stale baseline entry {entry['code']} at "
                     f"{entry['path']}:{entry['line']} no longer matches; "
                     f"refresh with --write-baseline")
    return "\n".join(lines) + "\n"


def render_json(result: LintResult) -> str:
    """Machine-oriented report; byte-identical across runs on the same tree."""
    payload = {
        "version": 1,
        "files_checked": result.files_checked,
        "counts": result.counts(),
        "findings": [finding.to_dict() for finding in result.findings],
        "baselined": [finding.to_dict() for finding in result.baselined],
        "suppressed": [finding.to_dict() for finding in result.suppressed],
        "stale_baseline": result.stale_baseline,
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
