"""Static contract checking: the ROADMAP's standing contracts as lint rules.

Every determinism contract this repo depends on -- keyed-hash RNG only,
byte-identical merges, atomic writes, the transient/permanent error taxonomy, the
``affordable_evaluations`` budget protocol, JSON-pure benchmark specs -- is enforced
dynamically by the differential and chaos suites.  Those suites only catch a
violation when some test drives the offending path; this package catches the
violation at the *source line*, before any test runs, by walking the AST of the
repo's own code.

Layout:

* :mod:`repro.lint.rules` -- the rule registry (``RPL001``..``RPL006``), each rule a
  small AST check tied to one ROADMAP contract;
* :mod:`repro.lint.suppressions` -- inline ``# repro: allow[RPL###] reason``
  annotations (reasons mandatory, stale allows are themselves findings);
* :mod:`repro.lint.baseline` -- the committed baseline of grandfathered findings,
  fingerprint-anchored so entries expire when the flagged line changes;
* :mod:`repro.lint.engine` -- deterministic discovery, filtering and the
  text/JSON reporters;
* :mod:`repro.lint.cli` -- ``python -m repro.lint src/repro`` (exit 0 clean,
  1 on new findings, 2 on usage errors), the CI entry point.
"""

from repro.lint.baseline import Baseline
from repro.lint.engine import LintResult, lint_file, lint_paths, render_json, render_text
from repro.lint.findings import Finding, fingerprint
from repro.lint.rules import RULES, LintContext, Rule, rule_by_code, rules_for_module
from repro.lint.suppressions import Suppression, scan_suppressions

__all__ = [
    "Baseline",
    "Finding",
    "LintContext",
    "LintResult",
    "RULES",
    "Rule",
    "Suppression",
    "fingerprint",
    "lint_file",
    "lint_paths",
    "render_json",
    "render_text",
    "rule_by_code",
    "rules_for_module",
    "scan_suppressions",
]
