"""The committed baseline: grandfathered findings, each with a recorded reason.

A baseline entry matches findings by :func:`repro.lint.findings.fingerprint` --
content-anchored, so entries survive line drift but expire the moment the flagged
line is edited.  The file is JSON with sorted entries and stable key order, written
through the repo's atomic-write helper, so regenerating it on an unchanged tree is a
byte-level no-op (the same discipline the cache files follow).

Workflow: ``python -m repro.lint src/repro --write-baseline`` snapshots the current
findings (preserving reasons of entries that still match, stamping ``TODO: justify``
on new ones -- fill those in before committing).  A baseline entry should say *why*
the finding is acceptable, not just that it is old.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Mapping

from repro.io.cachefile import atomic_write_json, read_json
from repro.lint.findings import Finding

__all__ = ["Baseline", "DEFAULT_BASELINE_NAME"]

#: Looked up in the current directory when ``--baseline`` is not given.
DEFAULT_BASELINE_NAME = "lint_baseline.json"

BASELINE_VERSION = 1

_TODO_REASON = "TODO: justify this grandfathered finding"


class Baseline:
    """Fingerprint-keyed set of grandfathered findings."""

    def __init__(self, entries: Mapping[str, dict[str, object]] | None = None):
        self.entries: dict[str, dict[str, object]] = dict(entries or {})
        self.matched: set[str] = set()

    # ------------------------------------------------------------------ persistence

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        payload = read_json(path)
        entries = {}
        for entry in payload.get("findings", []):
            entries[str(entry["fingerprint"])] = dict(entry)
        return cls(entries)

    @classmethod
    def from_findings(cls, findings: Iterable[Finding],
                      previous: "Baseline | None" = None) -> "Baseline":
        """Snapshot ``findings``, carrying reasons over from ``previous``."""
        entries: dict[str, dict[str, object]] = {}
        for finding in findings:
            old = previous.entries.get(finding.fingerprint) if previous else None
            reason = str(old.get("reason", _TODO_REASON)) if old else _TODO_REASON
            entries[finding.fingerprint] = {
                "fingerprint": finding.fingerprint,
                "code": finding.code,
                "path": finding.path,
                "line": finding.line,
                "message": finding.message,
                "reason": reason,
            }
        return cls(entries)

    def save(self, path: str | Path) -> Path:
        ordered = sorted(self.entries.values(),
                         key=lambda e: (e["path"], e["line"], e["code"],
                                        e["fingerprint"]))
        # Canonical key order inside each entry: the file must be byte-identical
        # no matter how the entries were assembled (loaded, snapshotted, edited).
        canonical = [{key: entry[key] for key in sorted(entry)} for entry in ordered]
        payload = {"baseline_version": BASELINE_VERSION, "findings": canonical}
        return atomic_write_json(payload, path)

    # -------------------------------------------------------------------- filtering

    def absorbs(self, finding: Finding) -> bool:
        """True (and recorded as matched) when ``finding`` is grandfathered."""
        if finding.fingerprint in self.entries:
            self.matched.add(finding.fingerprint)
            return True
        return False

    def stale_entries(self) -> list[dict[str, object]]:
        """Entries no match consumed -- the flagged code was fixed or edited."""
        return sorted((entry for key, entry in self.entries.items()
                       if key not in self.matched),
                      key=lambda e: (e["path"], e["line"], e["code"],
                                     e["fingerprint"]))
