"""Inline suppression comments: ``# repro: allow[RPL001] reason``.

A suppression silences named rule codes on the line carrying the comment; a comment
that stands alone on its line covers the *next* line instead (for statements too long
to share a line with their annotation).  The reason text after the bracket is
mandatory -- an allow that does not say *why* the contract may be bent is itself a
finding (``RPL000``), as is an allow that no finding matches (stale annotations rot
into misinformation).

Multiple codes may share one comment: ``# repro: allow[RPL001,RPL003] reason``.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

__all__ = ["Suppression", "scan_suppressions", "ALLOW_PATTERN"]

#: Matches ``repro: allow[...]`` comments carrying one or more RPL codes plus an
#: optional free-text reason (the engine makes a missing reason a finding).
ALLOW_PATTERN = re.compile(
    r"#\s*repro:\s*allow\[\s*(?P<codes>RPL\d{3}(?:\s*,\s*RPL\d{3})*)\s*\]\s*(?P<reason>.*)")


@dataclass
class Suppression:
    """One parsed allow comment."""

    line: int                      # line carrying the comment (1-based)
    codes: tuple[str, ...]
    reason: str
    target: int                    # line the suppression covers (== line when trailing)
    used: set[str] = field(default_factory=set)   # codes that suppressed a finding

    def covers(self, line: int) -> bool:
        return line == self.line or line == self.target


def scan_suppressions(source: str) -> list[Suppression]:
    """Extract every allow comment from ``source`` (robust to ``#`` inside strings).

    A trailing comment covers its own line; a standalone comment covers the next
    *code* line, skipping over blank lines and the rest of its comment block (so a
    reason may wrap across several comment lines).  Tokenization errors fall back
    to a line-by-line regex scan so a file the lint parser itself rejects still
    has its annotations honoured.
    """
    lines = source.splitlines()
    suppressions: list[Suppression] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, ValueError):
        for number, text in enumerate(lines, start=1):
            match = ALLOW_PATTERN.search(text)
            if match is not None:
                suppressions.append(_build(match, number, lines))
        return suppressions
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = ALLOW_PATTERN.search(token.string)
        if match is None:
            continue
        suppressions.append(_build(match, token.start[0], lines))
    return suppressions


def _build(match: "re.Match[str]", line: int, lines: list[str]) -> Suppression:
    codes = tuple(code.strip() for code in match.group("codes").split(","))
    return Suppression(line=line, codes=codes, reason=match.group("reason").strip(),
                       target=_target_line(line, lines))


def _target_line(line: int, lines: list[str]) -> int:
    """The line a comment at ``line`` covers (1-based; itself when trailing)."""
    text = lines[line - 1] if 0 < line <= len(lines) else ""
    if not text.lstrip().startswith("#"):
        return line  # trailing comment: covers its own statement
    for number in range(line + 1, len(lines) + 1):
        stripped = lines[number - 1].strip()
        if stripped and not stripped.startswith("#"):
            return number
    return line
