"""The contract rules: each ROADMAP standing contract as an AST check.

Every rule is a small class with a ``code`` (``RPL###``), the ROADMAP contract it
enforces, an optional module ``scope`` (dotted prefixes the rule applies to -- rules
without a scope run everywhere), an optional module ``allowlist`` (dotted prefixes
exempted *by design*, each with a recorded reason), and a ``check`` method yielding
``(line, col, message)`` violations for one parsed module.

Rules are registered in :data:`RULES` in code order; :func:`rules_for_module` applies
scope and allowlist filtering.  The registry is deliberately open -- a new contract
earns a new ``RPL###`` class here plus good/bad fixtures in ``tests/test_lint.py``.

Static analysis is conservative by construction: these checks flag the *sanctioned
form* being bypassed (a ``random.random()`` call, a bare ``open(path, "w")``), not
every conceivable leak.  Anything flagged that is genuinely fine carries an inline
``# repro: allow[RPL###] reason`` annotation -- the point is that the exception is
written down next to the code, reviewed, and re-surfaced the moment the line changes.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

__all__ = ["LintContext", "Rule", "RULES", "rules_for_module", "rule_by_code"]

Violation = tuple[int, int, str]


@dataclass(frozen=True)
class LintContext:
    """Everything a rule may consult about the module under analysis."""

    path: str          # root-relative POSIX path
    module: str        # dotted module name ("" when not under a repro package)
    source: str
    lines: tuple[str, ...]


class Rule:
    """Base class: subclasses define ``code``/``name``/``contract`` and ``check``."""

    code: str = ""
    name: str = ""
    #: One-line pointer to the ROADMAP standing contract this rule enforces.
    contract: str = ""
    #: Dotted module prefixes the rule is limited to (None = every module).
    scope: tuple[str, ...] | None = None
    #: Dotted module prefixes exempted by design, each with its recorded reason.
    allowlist: dict[str, str] = {}

    def check(self, tree: ast.Module, ctx: LintContext) -> Iterator[Violation]:
        raise NotImplementedError

    @classmethod
    def applies_to(cls, module: str) -> bool:
        if cls.scope is not None and not _under(module, cls.scope):
            return False
        if cls.allowlist and _under(module, tuple(cls.allowlist)):
            return False
        return True


def _under(module: str, prefixes: tuple[str, ...]) -> bool:
    return any(module == p or module.startswith(p + ".") for p in prefixes)


def _dotted(node: ast.AST) -> str:
    """``a.b.c`` for a Name/Attribute chain, ``""`` for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


# --------------------------------------------------------------------------- RPL001


class NoGlobalRandomness(Rule):
    """RPL001: no process-global RNG state -- determinism is per-seed, not per-run.

    The byte-identical-trajectory and serial/parallel-identity contracts rest on
    every random draw coming from an explicitly seeded stream: ``np.random.Generator``
    instances, ``random.Random(seed)`` instances, or the keyed blake2b hashes of
    :func:`repro.exec.retry.unit_uniform`.  The module-level ``random.*`` functions,
    the legacy ``np.random.*`` API, ``uuid.uuid4`` and ``os.urandom`` all read hidden
    global (or OS) entropy, so one call anywhere in a worker path silently breaks
    identity fleet-wide.  ``import random`` itself is flagged: even a module that only
    constructs seeded ``random.Random`` instances must say so in an annotation, so the
    global-state functions never drift in unnoticed.
    """

    code = "RPL001"
    name = "no-global-rng"
    contract = "Byte-identical trajectories / serial-parallel-resume identity"

    #: random module attributes that do NOT touch the global Mersenne state.
    _RANDOM_OK = frozenset({"Random", "SystemRandom"})
    #: np.random attributes that are part of the sanctioned Generator API.
    _NP_RANDOM_OK = frozenset({
        "default_rng", "Generator", "SeedSequence", "BitGenerator", "PCG64",
        "PCG64DXSM", "MT19937", "Philox", "SFC64", "RandomState",
    })
    _ENTROPY_CALLS = frozenset({"uuid.uuid1", "uuid.uuid4", "os.urandom",
                                "secrets.token_bytes", "secrets.token_hex",
                                "secrets.token_urlsafe", "secrets.randbelow",
                                "secrets.choice"})

    def check(self, tree: ast.Module, ctx: LintContext) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        yield (node.lineno, node.col_offset,
                               "'import random' exposes the process-global RNG; "
                               "use a seeded np.random.Generator or keyed hashes "
                               "(repro.exec.retry.unit_uniform), or annotate why "
                               "only seeded random.Random instances are built")
                    elif alias.name == "secrets":
                        yield (node.lineno, node.col_offset,
                               "'import secrets' draws OS entropy, which can never "
                               "be reproduced from a seed")
            elif isinstance(node, ast.ImportFrom) and node.module == "random":
                bad = [a.name for a in node.names if a.name not in self._RANDOM_OK]
                if bad:
                    yield (node.lineno, node.col_offset,
                           f"importing {', '.join(sorted(bad))} from random binds "
                           f"process-global RNG state; seed an explicit "
                           f"random.Random/np.random.Generator instead")
            elif isinstance(node, ast.Call):
                yield from self._check_call(node)

    def _check_call(self, node: ast.Call) -> Iterator[Violation]:
        dotted = _dotted(node.func)
        if not dotted:
            return
        head, _, tail = dotted.partition(".")
        if head == "random" and tail and tail not in self._RANDOM_OK:
            yield (node.lineno, node.col_offset,
                   f"random.{tail}() draws from the process-global RNG; use a "
                   f"seeded random.Random / np.random.Generator stream")
        elif dotted in self._ENTROPY_CALLS:
            yield (node.lineno, node.col_offset,
                   f"{dotted}() reads OS entropy and cannot be replayed from a "
                   f"seed; derive identifiers from keyed hashes instead")
        elif dotted in ("uuid4", "uuid1", "urandom"):
            yield (node.lineno, node.col_offset,
                   f"{dotted}() reads OS entropy and cannot be replayed from a seed")
        else:
            parts = dotted.split(".")
            if (len(parts) >= 3 and parts[-2] == "random"
                    and parts[0] in ("np", "numpy")
                    and parts[-1] not in self._NP_RANDOM_OK):
                yield (node.lineno, node.col_offset,
                       f"{dotted}() uses the legacy global np.random API; use "
                       f"np.random.default_rng(seed) / a passed-in Generator")


# --------------------------------------------------------------------------- RPL002


class NoWallClockValues(Rule):
    """RPL002: no clock reads feeding values that can reach fragments or caches.

    Merged caches, fragments and trajectories must be pure functions of
    ``(benchmark, GPU, seed)``; a timestamp mixed into any persisted value breaks
    resume-vs-uninterrupted byte identity in a way no test notices until the bytes
    differ.  Clock reads are therefore confined to the allowlisted progress/ETA
    reporter (display only); everywhere else a clock read is flagged, including
    the monotonic timers -- "it's only for scheduling" is exactly the claim an
    annotation or baseline entry should record.  (The executor's deadline/backoff
    reads are grandfathered in the committed baseline with that rationale; the
    chaos suite backs the claim by asserting merged bytes under every timing.)
    """

    code = "RPL002"
    name = "no-wall-clock"
    contract = "Serial/parallel/resume identity (deterministic cache bytes)"
    allowlist = {
        "repro.exec.progress":
            "display-only ETA/rate reporting; values never reach fragments",
    }

    _CLOCK_CALLS = frozenset({
        "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
        "time.perf_counter", "time.perf_counter_ns", "time.localtime",
        "time.gmtime", "time.ctime", "time.strftime",
        "datetime.now", "datetime.utcnow", "datetime.today", "date.today",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
    })

    def check(self, tree: ast.Module, ctx: LintContext) -> Iterator[Violation]:
        call_funcs = {id(node.func) for node in ast.walk(tree)
                      if isinstance(node, ast.Call)}
        for node in ast.walk(tree):
            dotted = ""
            if isinstance(node, ast.Call):
                dotted = _dotted(node.func)
            elif isinstance(node, ast.Attribute) and id(node) not in call_funcs:
                # Bare references (e.g. a clock default argument) count too; the
                # call_funcs exclusion keeps a called clock from reporting twice.
                dotted = _dotted(node)
            if dotted in self._CLOCK_CALLS:
                yield (node.lineno, node.col_offset,
                       f"{dotted} reads the clock; deterministic paths must not "
                       f"let timing feed values that reach fragments/caches "
                       f"(progress/ETA display lives in repro.exec.progress)")


# --------------------------------------------------------------------------- RPL003


class AtomicWritesOnly(Rule):
    """RPL003: persistence modules must write through the atomic helpers.

    ``repro.io`` and ``repro.exec`` promise that readers never observe a torn file:
    every write lands in a temporary sibling and is moved into place with
    ``os.replace`` (``atomic_write_json`` / ``write_columnar``).  A bare
    ``open(path, "w")`` -- or ``Path.write_text``, or a writable ``os.open`` --
    reintroduces exactly the torn-file window the checkpoint/resume machinery was
    built to close, so inside these packages it is flagged at the call site.  The
    two helper implementations themselves carry annotations: they *are* the
    sanctioned form.
    """

    code = "RPL003"
    name = "atomic-writes-only"
    contract = "Atomic checkpoint fragments / deterministic cache bytes"
    scope = ("repro.io", "repro.exec")

    _OPEN_FUNCS = frozenset({"open", "io.open", "gzip.open", "bz2.open",
                             "lzma.open"})
    _WRITE_FLAGS = frozenset({"O_WRONLY", "O_RDWR", "O_APPEND", "O_TRUNC",
                              "O_CREAT"})

    def check(self, tree: ast.Module, ctx: LintContext) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted in self._OPEN_FUNCS:
                mode = self._mode_argument(node)
                if mode is None:
                    continue  # no mode argument: read-only "r" default
                if not isinstance(mode, ast.Constant) or not isinstance(mode.value, str):
                    yield (node.lineno, node.col_offset,
                           f"{dotted}() with a non-literal mode cannot be verified "
                           f"read-only; pass a literal mode or use the atomic "
                           f"write helpers")
                elif any(flag in mode.value for flag in "wax+"):
                    yield (node.lineno, node.col_offset,
                           f"{dotted}(..., {mode.value!r}) writes in place; "
                           f"torn files break the checkpoint contract -- go "
                           f"through atomic_write_json/write_columnar")
            elif dotted == "os.open":
                flags = {name for arg in node.args for name in _flag_names(arg)}
                if flags & self._WRITE_FLAGS:
                    yield (node.lineno, node.col_offset,
                           f"os.open with {sorted(flags & self._WRITE_FLAGS)} "
                           f"opens for writing; use the atomic write helpers")
            elif (isinstance(node.func, ast.Attribute)
                  and node.func.attr in ("write_text", "write_bytes")):
                yield (node.lineno, node.col_offset,
                       f".{node.func.attr}() writes in place; torn files break "
                       f"the checkpoint contract -- go through the atomic "
                       f"write helpers")

    @staticmethod
    def _mode_argument(node: ast.Call) -> ast.expr | None:
        for keyword in node.keywords:
            if keyword.arg == "mode":
                return keyword.value
        if len(node.args) >= 2:
            return node.args[1]
        return None


def _flag_names(node: ast.AST) -> Iterator[str]:
    for child in ast.walk(node):
        if isinstance(child, ast.Attribute):
            yield child.attr
        elif isinstance(child, ast.Name):
            yield child.id


# --------------------------------------------------------------------------- RPL004


class ExecErrorTaxonomy(Rule):
    """RPL004: ``repro.exec`` speaks the transient/permanent error taxonomy.

    Retry, quarantine and heal-on-resume all route through
    :func:`repro.core.errors.is_transient`; an anonymous ``raise Exception(...)``
    is unclassifiable (silently treated as permanent), and an
    ``except Exception: pass`` swallows the very signals the taxonomy exists to
    route.  Flagged: raising bare ``Exception``/``BaseException``, bare
    ``except:`` clauses, and ``except Exception`` handlers whose body is only
    ``pass``/``...``.
    """

    code = "RPL004"
    name = "exec-error-taxonomy"
    contract = "Transient/permanent error taxonomy (retry & quarantine routing)"
    scope = ("repro.exec",)

    def check(self, tree: ast.Module, ctx: LintContext) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Raise):
                target = node.exc
                if isinstance(target, ast.Call):
                    target = target.func
                name = _dotted(target) if target is not None else ""
                if name in ("Exception", "BaseException"):
                    yield (node.lineno, node.col_offset,
                           f"raise {name} is unclassifiable under the "
                           f"transient/permanent taxonomy; raise a "
                           f"repro.core.errors class (ExecutionError, "
                           f"TransientExecutionError, ...)")
            elif isinstance(node, ast.ExceptHandler):
                name = _dotted(node.type) if node.type is not None else ""
                if node.type is None:
                    yield (node.lineno, node.col_offset,
                           "bare 'except:' swallows taxonomy signals (including "
                           "KeyboardInterrupt); catch repro.core.errors classes "
                           "or 'except Exception' with explicit handling")
                elif (name in ("Exception", "BaseException")
                      and all(isinstance(stmt, ast.Pass)
                              or (isinstance(stmt, ast.Expr)
                                  and isinstance(stmt.value, ast.Constant)
                                  and stmt.value.value is Ellipsis)
                              for stmt in node.body)):
                    yield (node.lineno, node.col_offset,
                           f"'except {name}: pass' silently swallows failures "
                           f"the retry/quarantine machinery must see; handle, "
                           f"re-raise, or annotate why discarding is safe")


# --------------------------------------------------------------------------- RPL005


class BudgetOverridePairs(Rule):
    """RPL005: narrowing ``Budget.exhausted`` requires ``affordable_evaluations``.

    The bulk-accounting protocol trusts ``affordable_evaluations()`` instead of
    inspecting budget types; a subclass that narrows ``exhausted`` but inherits the
    base ``affordable_evaluations`` answers with the *parent's* allowance, so
    generation-batched tuners overdraw the narrowed cap in one bulk charge -- the
    exact ``_BudgetSlice`` hole PR 5 fixed.  Flagged: any ``Budget`` subclass
    defining ``exhausted`` without also defining ``affordable_evaluations``.
    """

    code = "RPL005"
    name = "budget-override-pairs"
    contract = "Budget accounting (affordable_evaluations capability protocol)"

    def check(self, tree: ast.Module, ctx: LintContext) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            bases = {_dotted(base).rpartition(".")[2] for base in node.bases}
            if "Budget" not in bases:
                continue
            defined = {stmt.name for stmt in node.body
                       if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))}
            if "exhausted" in defined and "affordable_evaluations" not in defined:
                yield (node.lineno, node.col_offset,
                       f"class {node.name} overrides Budget.exhausted without "
                       f"overriding affordable_evaluations(); bulk charges would "
                       f"trust the parent's allowance and overdraw the narrowed "
                       f"cap (the _BudgetSlice bug)")


# --------------------------------------------------------------------------- RPL006


class SerializableSpecKwargs(Rule):
    """RPL006: benchmark registrations travel as JSON -- keep them rebuildable.

    Workers (and, eventually, remote hosts) rebuild every benchmark from its
    :class:`~repro.core.registry.BenchmarkSpec` alone: a ``"module:factory"`` string
    plus JSON-serializable kwargs.  A lambda factory or a kwarg that JSON cannot
    carry (bytes, sets, complex numbers, function references) registers fine in the
    parent and then explodes -- or worse, diverges -- in the worker.  Flagged at the
    registration call site: lambda factories, and keyword/kwargs-dict values that
    are *definitely* not JSON-serializable.  (Dynamic values by name are accepted;
    the runtime canonicalization still guards those.)
    """

    code = "RPL006"
    name = "serializable-spec-kwargs"
    contract = "Benchmark specs are pure constructors (worker rebuild contract)"

    _REGISTRATION_FUNCS = frozenset({"register_benchmark", "temporary_benchmark",
                                     "BenchmarkSpec"})
    _CONTROL_KWARGS = frozenset({"overwrite", "validate"})

    def check(self, tree: ast.Module, ctx: LintContext) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = _dotted(node.func).rpartition(".")[2]
            if name not in self._REGISTRATION_FUNCS:
                continue
            factory_index = 0 if name == "BenchmarkSpec" else 1
            if len(node.args) > factory_index:
                factory = node.args[factory_index]
                if isinstance(factory, ast.Lambda):
                    yield (factory.lineno, factory.col_offset,
                           f"{name}() factory is a lambda; workers rebuild "
                           f"benchmarks from 'module:factory' import paths, which "
                           f"a lambda can never provide")
            values: list[tuple[str, ast.expr]] = []
            for keyword in node.keywords:
                if keyword.arg is None or keyword.arg in self._CONTROL_KWARGS:
                    continue
                values.append((keyword.arg, keyword.value))
            if name == "BenchmarkSpec" and len(node.args) > 1:
                kwargs_arg = node.args[1]
                if isinstance(kwargs_arg, ast.Dict):
                    for key, value in zip(kwargs_arg.keys, kwargs_arg.values):
                        label = (repr(key.value)
                                 if isinstance(key, ast.Constant) else "<kwargs>")
                        values.append((label, value))
            for label, value in values:
                reason = _json_hostile(value)
                if reason is not None:
                    yield (value.lineno, value.col_offset,
                           f"{name}() kwarg {label} is {reason}, which JSON "
                           f"cannot carry through plan manifests and worker "
                           f"initializers")


def _json_hostile(node: ast.expr) -> str | None:
    """A description of why ``node`` can never survive a JSON round trip, or None.

    Conservative: only shapes that are *certainly* unserializable are reported;
    names, calls and comprehensions are left to the runtime canonicalization.
    """
    if isinstance(node, ast.Lambda):
        return "a lambda"
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "a set"
    if isinstance(node, ast.Constant):
        if isinstance(node.value, bytes):
            return "a bytes literal"
        if isinstance(node.value, complex):
            return "a complex literal"
        if node.value is Ellipsis:
            return "Ellipsis"
    if isinstance(node, (ast.List, ast.Tuple)):
        for element in node.elts:
            reason = _json_hostile(element)
            if reason is not None:
                return reason
    if isinstance(node, ast.Dict):
        for value in node.values:
            if value is not None:
                reason = _json_hostile(value)
                if reason is not None:
                    return reason
    return None


# -------------------------------------------------------------------------- registry

RULES: tuple[type[Rule], ...] = (
    NoGlobalRandomness,
    NoWallClockValues,
    AtomicWritesOnly,
    ExecErrorTaxonomy,
    BudgetOverridePairs,
    SerializableSpecKwargs,
)

_BY_CODE = {rule.code: rule for rule in RULES}


def rule_by_code(code: str) -> type[Rule] | None:
    return _BY_CODE.get(code)


def rules_for_module(module: str,
                     select: frozenset[str] | None = None) -> list[Rule]:
    """Instantiate every rule that applies to ``module`` (optionally filtered)."""
    chosen = []
    for rule in RULES:
        if select is not None and rule.code not in select:
            continue
        if rule.applies_to(module):
            chosen.append(rule())
    return chosen
