"""Lint findings and their stable fingerprints.

A :class:`Finding` is one rule violation at one source location.  Findings sort by
``(path, line, col, code, message)`` so every reporter emits them in the same order
regardless of discovery order -- the byte-identical-output discipline the rest of the
repo applies to caches extends to the linter's own reports.

Fingerprints anchor baseline entries (see :mod:`repro.lint.baseline`) to the *content*
of the offending line rather than its number: a finding's fingerprint is a blake2b
digest of ``(path, code, stripped source line, occurrence index)``, so grandfathered
findings survive unrelated edits that shift line numbers, while any edit to the
flagged line itself surfaces the finding again for a fresh look.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

__all__ = ["Finding", "fingerprint"]


def fingerprint(path: str, code: str, source_line: str, occurrence: int) -> str:
    """Stable identity of one finding, independent of its line number.

    ``occurrence`` disambiguates identical source lines within one file (0 for the
    first, 1 for the second, ...), counted in file order over findings that share
    ``(code, stripped line)``.
    """
    text = "::".join((path, code, source_line.strip(), str(occurrence)))
    return hashlib.blake2b(text.encode("utf-8"), digest_size=16).hexdigest()


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    ``path`` is root-relative with POSIX separators (never absolute), which keeps
    reports byte-identical across checkouts.  ``fingerprint`` is excluded from
    ordering (it is derived from the other fields plus file-local context).
    """

    path: str
    line: int
    col: int
    code: str
    message: str
    fingerprint: str = field(default="", compare=False)

    def render(self) -> str:
        """The classic one-line ``path:line:col: CODE message`` form."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_dict(self) -> dict[str, object]:
        return {"path": self.path, "line": self.line, "col": self.col,
                "code": self.code, "message": self.message,
                "fingerprint": self.fingerprint}
