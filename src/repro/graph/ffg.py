"""Fitness flow graph (FFG).

The FFG of Schoonhoven et al. contains every evaluated point of the search space as a
node and a directed edge from a point to each of its neighbours that has *strictly
lower* fitness (shorter runtime).  A random walk on this graph mimics a randomised
first-improvement local search: from any point, the walk moves to a random improving
neighbour until it reaches a node with no outgoing edges -- a local minimum.

The graph is built from an :class:`~repro.core.cache.EvaluationCache`: nodes are the
cache's valid configurations and the neighbourhood is Hamming distance 1 restricted to
configurations that are themselves present in the cache (for exhaustive caches this is
the true neighbourhood; for sampled caches it is the induced subgraph, which is how the
metric degrades gracefully when exhaustive data is unavailable).

Construction is pure index arithmetic: every cached configuration becomes one
mixed-radix index, and the Hamming-1 neighbours along a parameter are the index plus a
digit offset times that parameter's place value.  Candidate neighbour indices for *all*
nodes and all values of a parameter form one ``(n, v)`` matrix that is resolved against
the sorted node-index table with a single :func:`numpy.searchsorted` -- no per-config
dictionaries, no Python inner loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np
from scipy import sparse

from repro.core.cache import EvaluationCache
from repro.core.errors import InvalidConfigurationError, ReproError
from repro.core.searchspace import config_key

__all__ = ["FitnessFlowGraph", "build_ffg"]


@dataclass
class FitnessFlowGraph:
    """A fitness flow graph over an evaluated search space.

    Attributes
    ----------
    adjacency:
        ``(n, n)`` sparse boolean matrix; ``adjacency[i, j]`` is True when there is a
        directed edge from node ``i`` to its strictly-better neighbour ``j``.
    fitness:
        Runtime of each node (lower is better).
    configs:
        The configuration dictionary of each node.
    benchmark / gpu:
        Provenance of the underlying cache.
    """

    adjacency: sparse.csr_matrix
    fitness: np.ndarray
    configs: list[dict[str, Any]]
    benchmark: str = ""
    gpu: str = ""

    @property
    def num_nodes(self) -> int:
        """Number of nodes (evaluated valid configurations)."""
        return int(self.fitness.shape[0])

    @property
    def num_edges(self) -> int:
        """Number of directed improvement edges."""
        return int(self.adjacency.nnz)

    def csr_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """The raw ``(indptr, indices)`` pair of the adjacency structure.

        This is the array-native view :func:`repro.graph.pagerank.pagerank` accepts
        directly, avoiding any per-node Python structures.
        """
        return self.adjacency.indptr, self.adjacency.indices

    def out_degrees(self) -> np.ndarray:
        """Number of improving neighbours of every node (one ``indptr`` difference)."""
        return np.diff(self.adjacency.indptr)

    def local_minima(self) -> np.ndarray:
        """Indices of nodes with no improving neighbour (the walk's absorbing states)."""
        return np.nonzero(self.out_degrees() == 0)[0]

    def global_optimum(self) -> int:
        """Index of the best node."""
        return int(np.argmin(self.fitness))

    def minima_within(self, proportion: float) -> np.ndarray:
        """Local minima whose fitness is within ``(1 + proportion)`` of the optimum."""
        if proportion < 0:
            raise ReproError("proportion must be non-negative")
        minima = self.local_minima()
        threshold = (1.0 + proportion) * float(self.fitness.min())
        return minima[self.fitness[minima] <= threshold]


def _edges_vectorized(space: Any, configs: list[dict[str, Any]],
                      fitness: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Improvement edges by digit-offset arithmetic against a sorted index table."""
    n = len(configs)
    digits = space.digits_of_configs(configs)
    places = np.asarray(space.place_values, dtype=np.int64)
    node_index = space.digits_to_indices(digits)

    order = np.argsort(node_index, kind="stable")
    sorted_index = node_index[order]

    rows: list[np.ndarray] = []
    cols: list[np.ndarray] = []
    for j, parameter in enumerate(space.parameters):
        v = parameter.cardinality
        if v < 2:
            continue
        own_digit = digits[:, j][:, None]                       # (n, 1)
        all_digits = np.arange(v, dtype=np.int64)[None, :]      # (1, v)
        candidates = node_index[:, None] + (all_digits - own_digit) * places[j]
        pos = np.searchsorted(sorted_index, candidates)
        pos[pos == n] = 0
        neighbor = order[pos]                                   # node id where found
        found = (sorted_index[pos] == candidates) & (all_digits != own_digit)
        improving = found & (fitness[neighbor] < fitness[:, None])
        r, c = np.nonzero(improving)
        rows.append(r)
        cols.append(neighbor[r, c])
    if rows:
        return np.concatenate(rows), np.concatenate(cols)
    return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)


def _edges_scalar(space: Any, configs: list[dict[str, Any]],
                  fitness: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Reference hash-map construction (kept for caches whose configurations are not
    members of the space's Cartesian product, and as the benchmark baseline)."""
    index_of = {config_key(c): i for i, c in enumerate(configs)}
    rows: list[int] = []
    cols: list[int] = []
    for i, config in enumerate(configs):
        fi = fitness[i]
        for parameter in space.parameters:
            current = config[parameter.name]
            for other in parameter.all_other_values(current):
                neighbor = dict(config)
                neighbor[parameter.name] = other
                j = index_of.get(config_key(neighbor))
                if j is not None and fitness[j] < fi:
                    rows.append(i)
                    cols.append(j)
    return np.asarray(rows, dtype=np.int64), np.asarray(cols, dtype=np.int64)


def build_ffg(cache: EvaluationCache, method: str = "auto") -> FitnessFlowGraph:
    """Build the fitness flow graph of a campaign cache.

    Parameters
    ----------
    cache:
        The campaign data (valid entries become nodes).
    method:
        ``"vector"`` -- digit-offset index arithmetic (the default path);
        ``"scalar"`` -- the hash-map reference construction;
        ``"auto"`` -- vectorized, falling back to scalar when the cache holds
        configurations outside the space's Cartesian product.

    Complexity of the vectorized path is one ``(n, v)`` index block and one sorted
    lookup per parameter; the scalar path is ``O(n * d * v)`` dictionary probes.
    Both produce the identical edge set.
    """
    if method not in ("auto", "vector", "scalar"):
        raise ReproError(f"unknown FFG build method {method!r}")
    configs, fitness = cache.valid_arrays()
    if not configs:
        raise ReproError(f"cache {cache.benchmark}/{cache.gpu} has no valid entries")

    if method == "scalar":
        rows, cols = _edges_scalar(cache.space, configs, fitness)
    else:
        try:
            rows, cols = _edges_vectorized(cache.space, configs, fitness)
        except InvalidConfigurationError:
            if method == "vector":
                raise
            rows, cols = _edges_scalar(cache.space, configs, fitness)

    n = len(configs)
    adjacency = sparse.csr_matrix(
        (np.ones(len(rows), dtype=np.float64), (rows, cols)), shape=(n, n))
    return FitnessFlowGraph(adjacency=adjacency, fitness=fitness, configs=configs,
                            benchmark=cache.benchmark, gpu=cache.gpu)
