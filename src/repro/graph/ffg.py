"""Fitness flow graph (FFG).

The FFG of Schoonhoven et al. contains every evaluated point of the search space as a
node and a directed edge from a point to each of its neighbours that has *strictly
lower* fitness (shorter runtime).  A random walk on this graph mimics a randomised
first-improvement local search: from any point, the walk moves to a random improving
neighbour until it reaches a node with no outgoing edges -- a local minimum.

The graph is built from an :class:`~repro.core.cache.EvaluationCache`: nodes are the
cache's valid configurations and the neighbourhood is Hamming distance 1 restricted to
configurations that are themselves present in the cache (for exhaustive caches this is
the true neighbourhood; for sampled caches it is the induced subgraph, which is how the
metric degrades gracefully when exhaustive data is unavailable).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np
from scipy import sparse

from repro.core.cache import EvaluationCache
from repro.core.errors import ReproError
from repro.core.searchspace import config_key

__all__ = ["FitnessFlowGraph", "build_ffg"]


@dataclass
class FitnessFlowGraph:
    """A fitness flow graph over an evaluated search space.

    Attributes
    ----------
    adjacency:
        ``(n, n)`` sparse boolean matrix; ``adjacency[i, j]`` is True when there is a
        directed edge from node ``i`` to its strictly-better neighbour ``j``.
    fitness:
        Runtime of each node (lower is better).
    configs:
        The configuration dictionary of each node.
    benchmark / gpu:
        Provenance of the underlying cache.
    """

    adjacency: sparse.csr_matrix
    fitness: np.ndarray
    configs: list[dict[str, Any]]
    benchmark: str = ""
    gpu: str = ""

    @property
    def num_nodes(self) -> int:
        """Number of nodes (evaluated valid configurations)."""
        return int(self.fitness.shape[0])

    @property
    def num_edges(self) -> int:
        """Number of directed improvement edges."""
        return int(self.adjacency.nnz)

    def out_degrees(self) -> np.ndarray:
        """Number of improving neighbours of every node."""
        return np.asarray(self.adjacency.sum(axis=1)).ravel()

    def local_minima(self) -> np.ndarray:
        """Indices of nodes with no improving neighbour (the walk's absorbing states)."""
        return np.nonzero(self.out_degrees() == 0)[0]

    def global_optimum(self) -> int:
        """Index of the best node."""
        return int(np.argmin(self.fitness))

    def minima_within(self, proportion: float) -> np.ndarray:
        """Local minima whose fitness is within ``(1 + proportion)`` of the optimum."""
        if proportion < 0:
            raise ReproError("proportion must be non-negative")
        minima = self.local_minima()
        threshold = (1.0 + proportion) * float(self.fitness.min())
        return minima[self.fitness[minima] <= threshold]


def build_ffg(cache: EvaluationCache) -> FitnessFlowGraph:
    """Build the fitness flow graph of a campaign cache.

    Complexity is ``O(n * d * v)`` where ``n`` is the number of valid configurations,
    ``d`` the number of parameters and ``v`` the mean parameter cardinality -- every
    potential Hamming-1 neighbour is looked up in a hash map of the cache.
    """
    observations = cache.valid_observations()
    if not observations:
        raise ReproError(f"cache {cache.benchmark}/{cache.gpu} has no valid entries")

    configs = [dict(o.config) for o in observations]
    fitness = np.array([o.value for o in observations], dtype=float)
    index_of = {config_key(c): i for i, c in enumerate(configs)}
    parameters = cache.space.parameters

    rows: list[int] = []
    cols: list[int] = []
    for i, config in enumerate(configs):
        fi = fitness[i]
        for parameter in parameters:
            current = config[parameter.name]
            for other in parameter.all_other_values(current):
                neighbor = dict(config)
                neighbor[parameter.name] = other
                j = index_of.get(config_key(neighbor))
                if j is not None and fitness[j] < fi:
                    rows.append(i)
                    cols.append(j)

    n = len(configs)
    adjacency = sparse.csr_matrix(
        (np.ones(len(rows), dtype=np.float64), (rows, cols)), shape=(n, n))
    return FitnessFlowGraph(adjacency=adjacency, fitness=fitness, configs=configs,
                            benchmark=cache.benchmark, gpu=cache.gpu)
