"""Proportion-of-centrality search-difficulty metric (paper Sec. II-B2, Fig. 3).

The metric of Schoonhoven et al. quantifies how hard a search space is for local
search: build the fitness flow graph, compute PageRank (the expected arrival
distribution of a randomised first-improvement local search), and measure what fraction
of the arrival mass that lands on local minima lands on *suitably good* ones -- minima
whose fitness is within ``(1 + p)`` of the optimum for a minimisation problem.  A value
near 1 means local search almost always ends up somewhere good (easy landscape); a
value near 0 means most basins of attraction lead to poor minima (hard landscape).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


from repro.core.cache import EvaluationCache
from repro.core.errors import ReproError
from repro.graph.ffg import FitnessFlowGraph, build_ffg
from repro.graph.pagerank import pagerank

__all__ = ["CentralityReport", "proportion_of_centrality"]

#: Proportions used in the paper's Fig. 3 (fraction above the optimal runtime).
DEFAULT_PROPORTIONS: tuple[float, ...] = (0.01, 0.02, 0.05, 0.10, 0.20, 0.50)


@dataclass
class CentralityReport:
    """Proportion-of-centrality values of one (benchmark, GPU) landscape.

    Attributes
    ----------
    proportions:
        The ``p`` values evaluated.
    values:
        Metric value per ``p`` (same order).
    num_nodes / num_edges / num_minima:
        Size of the underlying fitness flow graph.
    benchmark / gpu:
        Provenance.
    """

    proportions: tuple[float, ...]
    values: tuple[float, ...]
    num_nodes: int
    num_edges: int
    num_minima: int
    benchmark: str = ""
    gpu: str = ""

    def as_dict(self) -> dict[float, float]:
        """Mapping of proportion to metric value."""
        return dict(zip(self.proportions, self.values))

    def value_at(self, proportion: float) -> float:
        """Metric value at one proportion (must be one of the evaluated ones)."""
        mapping = self.as_dict()
        if proportion not in mapping:
            raise ReproError(f"proportion {proportion} was not evaluated "
                             f"(available: {sorted(mapping)})")
        return mapping[proportion]


def proportion_of_centrality(cache: EvaluationCache,
                             proportions: Sequence[float] = DEFAULT_PROPORTIONS,
                             damping: float = 0.85,
                             ffg: FitnessFlowGraph | None = None) -> CentralityReport:
    """Compute the proportion-of-centrality metric for a campaign cache.

    Parameters
    ----------
    cache:
        Exhaustive (preferred) or sampled campaign data.
    proportions:
        The ``p`` values of the "suitably good" band ``fitness <= (1 + p) * optimum``.
    damping:
        PageRank damping factor.
    ffg:
        A pre-built fitness flow graph (to amortise graph construction across calls);
        built from the cache when omitted.
    """
    graph = ffg if ffg is not None else build_ffg(cache)
    # The FFG is unweighted, so the raw (indptr, indices) arrays are all PageRank
    # needs -- no per-node structures, no matrix copy.
    ranks = pagerank(graph.csr_arrays(), damping=damping)
    minima = graph.local_minima()
    if minima.size == 0:
        raise ReproError("fitness flow graph has no local minima; "
                         "was the cache empty or degenerate?")
    minima_mass = float(ranks[minima].sum())

    values: list[float] = []
    for p in proportions:
        good = graph.minima_within(float(p))
        good_mass = float(ranks[good].sum())
        values.append(good_mass / minima_mass if minima_mass > 0 else 0.0)

    return CentralityReport(
        proportions=tuple(float(p) for p in proportions),
        values=tuple(values),
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        num_minima=int(minima.size),
        benchmark=cache.benchmark or graph.benchmark,
        gpu=cache.gpu or graph.gpu,
    )
