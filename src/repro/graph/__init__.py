"""Graph substrate: fitness-flow graph, PageRank and the proportion-of-centrality metric.

These implement the search-difficulty analysis of the paper's Fig. 3, following
Schoonhoven et al.: build the directed fitness-flow graph (FFG) over the evaluated
search space, compute PageRank centrality (the stationary arrival distribution of a
randomised first-improvement local search), and report what share of that arrival mass
lands on "suitably good" local minima.
"""

from repro.graph.ffg import FitnessFlowGraph, build_ffg
from repro.graph.pagerank import pagerank
from repro.graph.centrality import CentralityReport, proportion_of_centrality

__all__ = [
    "FitnessFlowGraph",
    "build_ffg",
    "pagerank",
    "CentralityReport",
    "proportion_of_centrality",
]
