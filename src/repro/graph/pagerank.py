"""PageRank by power iteration on a sparse adjacency matrix.

PageRank gives the stationary distribution of a random surfer who follows a random
outgoing edge with probability ``damping`` and teleports uniformly otherwise; nodes
without outgoing edges (the local minima of a fitness flow graph) redistribute their
mass uniformly.  On the FFG this stationary mass is the "expected proportion of
arrivals" the proportion-of-centrality metric is built on.

The implementation uses the row-stochastic transition matrix and plain power iteration
with an L1 convergence test; ``scipy.sparse`` keeps each iteration at one sparse
matrix-vector product, so even the GEMM graph (~18k nodes, ~10^5 edges) converges in
milliseconds.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.core.errors import ReproError

__all__ = ["pagerank"]


def pagerank(adjacency: sparse.spmatrix, damping: float = 0.85, tol: float = 1e-10,
             max_iterations: int = 200,
             personalization: np.ndarray | None = None) -> np.ndarray:
    """PageRank vector of a directed graph given its adjacency matrix.

    Parameters
    ----------
    adjacency:
        ``(n, n)`` sparse matrix; entry ``(i, j)`` is the weight of the edge
        ``i -> j``.
    damping:
        Probability of following an edge instead of teleporting (the classic 0.85).
    tol:
        L1 convergence threshold on successive iterates.
    max_iterations:
        Hard cap on power-iteration steps.
    personalization:
        Optional teleport distribution (uniform if omitted).

    Returns
    -------
    np.ndarray
        The PageRank scores, normalised to sum to 1.
    """
    if not (0.0 < damping < 1.0):
        raise ReproError(f"damping must lie in (0, 1), got {damping}")
    n = adjacency.shape[0]
    if n == 0:
        raise ReproError("cannot compute PageRank of an empty graph")
    if adjacency.shape[0] != adjacency.shape[1]:
        raise ReproError(f"adjacency must be square, got {adjacency.shape}")

    A = sparse.csr_matrix(adjacency, dtype=np.float64)
    out_degree = np.asarray(A.sum(axis=1)).ravel()
    dangling = out_degree == 0.0

    # Row-normalise the transition matrix; dangling rows are handled separately.
    inv_degree = np.zeros(n)
    inv_degree[~dangling] = 1.0 / out_degree[~dangling]
    transition = sparse.diags(inv_degree) @ A

    if personalization is None:
        teleport = np.full(n, 1.0 / n)
    else:
        teleport = np.asarray(personalization, dtype=float).ravel()
        if teleport.shape[0] != n or teleport.sum() <= 0:
            raise ReproError("personalization must be a positive vector of length n")
        teleport = teleport / teleport.sum()

    rank = np.full(n, 1.0 / n)
    for _ in range(max_iterations):
        dangling_mass = float(rank[dangling].sum())
        new_rank = (damping * (transition.T @ rank)
                    + damping * dangling_mass * teleport
                    + (1.0 - damping) * teleport)
        new_rank /= new_rank.sum()
        if np.abs(new_rank - rank).sum() < tol:
            rank = new_rank
            break
        rank = new_rank
    return rank
