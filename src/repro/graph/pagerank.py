"""PageRank by power iteration on a CSR adjacency structure.

PageRank gives the stationary distribution of a random surfer who follows a random
outgoing edge with probability ``damping`` and teleports uniformly otherwise; nodes
without outgoing edges (the local minima of a fitness flow graph) redistribute their
mass uniformly.  On the FFG this stationary mass is the "expected proportion of
arrivals" the proportion-of-centrality metric is built on.

The implementation is array-native end to end: the adjacency may be given either as a
``scipy.sparse`` matrix or directly as a CSR ``(indptr, indices[, data])`` tuple (the
form :meth:`repro.graph.ffg.FitnessFlowGraph.csr_arrays` exposes), out-degrees come
from one ``indptr`` difference for unweighted graphs, and the transposed transition
matrix is materialised once in CSR layout before the loop so every power-iteration
step is a single row-major sparse matrix-vector product.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.core.errors import ReproError

__all__ = ["pagerank"]

#: Accepted array-native adjacency form: (indptr, indices) or (indptr, indices, data).
CsrArrays = tuple


def _as_csr(adjacency: sparse.spmatrix | CsrArrays) -> sparse.csr_matrix:
    """Normalise the adjacency input to a float64 CSR matrix."""
    if isinstance(adjacency, tuple):
        if len(adjacency) == 2:
            indptr, indices = adjacency
            data = np.ones(len(indices), dtype=np.float64)
        elif len(adjacency) == 3:
            indptr, indices, data = adjacency
        else:
            raise ReproError(
                "CSR adjacency tuple must be (indptr, indices) or (indptr, indices, data)")
        n = len(indptr) - 1
        return sparse.csr_matrix((np.asarray(data, dtype=np.float64),
                                  np.asarray(indices), np.asarray(indptr)), shape=(n, n))
    return sparse.csr_matrix(adjacency, dtype=np.float64)


def pagerank(adjacency: sparse.spmatrix | CsrArrays, damping: float = 0.85,
             tol: float = 1e-10, max_iterations: int = 200,
             personalization: np.ndarray | None = None) -> np.ndarray:
    """PageRank vector of a directed graph given its adjacency structure.

    Parameters
    ----------
    adjacency:
        ``(n, n)`` sparse matrix -- entry ``(i, j)`` is the weight of the edge
        ``i -> j`` -- or a raw CSR ``(indptr, indices[, data])`` tuple (edges
        unweighted when ``data`` is omitted).
    damping:
        Probability of following an edge instead of teleporting (the classic 0.85).
    tol:
        L1 convergence threshold on successive iterates.
    max_iterations:
        Hard cap on power-iteration steps.
    personalization:
        Optional teleport distribution (uniform if omitted).

    Returns
    -------
    np.ndarray
        The PageRank scores, normalised to sum to 1.
    """
    if not (0.0 < damping < 1.0):
        raise ReproError(f"damping must lie in (0, 1), got {damping}")
    A = _as_csr(adjacency)
    n = A.shape[0]
    if n == 0:
        raise ReproError("cannot compute PageRank of an empty graph")
    if A.shape[0] != A.shape[1]:
        raise ReproError(f"adjacency must be square, got {A.shape}")

    out_degree = np.asarray(A.sum(axis=1)).ravel()
    dangling = out_degree == 0.0

    # Row-normalise the transition matrix; dangling rows are handled separately.  The
    # transpose is converted to CSR once so the per-iteration product is row-major.
    inv_degree = np.zeros(n)
    inv_degree[~dangling] = 1.0 / out_degree[~dangling]
    transition_t = (sparse.diags(inv_degree) @ A).T.tocsr()

    if personalization is None:
        teleport = np.full(n, 1.0 / n)
    else:
        teleport = np.asarray(personalization, dtype=float).ravel()
        if teleport.shape[0] != n or teleport.sum() <= 0:
            raise ReproError("personalization must be a positive vector of length n")
        teleport = teleport / teleport.sum()

    rank = np.full(n, 1.0 / n)
    for _ in range(max_iterations):
        dangling_mass = float(rank[dangling].sum())
        new_rank = (damping * (transition_t @ rank)
                    + damping * dangling_mass * teleport
                    + (1.0 - damping) * teleport)
        new_rank /= new_rank.sum()
        if np.abs(new_rank - rank).sum() < tol:
            rank = new_rank
            break
        rank = new_rank
    return rank
