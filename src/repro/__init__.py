"""repro -- a reproduction of "Towards a Benchmarking Suite for Kernel Tuners" (BAT 2.0).

The package provides:

* :mod:`repro.core` -- the shared problem interface between benchmarks and tuners
  (parameters, constraints, search spaces, tuning problems, results, caches, runner).
* :mod:`repro.gpus` -- the simulated GPU substrate (architecture specs, occupancy and
  memory models, the base analytical kernel performance model).
* :mod:`repro.kernels` -- the seven BAT 2.0 tunable kernel benchmarks (GEMM, N-body,
  Hotspot, Pnpoly, Convolution, Expdist, Dedispersion), each with its parameter table,
  constraints, analytical performance model and a NumPy functional reference
  implementation.
* :mod:`repro.tuners` -- the optimizer portfolio implementing the shared ask/tell
  interface (random, grid, local search, simulated annealing, genetic, differential
  evolution, particle swarm, surrogate-model search) plus the external-tuner adapter
  protocol.
* :mod:`repro.ml` -- gradient-boosted regression trees, metrics and permutation feature
  importance (the CatBoost substitute used for the paper's Fig. 6).
* :mod:`repro.graph` -- fitness-flow graph, PageRank and the proportion-of-centrality
  search-difficulty metric (Fig. 3).
* :mod:`repro.analysis` -- one module per paper figure/table, plus campaign
  orchestration and plain-text rendering of every result.
* :mod:`repro.io` -- cache-file and result persistence.

Quickstart
----------

>>> from repro import benchmark_suite, gpu_catalog
>>> from repro.tuners import RandomSearch
>>> from repro.core.runner import run_tuning
>>> problem = benchmark_suite()["pnpoly"].problem(gpu_catalog()["RTX_3090"])
>>> result = run_tuning(RandomSearch(seed=0), problem, max_evaluations=50)
>>> result.best_observation.value > 0
True
"""

from __future__ import annotations

from repro._version import __version__
from repro.core.parameter import Parameter
from repro.core.constraints import Constraint
from repro.core.searchspace import SearchSpace
from repro.core.problem import TuningProblem
from repro.core.result import Observation, TuningResult
from repro.core.registry import (
    BenchmarkSpec,
    benchmark_suite,
    gpu_catalog,
    tuner_catalog,
    get_benchmark,
    get_gpu,
    get_tuner,
    register_benchmark,
    registered_benchmarks,
    temporary_benchmark,
    unregister_benchmark,
)

__all__ = [
    "__version__",
    "Parameter",
    "Constraint",
    "SearchSpace",
    "TuningProblem",
    "Observation",
    "TuningResult",
    "BenchmarkSpec",
    "benchmark_suite",
    "gpu_catalog",
    "tuner_catalog",
    "get_benchmark",
    "get_gpu",
    "get_tuner",
    "register_benchmark",
    "registered_benchmarks",
    "temporary_benchmark",
    "unregister_benchmark",
]
