"""Gradient-boosted regression trees (least-squares boosting).

This is the in-repo substitute for the CatBoost regressor the paper uses for its
feature-importance analysis.  For least-squares loss, gradient boosting reduces to
repeatedly fitting a regression tree to the current residuals and adding a shrunken
copy of its predictions to the ensemble -- simple, deterministic given a seed, and
strong enough on the suite's deterministic campaign data to reach the R^2 regime the
paper reports (>= 0.99 for most benchmarks).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.ml.metrics import r2_score
from repro.ml.tree import DecisionTreeRegressor

__all__ = ["GradientBoostingRegressor"]


class GradientBoostingRegressor:
    """Least-squares gradient boosting over histogram regression trees.

    Parameters
    ----------
    n_estimators:
        Number of boosting stages (trees).
    learning_rate:
        Shrinkage applied to each tree's contribution.
    max_depth:
        Depth of the individual trees.
    subsample:
        Fraction of samples drawn (without replacement) for each stage; 1.0 disables
        stochastic boosting.
    min_samples_leaf:
        Minimum samples per leaf of each tree.
    max_bins:
        Histogram bins per feature in the trees.
    random_state:
        Seed for the subsampling generator.
    """

    def __init__(self, n_estimators: int = 100, learning_rate: float = 0.1,
                 max_depth: int = 4, subsample: float = 1.0, min_samples_leaf: int = 1,
                 max_bins: int = 64, random_state: int | None = None):
        if n_estimators < 1:
            raise ValueError("n_estimators must be at least 1")
        if not (0.0 < learning_rate <= 1.0):
            raise ValueError("learning_rate must lie in (0, 1]")
        if not (0.0 < subsample <= 1.0):
            raise ValueError("subsample must lie in (0, 1]")
        self.n_estimators = int(n_estimators)
        self.learning_rate = float(learning_rate)
        self.max_depth = int(max_depth)
        self.subsample = float(subsample)
        self.min_samples_leaf = int(min_samples_leaf)
        self.max_bins = int(max_bins)
        self.random_state = random_state

        self._trees: list[DecisionTreeRegressor] = []
        self._initial_prediction: float = 0.0
        self.n_features_: int = 0
        self.train_score_: list[float] = []

    # --------------------------------------------------------------------- fitting

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GradientBoostingRegressor":
        """Fit the ensemble to ``(X, y)``; returns self."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if X.ndim != 2:
            raise ValueError("X must be a 2D array")
        if X.shape[0] != y.shape[0]:
            raise ValueError(f"X has {X.shape[0]} rows but y has {y.shape[0]}")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on zero samples")

        rng = np.random.default_rng(self.random_state)
        self.n_features_ = X.shape[1]
        self._trees = []
        self.train_score_ = []

        self._initial_prediction = float(y.mean())
        prediction = np.full(y.shape, self._initial_prediction)

        n = X.shape[0]
        sample_size = max(int(round(self.subsample * n)), 1)
        for _ in range(self.n_estimators):
            residual = y - prediction
            if self.subsample < 1.0:
                idx = rng.choice(n, size=sample_size, replace=False)
            else:
                idx = slice(None)
            tree = DecisionTreeRegressor(max_depth=self.max_depth,
                                         min_samples_leaf=self.min_samples_leaf,
                                         max_bins=self.max_bins)
            tree.fit(X[idx], residual[idx])
            update = tree.predict(X)
            prediction = prediction + self.learning_rate * update
            self._trees.append(tree)
            self.train_score_.append(r2_score(y, prediction))
        return self

    # ------------------------------------------------------------------ prediction

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Ensemble prediction for every row of ``X``."""
        if not self._trees:
            raise RuntimeError("model is not fitted")
        X = np.asarray(X, dtype=float)
        out = np.full(X.shape[0], self._initial_prediction)
        for tree in self._trees:
            out = out + self.learning_rate * tree.predict(X)
        return out

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """R^2 of the ensemble on ``(X, y)``."""
        return r2_score(y, self.predict(X))

    # --------------------------------------------------------------------- queries

    @property
    def feature_importances_(self) -> np.ndarray:
        """Gain-based importances aggregated over all trees (normalised to sum to 1)."""
        if not self._trees:
            raise RuntimeError("model is not fitted")
        total = np.zeros(self.n_features_)
        for tree in self._trees:
            if tree.feature_gains_ is not None:
                total += tree.feature_gains_
        s = total.sum()
        return total / s if s > 0 else total

    def get_params(self) -> dict[str, Any]:
        """Constructor parameters (scikit-learn-style introspection)."""
        return {
            "n_estimators": self.n_estimators,
            "learning_rate": self.learning_rate,
            "max_depth": self.max_depth,
            "subsample": self.subsample,
            "min_samples_leaf": self.min_samples_leaf,
            "max_bins": self.max_bins,
            "random_state": self.random_state,
        }
