"""Machine-learning substrate: gradient-boosted trees and permutation feature importance.

The paper trains a CatBoost regression model on each (benchmark, GPU) campaign and uses
Permutation Feature Importance to rank the tuning parameters (Fig. 6) and to derive the
reduced search spaces of Table VIII.  CatBoost is not available offline, so this
subpackage provides the same model family from scratch on NumPy:

* :mod:`repro.ml.tree` -- a histogram-based regression tree;
* :mod:`repro.ml.gbdt` -- least-squares gradient boosting over those trees;
* :mod:`repro.ml.metrics` -- R^2 / RMSE / MAE;
* :mod:`repro.ml.encoding` -- campaign-cache to feature-matrix conversion;
* :mod:`repro.ml.permutation_importance` -- PFI with repeated shuffles.

Everything is deterministic given a seed and uses vectorised NumPy inner loops (the
histogram split search touches each sample once per feature per node).
"""

from repro.ml.tree import DecisionTreeRegressor
from repro.ml.gbdt import GradientBoostingRegressor
from repro.ml.metrics import r2_score, rmse, mae
from repro.ml.encoding import encode_cache, FeatureMatrix
from repro.ml.permutation_importance import permutation_importance, PermutationImportanceResult

__all__ = [
    "DecisionTreeRegressor",
    "GradientBoostingRegressor",
    "r2_score",
    "rmse",
    "mae",
    "encode_cache",
    "FeatureMatrix",
    "permutation_importance",
    "PermutationImportanceResult",
]
