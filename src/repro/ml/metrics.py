"""Regression metrics used by the feature-importance analysis."""

from __future__ import annotations

import numpy as np

__all__ = ["r2_score", "rmse", "mae"]


def _validate(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true, dtype=float).ravel()
    y_pred = np.asarray(y_pred, dtype=float).ravel()
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    if y_true.size == 0:
        raise ValueError("metrics need at least one sample")
    return y_true, y_pred


def r2_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Coefficient of determination (1 = perfect, 0 = predicting the mean).

    The paper reports R^2 >= 0.992 for the CatBoost models on all benchmarks except
    Convolution; the same metric is used here to validate the GBDT substitute.
    """
    y_true, y_pred = _validate(y_true, y_pred)
    ss_res = float(np.sum((y_true - y_pred) ** 2))
    ss_tot = float(np.sum((y_true - y_true.mean()) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def rmse(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Root mean squared error."""
    y_true, y_pred = _validate(y_true, y_pred)
    return float(np.sqrt(np.mean((y_true - y_pred) ** 2)))


def mae(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean absolute error."""
    y_true, y_pred = _validate(y_true, y_pred)
    return float(np.mean(np.abs(y_true - y_pred)))
