"""Histogram-based regression tree.

The tree is the weak learner underneath :mod:`repro.ml.gbdt`.  Because every feature of
a tuning configuration takes only a small number of distinct values (at most 37 across
the whole suite), an exact histogram split search is both simple and fast: per node and
feature the samples are bucketed into the feature's value bins with ``np.bincount``, the
prefix sums give the left/right sums for *every* candidate split at once, and the best
variance reduction is picked without any per-sample Python work.

The implementation is depth-first recursive with NumPy index arrays per node; trees are
stored as parallel arrays so prediction is a vectorised loop over depth rather than a
per-sample traversal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

__all__ = ["DecisionTreeRegressor"]

_LEAF = -1


@dataclass
class _TreeArrays:
    """Flat array representation of a fitted tree (one entry per node)."""

    feature: np.ndarray      # int, _LEAF for leaves
    threshold: np.ndarray    # float split threshold (go left if x <= threshold)
    left: np.ndarray         # int child index
    right: np.ndarray        # int child index
    value: np.ndarray        # float leaf prediction (also stored for internal nodes)


class DecisionTreeRegressor:
    """CART-style regression tree with exact histogram split search.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (root = depth 0).
    min_samples_split:
        Minimum number of samples a node needs to be considered for splitting.
    min_samples_leaf:
        Minimum number of samples each child must retain.
    max_bins:
        Maximum number of histogram bins per feature; features with more unique
        values are quantile-binned down to this many.
    """

    def __init__(self, max_depth: int = 6, min_samples_split: int = 2,
                 min_samples_leaf: int = 1, max_bins: int = 64):
        if max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        self.max_depth = int(max_depth)
        self.min_samples_split = max(int(min_samples_split), 2)
        self.min_samples_leaf = max(int(min_samples_leaf), 1)
        self.max_bins = max(int(max_bins), 2)
        self._tree: _TreeArrays | None = None
        self._bin_edges: list[np.ndarray] = []
        self.n_features_: int = 0
        self.feature_gains_: np.ndarray | None = None

    # --------------------------------------------------------------------- fitting

    def fit(self, X: np.ndarray, y: np.ndarray,
            sample_weight: np.ndarray | None = None) -> "DecisionTreeRegressor":
        """Fit the tree to ``(X, y)``; returns self."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if X.ndim != 2:
            raise ValueError("X must be a 2D array")
        if X.shape[0] != y.shape[0]:
            raise ValueError(f"X has {X.shape[0]} rows but y has {y.shape[0]}")
        if X.shape[0] == 0:
            raise ValueError("cannot fit a tree on zero samples")
        if sample_weight is None:
            sample_weight = np.ones_like(y)
        else:
            sample_weight = np.asarray(sample_weight, dtype=float).ravel()

        self.n_features_ = X.shape[1]
        self.feature_gains_ = np.zeros(self.n_features_)

        # Pre-bin every feature once: binned[i, j] is the bin index of sample i in
        # feature j, and _bin_edges[j][b] is the numeric threshold of bin b.
        binned = np.empty_like(X, dtype=np.int64)
        self._bin_edges = []
        for j in range(self.n_features_):
            uniques = np.unique(X[:, j])
            if len(uniques) > self.max_bins:
                quantiles = np.linspace(0, 100, self.max_bins + 1)[1:-1]
                edges = np.unique(np.percentile(X[:, j], quantiles))
            else:
                # Split thresholds halfway between consecutive unique values.
                edges = (uniques[:-1] + uniques[1:]) / 2.0
            self._bin_edges.append(edges)
            binned[:, j] = np.searchsorted(edges, X[:, j], side="left")

        nodes_feature: list[int] = []
        nodes_threshold: list[float] = []
        nodes_left: list[int] = []
        nodes_right: list[int] = []
        nodes_value: list[float] = []

        def new_node() -> int:
            nodes_feature.append(_LEAF)
            nodes_threshold.append(0.0)
            nodes_left.append(_LEAF)
            nodes_right.append(_LEAF)
            nodes_value.append(0.0)
            return len(nodes_feature) - 1

        def build(indices: np.ndarray, depth: int) -> int:
            node = new_node()
            w = sample_weight[indices]
            t = y[indices]
            total_w = w.sum()
            node_value = float(np.average(t, weights=w)) if total_w > 0 else float(t.mean())
            nodes_value[node] = node_value

            if depth >= self.max_depth or len(indices) < self.min_samples_split:
                return node
            if np.all(t == t[0]):
                return node

            best = self._best_split(binned, indices, t, w)
            if best is None:
                return node
            feature, bin_index, gain = best
            self.feature_gains_[feature] += gain
            threshold = float(self._bin_edges[feature][bin_index])
            go_left = binned[indices, feature] <= bin_index
            left_idx = indices[go_left]
            right_idx = indices[~go_left]
            if len(left_idx) < self.min_samples_leaf or len(right_idx) < self.min_samples_leaf:
                return node

            nodes_feature[node] = feature
            nodes_threshold[node] = threshold
            nodes_left[node] = build(left_idx, depth + 1)
            nodes_right[node] = build(right_idx, depth + 1)
            return node

        build(np.arange(X.shape[0]), 0)
        self._tree = _TreeArrays(
            feature=np.asarray(nodes_feature, dtype=np.int64),
            threshold=np.asarray(nodes_threshold, dtype=float),
            left=np.asarray(nodes_left, dtype=np.int64),
            right=np.asarray(nodes_right, dtype=np.int64),
            value=np.asarray(nodes_value, dtype=float),
        )
        return self

    def _best_split(self, binned: np.ndarray, indices: np.ndarray, t: np.ndarray,
                    w: np.ndarray) -> tuple[int, int, float] | None:
        """Best (feature, bin, gain) by weighted variance reduction, or None."""
        best_gain = 1e-12
        best: tuple[int, int, float] | None = None
        total_w = w.sum()
        total_wy = float((w * t).sum())
        total_wyy = float((w * t * t).sum())
        parent_sse = total_wyy - total_wy * total_wy / total_w

        for feature in range(binned.shape[1]):
            edges = self._bin_edges[feature]
            n_bins = len(edges) + 1
            if n_bins < 2:
                continue
            bins = binned[indices, feature]
            count_w = np.bincount(bins, weights=w, minlength=n_bins)
            sum_wy = np.bincount(bins, weights=w * t, minlength=n_bins)
            sum_wyy = np.bincount(bins, weights=w * t * t, minlength=n_bins)

            # Prefix sums over bins: split after bin b sends bins <= b to the left.
            left_w = np.cumsum(count_w)[:-1]
            left_wy = np.cumsum(sum_wy)[:-1]
            left_wyy = np.cumsum(sum_wyy)[:-1]
            right_w = total_w - left_w
            right_wy = total_wy - left_wy
            right_wyy = total_wyy - left_wyy

            valid = (left_w >= self.min_samples_leaf) & (right_w >= self.min_samples_leaf)
            if not np.any(valid):
                continue
            with np.errstate(divide="ignore", invalid="ignore"):
                left_sse = left_wyy - np.where(left_w > 0, left_wy ** 2 / left_w, 0.0)
                right_sse = right_wyy - np.where(right_w > 0, right_wy ** 2 / right_w, 0.0)
            gain = parent_sse - (left_sse + right_sse)
            gain[~valid] = -np.inf
            b = int(np.argmax(gain))
            if gain[b] > best_gain:
                best_gain = float(gain[b])
                best = (feature, b, float(gain[b]))
        return best

    # ------------------------------------------------------------------ prediction

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted target for every row of ``X``."""
        if self._tree is None:
            raise RuntimeError("tree is not fitted")
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self.n_features_:
            raise ValueError(f"X must have shape (n, {self.n_features_})")
        tree = self._tree
        node = np.zeros(X.shape[0], dtype=np.int64)
        # Iterate level by level: every sample sitting at an internal node steps to a
        # child; samples at leaves stay put.  Bounded by max_depth iterations.
        for _ in range(self.max_depth + 1):
            feature = tree.feature[node]
            internal = feature != _LEAF
            if not np.any(internal):
                break
            idx = np.nonzero(internal)[0]
            f = feature[idx]
            go_left = X[idx, f] <= tree.threshold[node[idx]]
            node[idx] = np.where(go_left, tree.left[node[idx]], tree.right[node[idx]])
        return tree.value[node]

    # --------------------------------------------------------------------- queries

    @property
    def node_count(self) -> int:
        """Number of nodes in the fitted tree."""
        if self._tree is None:
            return 0
        return int(len(self._tree.feature))

    @property
    def feature_importances_(self) -> np.ndarray:
        """Total split gain per feature, normalised to sum to 1 (0 if never split)."""
        if self.feature_gains_ is None:
            raise RuntimeError("tree is not fitted")
        total = self.feature_gains_.sum()
        if total <= 0:
            return np.zeros_like(self.feature_gains_)
        return self.feature_gains_ / total

    def get_params(self) -> dict[str, Any]:
        """Constructor parameters (scikit-learn-style introspection)."""
        return {
            "max_depth": self.max_depth,
            "min_samples_split": self.min_samples_split,
            "min_samples_leaf": self.min_samples_leaf,
            "max_bins": self.max_bins,
        }
