"""Permutation Feature Importance (PFI).

PFI measures how much a fitted model's quality degrades when one feature's values are
randomly shuffled across the dataset, breaking that feature's relationship with the
target while leaving its marginal distribution intact.  The paper uses the drop in the
performance metric (R^2 of the CatBoost model) as the importance score of each tuning
parameter; the same definition is implemented here, with repeated shuffles to average
out the permutation randomness.

Interpreting the scores the way the paper does (Sec. VI-H): because the features
interact, the per-feature importance scores can sum to considerably more than the total
explainable variance -- shuffling either of two interacting parameters destroys the
interaction term -- and a sum well above 1 is evidence that the search space needs
global (non-orthogonal) optimization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.ml.metrics import r2_score

__all__ = ["PermutationImportanceResult", "permutation_importance"]


@dataclass
class PermutationImportanceResult:
    """Outcome of a permutation-importance computation.

    Attributes
    ----------
    importances_mean / importances_std:
        Mean and standard deviation of the metric drop per feature over the repeats.
    importances:
        Full ``(n_features, n_repeats)`` matrix of metric drops.
    baseline_score:
        Metric of the unshuffled predictions.
    feature_names:
        Optional names aligned with the feature axis.
    """

    importances_mean: np.ndarray
    importances_std: np.ndarray
    importances: np.ndarray
    baseline_score: float
    feature_names: tuple[str, ...] = ()

    def as_dict(self) -> dict[str, float]:
        """Mapping of feature name (or index) to mean importance."""
        names = self.feature_names or tuple(str(i) for i in range(len(self.importances_mean)))
        return {name: float(v) for name, v in zip(names, self.importances_mean)}

    def ranked(self) -> list[tuple[str, float]]:
        """Features sorted by decreasing mean importance."""
        return sorted(self.as_dict().items(), key=lambda kv: kv[1], reverse=True)

    def total(self) -> float:
        """Sum of the mean importances (values well above 1 signal interactions)."""
        return float(self.importances_mean.sum())


def permutation_importance(model, X: np.ndarray, y: np.ndarray, n_repeats: int = 5,
                           random_state: int | None = 0,
                           scoring: Callable[[np.ndarray, np.ndarray], float] = r2_score,
                           feature_names: Sequence[str] = ()) -> PermutationImportanceResult:
    """Compute PFI of a fitted regression model.

    Parameters
    ----------
    model:
        Any object with a ``predict(X)`` method (already fitted).
    X, y:
        The evaluation dataset (the paper evaluates on the training campaign itself,
        which is appropriate because the campaign *is* the population of interest).
    n_repeats:
        Number of independent shuffles per feature.
    scoring:
        Metric function ``scoring(y_true, y_pred)``; importance is
        ``baseline - shuffled`` so higher means more important.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float).ravel()
    if X.ndim != 2 or X.shape[0] != y.shape[0]:
        raise ValueError("X must be 2D and aligned with y")
    if n_repeats < 1:
        raise ValueError("n_repeats must be at least 1")

    rng = np.random.default_rng(random_state)
    baseline = float(scoring(y, model.predict(X)))

    n_features = X.shape[1]
    drops = np.zeros((n_features, n_repeats))
    for j in range(n_features):
        for r in range(n_repeats):
            shuffled = X.copy()
            shuffled[:, j] = rng.permutation(shuffled[:, j])
            drops[j, r] = baseline - float(scoring(y, model.predict(shuffled)))

    return PermutationImportanceResult(
        importances_mean=drops.mean(axis=1),
        importances_std=drops.std(axis=1),
        importances=drops,
        baseline_score=baseline,
        feature_names=tuple(feature_names),
    )
