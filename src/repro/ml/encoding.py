"""Campaign-cache to feature-matrix conversion.

The feature-importance analysis (paper Fig. 6, Table VIII) needs the campaign data as a
plain ``(X, y)`` regression problem: one column per tuning parameter, one row per
measured configuration, and the measured runtime as the target.  This module adds two
practical concerns on top of :meth:`repro.core.cache.EvaluationCache.to_feature_matrix`:

* *target transformation* -- runtimes are heavy-tailed (bad configurations are orders
  of magnitude slower than good ones), so models fit the log-runtime by default;
* *bookkeeping* -- feature names travel with the matrix so importance scores can be
  reported per parameter name.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.cache import EvaluationCache

__all__ = ["FeatureMatrix", "encode_cache"]


@dataclass
class FeatureMatrix:
    """A regression view of one campaign cache.

    Attributes
    ----------
    X:
        ``(n_samples, n_parameters)`` float matrix of encoded configurations.
    y:
        ``(n_samples,)`` target vector (log runtime by default).
    y_raw:
        The untransformed runtimes in milliseconds.
    feature_names:
        Parameter name per column of ``X``.
    log_target:
        Whether ``y`` is ``log(runtime)``.
    benchmark / gpu:
        Provenance of the underlying cache.
    """

    X: np.ndarray
    y: np.ndarray
    y_raw: np.ndarray
    feature_names: tuple[str, ...]
    log_target: bool
    benchmark: str
    gpu: str

    @property
    def n_samples(self) -> int:
        """Number of rows."""
        return int(self.X.shape[0])

    @property
    def n_features(self) -> int:
        """Number of parameter columns."""
        return int(self.X.shape[1])


def encode_cache(cache: EvaluationCache, log_target: bool = True) -> FeatureMatrix:
    """Encode a campaign cache as a :class:`FeatureMatrix`.

    Only valid (successfully measured) configurations are included, mirroring the
    paper's datasets.
    """
    X, y_raw = cache.to_feature_matrix(valid_only=True)
    if log_target:
        y = np.log(np.maximum(y_raw, 1e-12))
    else:
        y = y_raw.copy()
    return FeatureMatrix(
        X=X,
        y=y,
        y_raw=y_raw,
        feature_names=cache.space.parameter_names,
        log_target=log_target,
        benchmark=cache.benchmark,
        gpu=cache.gpu,
    )
