"""Deterministic retry policies for shard execution.

A :class:`RetryPolicy` decides how often a failed shard is re-attempted and how long
to back off between attempts.  The backoff is the classic exponential-with-jitter
schedule, but *deterministic*: the jitter of retry ``r`` of shard ``s`` under seed
``k`` is a pure function of ``(k, s, r)``, derived from a blake2b digest.  Two
consequences the chaos suite asserts:

* the same campaign under the same fault pattern retries on exactly the same
  schedule every run -- quarantine decisions and health records are reproducible;
* no ``random``/``numpy`` RNG is ever consulted, so retrying can never perturb the
  seeded sampling streams (or cached error strings) that the byte-identical-merge
  contract of :mod:`repro.exec.executors` rests on.

Attempt accounting: a shard is tried at most ``max_retries + 1`` times
(:attr:`RetryPolicy.max_attempts`); when the last attempt fails, a retry-enabled
executor quarantines the shard instead of raising, so the rest of the campaign
completes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.core.errors import ReproError

__all__ = ["RetryPolicy"]


def unit_uniform(*parts: object) -> float:
    """Deterministic uniform in ``[0, 1)`` from a blake2b digest of ``parts``.

    The shared low-level primitive of the retry and fault-injection machinery:
    stateless, process-stable (unlike ``hash()``), and independent of every
    ``random``/``numpy`` stream in the program.
    """
    text = ":".join(str(part) for part in parts)
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2.0 ** 64


@dataclass(frozen=True)
class RetryPolicy:
    """Seeded exponential backoff with deterministic jitter.

    Parameters
    ----------
    max_retries:
        Re-attempts after the first failure (``0`` means fail-once-then-quarantine;
        the shard is tried at most ``max_retries + 1`` times).
    base_delay:
        Backoff before the first retry, in seconds; retry ``r`` backs off up to
        ``base_delay * 2**r``.
    max_delay:
        Ceiling on any single backoff.
    jitter:
        Fraction of each backoff that is randomized (``0`` = full deterministic
        ladder, ``0.5`` = delays uniform in ``(0.5*b, b]``).  The randomization is
        itself deterministic per ``(seed, shard_id, retry)``.
    seed:
        Seed of the jitter stream.
    """

    max_retries: int = 3
    base_delay: float = 0.05
    max_delay: float = 5.0
    jitter: float = 0.5
    seed: int = 2023

    def __post_init__(self):
        if self.max_retries < 0:
            raise ReproError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.base_delay < 0:
            raise ReproError(f"base_delay must be >= 0, got {self.base_delay}")
        if self.max_delay < self.base_delay:
            raise ReproError(f"max_delay ({self.max_delay}) must be >= base_delay "
                             f"({self.base_delay})")
        if not 0.0 <= self.jitter <= 1.0:
            raise ReproError(f"jitter must be in [0, 1], got {self.jitter}")

    @property
    def max_attempts(self) -> int:
        """Total evaluation attempts a shard may consume before quarantine."""
        return self.max_retries + 1

    def delay(self, shard_id: int, retry: int) -> float:
        """Backoff in seconds before retry ``retry`` (0-based) of ``shard_id``."""
        if retry < 0:
            raise ReproError(f"retry index must be >= 0, got {retry}")
        backoff = min(self.base_delay * (2.0 ** retry), self.max_delay)
        if self.jitter == 0.0 or backoff == 0.0:
            return backoff
        u = unit_uniform("retry", self.seed, shard_id, retry)
        return backoff * (1.0 - self.jitter * u)

    def delays(self, shard_id: int) -> tuple[float, ...]:
        """The full backoff schedule of one shard (length ``max_retries``)."""
        return tuple(self.delay(shard_id, retry) for retry in range(self.max_retries))

    def to_dict(self) -> dict[str, object]:
        return {"max_retries": self.max_retries, "base_delay": self.base_delay,
                "max_delay": self.max_delay, "jitter": self.jitter,
                "seed": self.seed}
