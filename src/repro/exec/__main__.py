"""``python -m repro.exec`` entry point."""

from __future__ import annotations

import sys

from repro.exec.cli import main

if __name__ == "__main__":
    sys.exit(main())
