"""Configuration surface of the campaign-execution subsystem.

The execution layer is the first operational entry point of the suite, so it is also
where deployment-facing knobs live.  Currently that is the feasible-set memoization
threshold of :class:`~repro.core.searchspace.SearchSpace`: memory-constrained workers
may want to lower it, exhaustive-analysis boxes may want to raise it.  Resolution
order is explicit value (CLI flag) > ``REPRO_MEMOIZE_THRESHOLD`` environment variable
> the space's own default -- both the CLI and the worker initializer of
:mod:`repro.exec.worker` resolve through this module so the two surfaces cannot
disagree.
"""

from __future__ import annotations

import os
from typing import Iterable

from repro.core.errors import ReproError
from repro.core.searchspace import SearchSpace

__all__ = ["MEMOIZE_THRESHOLD_ENV", "resolve_memoize_threshold", "apply_memoize_threshold"]

#: Environment variable overriding the feasible-set memoization threshold in
#: execution workers (and anything else that resolves through this module).
MEMOIZE_THRESHOLD_ENV = "REPRO_MEMOIZE_THRESHOLD"


def resolve_memoize_threshold(explicit: int | None = None) -> int | None:
    """The memoization threshold to apply, or None to keep each space's default.

    Parameters
    ----------
    explicit:
        Value from a CLI flag or API call; takes precedence over the environment.
    """
    if explicit is not None:
        return int(explicit)
    raw = os.environ.get(MEMOIZE_THRESHOLD_ENV)
    if raw is None or not raw.strip():
        return None
    try:
        return int(raw)
    except ValueError:
        raise ReproError(
            f"{MEMOIZE_THRESHOLD_ENV}={raw!r} is not an integer") from None


def apply_memoize_threshold(spaces: Iterable[SearchSpace],
                            threshold: int | None) -> None:
    """Set ``memoize_threshold`` on every space (no-op when ``threshold`` is None)."""
    if threshold is None:
        return
    for space in spaces:
        space.memoize_threshold = int(threshold)
