"""Shard-level progress reporting for campaign executors.

The executors accept either a bare ``callable(line: str)`` (the original protocol:
one human-readable line per completed shard) or a :class:`ShardProgressReporter`,
which additionally knows the campaign totals and therefore reports completion
percentage, elapsed wall-clock and an ETA extrapolated from the configs-per-second
throughput of the current session.  The CLI's ``run``/``resume`` commands construct
a reporter unless ``--quiet`` is given.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable

from repro.exec.planner import CampaignPlan, Shard

__all__ = ["ShardProgressReporter", "format_duration"]


def format_duration(seconds: float) -> str:
    """Compact ``1h02m``/``3m20s``/``12.3s`` rendering for progress lines."""
    if seconds < 0 or seconds != seconds:  # negative or NaN: clock skew, be quiet
        return "?"
    if seconds < 60:
        return f"{seconds:.1f}s"
    minutes, secs = divmod(int(round(seconds)), 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


class ShardProgressReporter:
    """Progress sink with completed/total, percentage, elapsed and ETA.

    Parameters
    ----------
    emit:
        Callable receiving one rendered progress line per completed shard
        (default: ``print``).
    clock:
        Monotonic time source, injectable for tests.
    """

    def __init__(self, emit: Callable[[str], None] = print,
                 clock: Callable[[], float] = time.monotonic):
        self._emit = emit
        self._clock = clock
        self._start: float | None = None
        self.shards_total = 0
        self.shards_done = 0
        self.configs_total = 0
        self.configs_done = 0
        self._configs_done_session = 0

    # ------------------------------------------------------------------- protocol

    def begin(self, plan: CampaignPlan, selected: Iterable[Shard],
              completed_ids: Iterable[int]) -> None:
        """Called by the executor before evaluation starts.

        ``selected`` is the shard subset this run will merge (``only_units``-aware)
        and ``completed_ids`` the shards already satisfied from a checkpoint; those
        count as done immediately but never feed the throughput estimate.
        """
        selected = list(selected)
        done = set(completed_ids)
        self._start = self._clock()
        self.shards_total = len(selected)
        self.configs_total = sum(s.n_configs for s in selected)
        self.shards_done = sum(1 for s in selected if s.shard_id in done)
        self.configs_done = sum(s.n_configs for s in selected if s.shard_id in done)
        self._configs_done_session = 0
        if self.shards_done:
            self._emit(f"resuming: {self.shards_done}/{self.shards_total} shards "
                       f"already checkpointed "
                       f"({self.configs_done}/{self.configs_total} configs)")

    def shard_done(self, shard: Shard) -> None:
        """Called by the executor as each shard's rows land."""
        self.shards_done += 1
        self.configs_done += shard.n_configs
        self._configs_done_session += shard.n_configs
        self._emit(self._render(shard))

    def note(self, line: str) -> None:
        """Out-of-band executor event (retry, quarantine, fragment heal).

        Rendered verbatim between progress lines; events do not advance the
        shard/config counters -- a retried shard only counts when it completes.
        """
        self._emit(line)

    # ------------------------------------------------------------------ rendering

    def _render(self, shard: Shard) -> str:
        percent = (100.0 * self.configs_done / self.configs_total
                   if self.configs_total else 100.0)
        elapsed = (self._clock() - self._start) if self._start is not None else 0.0
        line = (f"shard {shard.shard_id:>5} done  "
                f"[{shard.benchmark}/{shard.gpu} {shard.start}:{shard.stop}]  "
                f"{self.shards_done}/{self.shards_total} shards "
                f"({percent:.1f}%)  elapsed {format_duration(elapsed)}")
        remaining = self.configs_total - self.configs_done
        if remaining > 0 and self._configs_done_session > 0 and elapsed > 0:
            rate = self._configs_done_session / elapsed
            line += f"  eta {format_duration(remaining / rate)}"
        return line
