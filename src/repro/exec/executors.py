"""Campaign executors: serial reference and process-pool parallel execution.

An executor takes a :class:`~repro.exec.planner.CampaignPlan` and produces the same
``{(benchmark, gpu): EvaluationCache}`` mapping the serial campaign code builds --
*byte-identical*, down to the JSON the caches serialize to.  The contract rests on
three facts the planner and worker modules establish:

1. each unit's evaluation order is a pure function of the campaign definition
   (ascending feasible set, or the seeded unique-sampling stream);
2. each configuration's measurement is a pure function of (benchmark, GPU,
   configuration) -- the noise model is hash-based and process-stable;
3. shards partition the evaluation order into contiguous slices, so merging rows in
   shard order reconstructs the serial insertion order exactly (including
   ``evaluation_index`` assignment).

:class:`SerialExecutor` evaluates shards in-process and is the reference
implementation; :class:`ParallelExecutor` fans shards out over a
:class:`concurrent.futures.ProcessPoolExecutor` whose workers rebuild the benchmark
registry by name (see :mod:`repro.exec.worker`).  Both support checkpointing: every
completed shard is persisted immediately, and shards whose fragment already exists
are loaded instead of re-evaluated -- which is all "resume" means.
"""

from __future__ import annotations

import abc
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping

import numpy as np

from repro.core.cache import EvaluationCache
from repro.core.errors import ReproError
from repro.core.registry import BenchmarkSpec
from repro.exec.checkpoint import CheckpointStore, benchmark_fingerprint
from repro.exec.config import apply_memoize_threshold, resolve_memoize_threshold
from repro.exec.planner import CampaignPlan, CampaignUnit, Shard, ShardPlanner, unit_indices
from repro.exec.progress import ShardProgressReporter
from repro.exec.worker import evaluate_shard, init_worker

__all__ = ["Executor", "SerialExecutor", "ParallelExecutor", "run_campaign",
           "resume_campaign"]

#: Either a plain per-shard line sink, or a reporter with ``begin``/``shard_done``
#: (e.g. :class:`~repro.exec.progress.ShardProgressReporter` for percent/ETA lines).
Progress = Callable[[str], None] | ShardProgressReporter


@dataclass(frozen=True)
class _ShardTask:
    """One shard to evaluate, with everything an executor needs resolved."""

    shard: Shard
    unit: CampaignUnit
    benchmark: Any
    gpu: Any
    indices: np.ndarray


class Executor(abc.ABC):
    """Base class of campaign executors.

    Parameters
    ----------
    memoize_threshold:
        Explicit feasible-set memoization ceiling; None resolves through the
        ``REPRO_MEMOIZE_THRESHOLD`` environment variable (see
        :mod:`repro.exec.config`) and falls back to each space's default.
    """

    def __init__(self, memoize_threshold: int | None = None):
        self.memoize_threshold = resolve_memoize_threshold(memoize_threshold)

    # ------------------------------------------------------------------ protocol

    @abc.abstractmethod
    def _run_shards(self, tasks: list[_ShardTask],
                    on_complete: Callable[[Shard, list[tuple[float, bool, str]]], None]) -> None:
        """Evaluate every task, invoking ``on_complete(shard, rows)`` per shard."""

    def map(self, fn: Callable[[Any], Any], iterable: Iterable[Any]) -> list[Any]:
        """Generic in-process task mapping (usable as the
        :func:`repro.core.runner.run_matrix` hook; process-pool overrides
        additionally require ``fn`` and the items to pickle)."""
        return [fn(item) for item in iterable]

    # ----------------------------------------------------------------------- run

    def run(self, plan: CampaignPlan,
            benchmarks: Mapping[str, Any] | None = None,
            gpus: Mapping[str, Any] | None = None,
            checkpoint: CheckpointStore | str | None = None,
            progress: Progress | None = None,
            only_units: Iterable[tuple[str, str]] | None = None,
            ) -> dict[tuple[str, str], EvaluationCache]:
        """Execute ``plan`` and return the merged caches keyed ``(benchmark, gpu)``.

        Parameters
        ----------
        plan:
            The shard plan to execute.
        benchmarks / gpus:
            Name->object mappings used for index decoding and merging (default: the
            registries).  Parallel workers always rebuild from the registries.
        checkpoint:
            Optional :class:`CheckpointStore` (or directory path): completed shards
            are persisted as fragments, and existing fragments are loaded instead of
            re-evaluated.
        progress:
            Optional callable receiving one human-readable line per completed shard.
        only_units:
            Optional subset of unit keys to execute and merge.  The checkpoint
            manifest still binds the *whole* plan (missing fragments are exactly
            what resume tolerates), which is how a checkpointed
            :class:`~repro.analysis.campaign.Campaign` stays lazy per pair.
        """
        if benchmarks is None:
            # The open-registry default, resolved per plan unit.  A unit's own spec
            # is authoritative -- a same-named registration in this process may have
            # diverged from what the plan was built against, and workers rebuild
            # from the unit spec, so the parent must too -- and it is what lets
            # `resume` rebuild a custom scenario from the manifest alone, with
            # nothing registered.  Spec-free names resolve through the registry
            # (built-in kernels and registered customs); only the benchmarks the
            # plan actually references are constructed.
            from repro.core.registry import benchmark_spec
            benchmarks = {}
            for unit in plan.units:
                if unit.benchmark in benchmarks:
                    continue
                if unit.spec:
                    benchmarks[unit.benchmark] = BenchmarkSpec.from_dict(unit.spec).build()
                else:
                    spec = benchmark_spec(unit.benchmark)
                    if spec is not None:
                        benchmarks[unit.benchmark] = spec.build()
                    # Unknown names fall through to the `missing` check below.
        if gpus is None:
            from repro.gpus.specs import all_gpus
            gpus = all_gpus()
        missing = {u.benchmark for u in plan.units} - set(benchmarks)
        if missing:
            raise ReproError(f"plan references unknown benchmarks {sorted(missing)}")
        missing_gpus = {u.gpu for u in plan.units} - set(gpus)
        if missing_gpus:
            raise ReproError(f"plan references unknown GPUs {sorted(missing_gpus)}")
        if only_units is None:
            units = list(plan.units)
        else:
            selected = set(only_units)
            units = [u for u in plan.units if u.key in selected]
            unknown_units = selected - {u.key for u in plan.units}
            if unknown_units:
                raise ReproError(f"plan has no units {sorted(unknown_units)}")
        apply_memoize_threshold(
            (benchmarks[name].space for name in {u.benchmark for u in plan.units}),
            self.memoize_threshold)

        if isinstance(checkpoint, (str,)) or hasattr(checkpoint, "__fspath__"):
            checkpoint = CheckpointStore(checkpoint)
        if checkpoint is not None:
            checkpoint.initialize(plan, fingerprints={
                name: benchmark_fingerprint(benchmarks[name])
                for name in {u.benchmark for u in plan.units}})
            done = checkpoint.completed_shard_ids(plan)
        else:
            done = set()

        # Each unit's evaluation order is computed once, in the parent, and sliced
        # per shard -- workers only ever see raw index arrays.  Exhaustive units of
        # the same benchmark visit the same feasible set regardless of GPU, so that
        # array is computed once per benchmark, not once per unit.
        indices_by_unit: dict[tuple[str, str], np.ndarray] = {}
        exhaustive_by_benchmark: dict[str, np.ndarray] = {}
        for unit in units:
            if unit.exhaustive and unit.benchmark in exhaustive_by_benchmark:
                indices_by_unit[unit.key] = exhaustive_by_benchmark[unit.benchmark]
            else:
                indices_by_unit[unit.key] = unit_indices(
                    benchmarks[unit.benchmark].space, unit)
                if unit.exhaustive:
                    exhaustive_by_benchmark[unit.benchmark] = indices_by_unit[unit.key]
            if indices_by_unit[unit.key].size != unit.n_configs:
                raise ReproError(
                    f"unit {unit.key} produced {indices_by_unit[unit.key].size} "
                    f"indices, plan expects {unit.n_configs}; the plan was built "
                    f"against a different space or seed")

        units_by_key = {u.key: u for u in units}
        rows_by_shard: dict[int, list[tuple[float, bool, str]]] = {}
        configs_by_shard: dict[int, list[Mapping[str, Any]]] = {}
        tasks: list[_ShardTask] = []
        selected_shards: list[Shard] = []
        for shard in plan.shards:
            if shard.unit_key not in units_by_key:
                continue
            selected_shards.append(shard)
            if shard.shard_id in done:
                rows_by_shard[shard.shard_id] = checkpoint.load_shard(shard)
                continue
            unit = units_by_key[shard.unit_key]
            tasks.append(_ShardTask(
                shard=shard, unit=unit,
                benchmark=benchmarks[shard.benchmark], gpu=gpus[shard.gpu],
                indices=indices_by_unit[shard.unit_key][shard.start:shard.stop]))

        reporter = progress if isinstance(progress, ShardProgressReporter) else None
        if reporter is not None:
            reporter.begin(plan, selected_shards,
                           {s.shard_id for s in selected_shards
                            if s.shard_id in done})

        def on_complete(shard: Shard, rows: list[tuple[float, bool, str]],
                        configs: list[Mapping[str, Any]] | None = None) -> None:
            if len(rows) != shard.n_configs:
                raise ReproError(
                    f"shard {shard.shard_id} returned {len(rows)} rows, "
                    f"expected {shard.n_configs}")
            rows_by_shard[shard.shard_id] = rows
            if configs is not None:
                # In-process executors hand their decoded configurations through
                # so the merge does not pay a second index decode.
                configs_by_shard[shard.shard_id] = configs
            if checkpoint is not None:
                checkpoint.save_shard(shard, rows)
            if reporter is not None:
                reporter.shard_done(shard)
            elif progress is not None:
                progress(f"shard {shard.shard_id:>5} done  "
                         f"[{shard.benchmark}/{shard.gpu} "
                         f"{shard.start}:{shard.stop}]")

        if tasks:
            self._run_shards(tasks, on_complete)

        return self._merge(plan, units, benchmarks, gpus, indices_by_unit,
                           rows_by_shard, configs_by_shard)

    # --------------------------------------------------------------------- merge

    @staticmethod
    def _merge(plan: CampaignPlan, units: list[CampaignUnit],
               benchmarks: Mapping[str, Any], gpus: Mapping[str, Any],
               indices_by_unit: Mapping[tuple[str, str], np.ndarray],
               rows_by_shard: Mapping[int, list[tuple[float, bool, str]]],
               configs_by_shard: Mapping[int, list[Mapping[str, Any]]],
               ) -> dict[tuple[str, str], EvaluationCache]:
        """Merge shard rows into campaign caches, in serial insertion order."""
        caches: dict[tuple[str, str], EvaluationCache] = {}
        for unit in units:
            benchmark = benchmarks[unit.benchmark]
            gpu = gpus[unit.gpu]
            cache = benchmark.new_cache(gpu, sample_size=unit.sample_size)
            indices = indices_by_unit[unit.key]
            for shard in plan.shards_of(unit):
                configs = configs_by_shard.get(shard.shard_id)
                if configs is None:
                    configs = benchmark.space.configs_at(
                        indices[shard.start:shard.stop])
                rows = rows_by_shard[shard.shard_id]
                for config, (value, valid, error) in zip(configs, rows):
                    cache.add(config, value, valid=valid, error=error)
            caches[unit.key] = cache
        return caches


class SerialExecutor(Executor):
    """Reference executor: evaluates every shard in-process, in plan order.

    Byte-identical to :meth:`KernelBenchmark.build_cache` per unit (asserted by
    tests); exists so the parallel path has a same-code-path baseline to be compared
    against, and so checkpointing/resume work without a worker pool.
    """

    def _run_shards(self, tasks, on_complete):
        for task in tasks:
            configs = task.benchmark.space.configs_at(task.indices)
            rows = task.benchmark.evaluate_batch(task.gpu, configs,
                                                 with_noise=task.unit.with_noise)
            on_complete(task.shard, rows, configs)


class ParallelExecutor(Executor):
    """Process-pool executor: fans shards out over worker processes.

    Parameters
    ----------
    workers:
        Pool size (the paper-scale campaign saturates at ~#physical-cores).
    memoize_threshold:
        See :class:`Executor`; forwarded to worker initializers.
    workload_overrides:
        Per-benchmark factory keyword overrides forwarded to workers, for callers
        that run non-default workloads (must match the parent's ``benchmarks``
        mapping or rows will diverge from the serial path).
    mp_context:
        Optional :mod:`multiprocessing` context (e.g. ``get_context("spawn")``).

    Notes
    -----
    Workers rebuild benchmarks *by name* from the registry or *by spec* (a
    ``"module:factory"`` description carried by the plan's units or supplied by
    :func:`repro.core.registry.register_benchmark`), so every benchmark in the plan
    must be one or the other; anonymous live benchmark objects require the
    :class:`SerialExecutor` (or registration).
    """

    def __init__(self, workers: int = 4, memoize_threshold: int | None = None,
                 workload_overrides: Mapping[str, Mapping[str, Any]] | None = None,
                 mp_context: Any = None):
        super().__init__(memoize_threshold=memoize_threshold)
        if workers < 1:
            raise ReproError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self.workload_overrides = ({k: dict(v) for k, v in workload_overrides.items()}
                                   if workload_overrides else None)
        self.mp_context = mp_context

    def _check_registry_resolvable(self, tasks: list[_ShardTask]
                                   ) -> dict[str, dict[str, Any]] | None:
        """Workers must be able to rebuild *these exact* benchmarks by name or spec.

        Built-in kernel names resolve through :func:`repro.kernels.all_benchmarks`;
        any other name needs a picklable spec, taken from the plan's units first
        and the open registry second.  A name (or spec) collision is not enough:
        a caller's benchmark object carrying a custom workload or a diverged space
        would be silently replaced by the rebuild in every worker, so the parent's
        objects are compared against what :func:`init_worker` will construct and
        any mismatch is refused loudly.  Returns the spec dictionaries to ship to
        the worker initializer (None when every benchmark is built-in).
        """
        from repro.core.registry import registered_benchmarks
        from repro.kernels import BENCHMARK_NAMES, all_benchmarks

        by_name = {t.shard.benchmark: t.benchmark for t in tasks}
        specs: dict[str, dict[str, Any]] = {}
        for task in tasks:
            if task.unit.spec and task.shard.benchmark not in specs:
                specs[task.shard.benchmark] = dict(task.unit.spec)
        registered = None
        unknown = []
        for name in by_name:
            if name in BENCHMARK_NAMES or name in specs:
                continue
            if registered is None:
                registered = registered_benchmarks()
            if name in registered:
                specs[name] = registered[name].to_dict()
            else:
                unknown.append(name)
        if unknown:
            raise ReproError(
                f"ParallelExecutor workers rebuild benchmarks from the registry (or "
                f"from picklable specs) and cannot resolve {sorted(unknown)}; "
                f"register them with repro.core.registry.register_benchmark (or "
                f"pass specs= to ShardPlanner), or use SerialExecutor for "
                f"anonymous benchmark objects")
        builtin = [name for name in by_name if name not in specs]
        rebuilt: dict[str, Any] = (all_benchmarks(**(self.workload_overrides or {}))
                                   if builtin else {})
        for name, spec in specs.items():
            rebuilt[name] = BenchmarkSpec.from_dict(spec).build()
        for name, benchmark in by_name.items():
            if (benchmark.name != rebuilt[name].name
                    or dict(benchmark.workload.sizes) != dict(rebuilt[name].workload.sizes)
                    or benchmark.space.to_dict() != rebuilt[name].space.to_dict()):
                hint = ("pass matching workload_overrides= to ParallelExecutor"
                        if name not in specs else
                        "re-register it so the spec matches the object")
                raise ReproError(
                    f"benchmark {name!r} differs from what workers would rebuild "
                    f"(custom workload or space under a registry name); {hint}, "
                    f"or use SerialExecutor")
        return specs or None

    def _run_shards(self, tasks, on_complete):
        benchmark_specs = self._check_registry_resolvable(tasks)
        with ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=self.mp_context,
                initializer=init_worker,
                initargs=(self.memoize_threshold, self.workload_overrides,
                          benchmark_specs)) as pool:
            pending = {}
            for task in tasks:
                future = pool.submit(evaluate_shard, task.shard.benchmark,
                                     task.shard.gpu, task.indices,
                                     task.unit.with_noise)
                pending[future] = task.shard
            # Checkpoint fragments land as soon as their shard finishes (not at
            # pool teardown), so a kill mid-campaign loses at most the in-flight
            # shards.
            while pending:
                finished, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in finished:
                    shard = pending.pop(future)
                    on_complete(shard, future.result())

    def map(self, fn, iterable):
        """Parallel task mapping over the worker pool (``fn`` must pickle)."""
        with ProcessPoolExecutor(max_workers=self.workers,
                                 mp_context=self.mp_context) as pool:
            return list(pool.map(fn, iterable))


# ------------------------------------------------------------------- conveniences


def run_campaign(benchmarks: Mapping[str, Any] | None = None,
                 gpus: Mapping[str, Any] | None = None,
                 sample_size: int | None = None,
                 exhaustive_limit: int | None = None,
                 seed: int = 2023, with_noise: bool = True,
                 shard_size: int | None = None,
                 executor: Executor | None = None,
                 checkpoint: CheckpointStore | str | None = None,
                 progress: Progress | None = None,
                 ) -> dict[tuple[str, str], EvaluationCache]:
    """Plan and execute a campaign in one call (the API behind the ``run`` CLI)."""
    planner_kwargs: dict[str, Any] = {
        "benchmarks": benchmarks, "gpus": gpus, "exhaustive_limit": exhaustive_limit,
        "seed": seed, "with_noise": with_noise,
    }
    if sample_size is not None:
        planner_kwargs["sample_size"] = sample_size
    if shard_size is not None:
        planner_kwargs["shard_size"] = shard_size
    planner = ShardPlanner(**planner_kwargs)
    executor = executor or SerialExecutor()
    return executor.run(planner.plan(), benchmarks=planner.benchmarks,
                        gpus=planner.gpus, checkpoint=checkpoint, progress=progress)


def resume_campaign(checkpoint: CheckpointStore | str,
                    executor: Executor | None = None,
                    benchmarks: Mapping[str, Any] | None = None,
                    gpus: Mapping[str, Any] | None = None,
                    progress: Progress | None = None,
                    ) -> dict[tuple[str, str], EvaluationCache]:
    """Finish an interrupted campaign from its checkpoint directory.

    The plan is read back from the manifest; shards with an existing fragment are
    loaded, the rest are evaluated, and the merged caches are byte-identical to an
    uninterrupted run.
    """
    if not isinstance(checkpoint, CheckpointStore):
        checkpoint = CheckpointStore(checkpoint)
    plan = checkpoint.load_plan()
    executor = executor or SerialExecutor()
    return executor.run(plan, benchmarks=benchmarks, gpus=gpus,
                        checkpoint=checkpoint, progress=progress)
