"""Campaign executors: serial reference and process-pool parallel execution.

An executor takes a :class:`~repro.exec.planner.CampaignPlan` and produces the same
``{(benchmark, gpu): EvaluationCache}`` mapping the serial campaign code builds --
*byte-identical*, down to the JSON the caches serialize to.  The contract rests on
three facts the planner and worker modules establish:

1. each unit's evaluation order is a pure function of the campaign definition
   (ascending feasible set, or the seeded unique-sampling stream);
2. each configuration's measurement is a pure function of (benchmark, GPU,
   configuration) -- the noise model is hash-based and process-stable;
3. shards partition the evaluation order into contiguous slices, so merging rows in
   shard order reconstructs the serial insertion order exactly (including
   ``evaluation_index`` assignment).

:class:`SerialExecutor` evaluates shards in-process and is the reference
implementation; :class:`ParallelExecutor` drives one long-lived worker process per
slot over a pipe protocol (see :func:`repro.exec.worker.shard_worker_loop`).  Both
support checkpointing: every completed shard is persisted immediately, and shards
whose fragment already exists are loaded instead of re-evaluated -- which is all
"resume" means.

Fault tolerance (opt-in via ``retry_policy``/``shard_timeout``) is layered on the
same contracts:

* **retries** -- a shard whose attempt fails *transiently* (crashed worker, hung
  worker killed by its timeout, :class:`~repro.core.errors.TransientExecutionError`)
  is re-queued after a deterministic backoff
  (:class:`~repro.exec.retry.RetryPolicy`); because shard evaluation is a pure
  function of (benchmark, GPU, indices), a retried shard reproduces exactly the
  rows the failed attempt would have produced, so retries never threaten the
  byte-identical-merge contract;
* **timeouts** -- with ``shard_timeout`` set, the parallel executor arms a
  wall-clock deadline per in-flight shard; a worker that blows it is killed and
  respawned, and the shard is charged a transient failure.  One worker per
  in-flight shard is what makes blame precise -- a crash or hang can only belong
  to the one shard its worker was evaluating;
* **quarantine** -- permanent failures, and transient ones that exhaust the retry
  budget, quarantine their shard: the campaign completes, the affected *unit* is
  withheld from the merged caches (a cache with silently missing rows would be
  worse than no cache), and the structured records land on
  :attr:`Executor.quarantine` and in the checkpoint's ``health.json``;
* **healing** -- a checkpoint fragment that fails its integrity check on resume
  (:class:`~repro.core.errors.FragmentIntegrityError`) is discarded and its shard
  re-executed instead of merging corrupt rows.

Without a ``retry_policy`` the executors keep their original fail-fast behaviour:
the first shard error propagates.  :class:`~repro.exec.faults.FaultPlan` injection
hooks (chaos testing) thread through the same seams.
"""

from __future__ import annotations

import abc
import heapq
import itertools
import multiprocessing as mp
import time
from concurrent.futures import ProcessPoolExecutor
from collections import deque
from dataclasses import dataclass
from multiprocessing.connection import wait as mp_wait
from typing import Any, Callable, Iterable, Mapping

import numpy as np

from repro.core.cache import EvaluationCache
from repro.core.errors import (
    ExecutionError,
    ReproError,
    SerializationError,
    ShardTimeoutError,
    TransientExecutionError,
    WorkerCrashError,
    is_transient,
)
from repro.core.registry import BenchmarkSpec
from repro.exec.checkpoint import CheckpointStore, benchmark_fingerprint
from repro.exec.config import apply_memoize_threshold, resolve_memoize_threshold
from repro.exec.faults import FaultPlan, corrupt_fragment
from repro.exec.planner import CampaignPlan, CampaignUnit, Shard, ShardPlanner, unit_indices
from repro.exec.progress import ShardProgressReporter
from repro.exec.retry import RetryPolicy
from repro.exec.worker import shard_worker_loop

__all__ = ["Executor", "SerialExecutor", "ParallelExecutor", "run_campaign",
           "resume_campaign"]

#: Worker-reported exception names rebuilt as their taxonomy class in the parent.
_ERROR_TYPES: dict[str, type[Exception]] = {
    "ExecutionError": ExecutionError,
    "TransientExecutionError": TransientExecutionError,
    "WorkerCrashError": WorkerCrashError,
    "ShardTimeoutError": ShardTimeoutError,
}


def _rebuild_worker_error(type_name: str, message: str, transient: bool) -> Exception:
    """Parent-side counterpart of the worker protocol's error reply.

    Workers describe exceptions instead of pickling them (arbitrary benchmark
    exceptions may not pickle, and must never poison the pipe); taxonomy classes
    are rebuilt exactly, anything else becomes an :class:`ExecutionError` of the
    right transience with the original type name in the message.
    """
    cls = _ERROR_TYPES.get(type_name)
    if cls is not None:
        return cls(message)
    rebuilt = TransientExecutionError if transient else ExecutionError
    return rebuilt(f"{type_name}: {message}")

#: Either a plain per-shard line sink, or a reporter with ``begin``/``shard_done``
#: (e.g. :class:`~repro.exec.progress.ShardProgressReporter` for percent/ETA lines).
Progress = Callable[[str], None] | ShardProgressReporter


@dataclass(frozen=True)
class _ShardTask:
    """One shard to evaluate, with everything an executor needs resolved."""

    shard: Shard
    unit: CampaignUnit
    benchmark: Any
    gpu: Any
    indices: np.ndarray


class Executor(abc.ABC):
    """Base class of campaign executors.

    Parameters
    ----------
    memoize_threshold:
        Explicit feasible-set memoization ceiling; None resolves through the
        ``REPRO_MEMOIZE_THRESHOLD`` environment variable (see
        :mod:`repro.exec.config`) and falls back to each space's default.
    retry_policy:
        Optional :class:`~repro.exec.retry.RetryPolicy`.  None (the default)
        keeps the original fail-fast behaviour: the first shard error raises.
        With a policy, transient failures are retried on its deterministic
        backoff schedule and exhausted/permanent failures quarantine their shard
        instead of aborting the campaign.
    shard_timeout:
        Optional wall-clock seconds one shard attempt may take.  Enforced by the
        :class:`ParallelExecutor` (the hung worker is killed and the shard
        charged a transient :class:`~repro.core.errors.ShardTimeoutError`); the
        in-process :class:`SerialExecutor` cannot preempt itself and ignores it.
    fault_plan:
        Optional :class:`~repro.exec.faults.FaultPlan` for chaos testing;
        consulted per shard attempt (``"worker"`` site) and per fragment save
        (``"fragment"`` site).

    Attributes
    ----------
    retry_counts:
        ``{shard_id: retries}`` of the last :meth:`run` (retried shards only).
    quarantine:
        Structured records of the shards the last :meth:`run` quarantined.
    repaired_shards:
        Shard ids whose damaged fragments the last :meth:`run` discarded and
        re-executed.
    """

    def __init__(self, memoize_threshold: int | None = None,
                 retry_policy: RetryPolicy | None = None,
                 shard_timeout: float | None = None,
                 fault_plan: FaultPlan | None = None):
        self.memoize_threshold = resolve_memoize_threshold(memoize_threshold)
        if shard_timeout is not None and shard_timeout <= 0:
            raise ReproError(f"shard_timeout must be positive, got {shard_timeout}")
        self.retry_policy = retry_policy
        self.shard_timeout = shard_timeout
        self.fault_plan = fault_plan
        self._reset_run_state()

    def _reset_run_state(self) -> None:
        self._attempts: dict[int, int] = {}
        self._fragment_saves: dict[int, int] = {}
        self._note: Callable[[str], None] = lambda line: None
        self.retry_counts: dict[int, int] = {}
        self.quarantine: list[dict[str, Any]] = []
        self.repaired_shards: list[int] = []

    # ------------------------------------------------------------------ protocol

    @abc.abstractmethod
    def _run_shards(self, tasks: list[_ShardTask],
                    on_complete: Callable[[Shard, list[tuple[float, bool, str]]], None]) -> None:
        """Evaluate every task, invoking ``on_complete(shard, rows)`` per shard."""

    def map(self, fn: Callable[[Any], Any], iterable: Iterable[Any]) -> list[Any]:
        """Generic in-process task mapping (usable as the
        :func:`repro.core.runner.run_matrix` hook; process-pool overrides
        additionally require ``fn`` and the items to pickle)."""
        return [fn(item) for item in iterable]

    # ----------------------------------------------------------- fault tolerance

    def _fault_for(self, shard_id: int) -> Any:
        """The injected worker fault of this shard's *next* attempt, if any."""
        if self.fault_plan is None:
            return None
        return self.fault_plan.fault_at("worker", shard_id,
                                        self._attempts.get(shard_id, 0))

    def _handle_shard_failure(self, task: _ShardTask,
                              error: Exception) -> float | None:
        """Decide what a failed shard attempt means: raise, retry, or quarantine.

        Returns the backoff in seconds before the retry, or None when the shard
        was quarantined.  Without a retry policy the error simply propagates --
        the executors' original fail-fast contract.
        """
        shard = task.shard
        attempts = self._attempts.get(shard.shard_id, 0) + 1
        self._attempts[shard.shard_id] = attempts
        policy = self.retry_policy
        if policy is None:
            raise error
        transient = is_transient(error)
        if transient and attempts < policy.max_attempts:
            self.retry_counts[shard.shard_id] = attempts
            delay = policy.delay(shard.shard_id, attempts - 1)
            self._note(f"shard {shard.shard_id} failed transiently "
                       f"({type(error).__name__}: {error}); "
                       f"retry {attempts}/{policy.max_retries} in {delay:.2f}s")
            return delay
        self.quarantine.append({
            "shard_id": shard.shard_id, "benchmark": shard.benchmark,
            "gpu": shard.gpu, "start": shard.start, "stop": shard.stop,
            "fragment": shard.fragment_name, "attempts": attempts,
            "error_type": type(error).__name__, "error": str(error),
            "transient": transient,
        })
        self._note(f"shard {shard.shard_id} quarantined after {attempts} "
                   f"attempt(s): {type(error).__name__}: {error}")
        return None

    # ----------------------------------------------------------------------- run

    def run(self, plan: CampaignPlan,
            benchmarks: Mapping[str, Any] | None = None,
            gpus: Mapping[str, Any] | None = None,
            checkpoint: CheckpointStore | str | None = None,
            progress: Progress | None = None,
            only_units: Iterable[tuple[str, str]] | None = None,
            ) -> dict[tuple[str, str], EvaluationCache]:
        """Execute ``plan`` and return the merged caches keyed ``(benchmark, gpu)``.

        Parameters
        ----------
        plan:
            The shard plan to execute.
        benchmarks / gpus:
            Name->object mappings used for index decoding and merging (default: the
            registries).  Parallel workers always rebuild from the registries.
        checkpoint:
            Optional :class:`CheckpointStore` (or directory path): completed shards
            are persisted as fragments, and existing fragments are loaded instead of
            re-evaluated.
        progress:
            Optional callable receiving one human-readable line per completed shard.
        only_units:
            Optional subset of unit keys to execute and merge.  The checkpoint
            manifest still binds the *whole* plan (missing fragments are exactly
            what resume tolerates), which is how a checkpointed
            :class:`~repro.analysis.campaign.Campaign` stays lazy per pair.
        """
        self._reset_run_state()
        if benchmarks is None:
            # The open-registry default, resolved per plan unit.  A unit's own spec
            # is authoritative -- a same-named registration in this process may have
            # diverged from what the plan was built against, and workers rebuild
            # from the unit spec, so the parent must too -- and it is what lets
            # `resume` rebuild a custom scenario from the manifest alone, with
            # nothing registered.  Spec-free names resolve through the registry
            # (built-in kernels and registered customs); only the benchmarks the
            # plan actually references are constructed.
            from repro.core.registry import benchmark_spec
            benchmarks = {}
            for unit in plan.units:
                if unit.benchmark in benchmarks:
                    continue
                if unit.spec:
                    benchmarks[unit.benchmark] = BenchmarkSpec.from_dict(unit.spec).build()
                else:
                    spec = benchmark_spec(unit.benchmark)
                    if spec is not None:
                        benchmarks[unit.benchmark] = spec.build()
                    # Unknown names fall through to the `missing` check below.
        if gpus is None:
            from repro.gpus.specs import all_gpus
            gpus = all_gpus()
        missing = {u.benchmark for u in plan.units} - set(benchmarks)
        if missing:
            raise ReproError(f"plan references unknown benchmarks {sorted(missing)}")
        missing_gpus = {u.gpu for u in plan.units} - set(gpus)
        if missing_gpus:
            raise ReproError(f"plan references unknown GPUs {sorted(missing_gpus)}")
        if only_units is None:
            units = list(plan.units)
        else:
            selected = set(only_units)
            units = [u for u in plan.units if u.key in selected]
            unknown_units = selected - {u.key for u in plan.units}
            if unknown_units:
                raise ReproError(f"plan has no units {sorted(unknown_units)}")
        apply_memoize_threshold(
            (benchmarks[name].space for name in {u.benchmark for u in plan.units}),
            self.memoize_threshold)

        if isinstance(checkpoint, (str,)) or hasattr(checkpoint, "__fspath__"):
            checkpoint = CheckpointStore(checkpoint)
        if checkpoint is not None:
            checkpoint.initialize(plan, fingerprints={
                name: benchmark_fingerprint(benchmarks[name])
                for name in {u.benchmark for u in plan.units}})
            done = checkpoint.completed_shard_ids(plan)
        else:
            done = set()

        # Each unit's evaluation order is computed once, in the parent, and sliced
        # per shard -- workers only ever see raw index arrays.  Exhaustive units of
        # the same benchmark visit the same feasible set regardless of GPU, so that
        # array is computed once per benchmark, not once per unit.
        indices_by_unit: dict[tuple[str, str], np.ndarray] = {}
        exhaustive_by_benchmark: dict[str, np.ndarray] = {}
        for unit in units:
            if unit.exhaustive and unit.benchmark in exhaustive_by_benchmark:
                indices_by_unit[unit.key] = exhaustive_by_benchmark[unit.benchmark]
            else:
                indices_by_unit[unit.key] = unit_indices(
                    benchmarks[unit.benchmark].space, unit)
                if unit.exhaustive:
                    exhaustive_by_benchmark[unit.benchmark] = indices_by_unit[unit.key]
            if indices_by_unit[unit.key].size != unit.n_configs:
                raise ReproError(
                    f"unit {unit.key} produced {indices_by_unit[unit.key].size} "
                    f"indices, plan expects {unit.n_configs}; the plan was built "
                    f"against a different space or seed")

        units_by_key = {u.key: u for u in units}
        rows_by_shard: dict[int, list[tuple[float, bool, str]]] = {}
        columns_by_shard: dict[int, tuple[np.ndarray, np.ndarray, list[str]]] = {}
        configs_by_shard: dict[int, list[Mapping[str, Any]]] = {}
        columnar_checkpoint = (checkpoint is not None
                               and checkpoint.fragment_format == "columnar")
        tasks: list[_ShardTask] = []
        selected_shards: list[Shard] = []
        heal_notes: list[str] = []
        for shard in plan.shards:
            if shard.unit_key not in units_by_key:
                continue
            selected_shards.append(shard)
            if shard.shard_id in done:
                try:
                    if columnar_checkpoint:
                        # Columnar fragments stay columns end to end: no row
                        # decode here, and none in the merge either when every
                        # shard of the unit came off disk.
                        columns_by_shard[shard.shard_id] = (
                            checkpoint.load_shard_columns(shard))
                    else:
                        rows_by_shard[shard.shard_id] = checkpoint.load_shard(shard)
                    continue
                except SerializationError as exc:
                    # Heal instead of dying: a fragment that is damaged (or
                    # describes the wrong shard) is discarded and its shard
                    # re-executed -- re-evaluation reproduces the exact rows, so
                    # the merge stays byte-identical.
                    checkpoint.fragment_path(shard).unlink(missing_ok=True)
                    done.discard(shard.shard_id)
                    self.repaired_shards.append(shard.shard_id)
                    heal_notes.append(
                        f"discarded damaged fragment of shard {shard.shard_id} "
                        f"({exc}); re-executing")
            unit = units_by_key[shard.unit_key]
            tasks.append(_ShardTask(
                shard=shard, unit=unit,
                benchmark=benchmarks[shard.benchmark], gpu=gpus[shard.gpu],
                indices=indices_by_unit[shard.unit_key][shard.start:shard.stop]))

        reporter = progress if isinstance(progress, ShardProgressReporter) else None
        if reporter is not None:
            reporter.begin(plan, selected_shards,
                           {s.shard_id for s in selected_shards
                            if s.shard_id in done})
            self._note = reporter.note
        elif progress is not None:
            self._note = progress
        for line in heal_notes:
            self._note(line)

        def on_complete(shard: Shard, rows: list[tuple[float, bool, str]],
                        configs: list[Mapping[str, Any]] | None = None) -> None:
            if len(rows) != shard.n_configs:
                raise ReproError(
                    f"shard {shard.shard_id} returned {len(rows)} rows, "
                    f"expected {shard.n_configs}")
            rows_by_shard[shard.shard_id] = rows
            if configs is not None:
                # In-process executors hand their decoded configurations through
                # so the merge does not pay a second index decode.
                configs_by_shard[shard.shard_id] = configs
            if checkpoint is not None:
                path = checkpoint.save_shard(shard, rows)
                if self.fault_plan is not None:
                    save_count = self._fragment_saves.get(shard.shard_id, 0)
                    self._fragment_saves[shard.shard_id] = save_count + 1
                    fault = self.fault_plan.fault_at("fragment", shard.shard_id,
                                                     save_count)
                    if fault is not None:
                        corrupt_fragment(path, fault.kind)
            if reporter is not None:
                reporter.shard_done(shard)
            elif progress is not None:
                progress(f"shard {shard.shard_id:>5} done  "
                         f"[{shard.benchmark}/{shard.gpu} "
                         f"{shard.start}:{shard.stop}]")

        if tasks:
            try:
                self._run_shards(tasks, on_complete)
            finally:
                # Health lands even when the run is interrupted or fails fast,
                # so a later `status`/`resume` sees what this session survived.
                if checkpoint is not None and (
                        self.retry_counts or self.quarantine
                        or self.repaired_shards or checkpoint.has_health()):
                    checkpoint.record_health(self.retry_counts, self.quarantine,
                                             self.repaired_shards)

        if self.quarantine:
            # A unit with quarantined shards is withheld from the merge entirely:
            # a cache with silently missing rows would masquerade as complete.
            # Its healthy fragments stay on disk for a later resume.
            withheld = {(r["benchmark"], r["gpu"]) for r in self.quarantine}
            units = [u for u in units if u.key not in withheld]
        return self._merge(plan, units, benchmarks, gpus, indices_by_unit,
                           rows_by_shard, configs_by_shard, columns_by_shard)

    # --------------------------------------------------------------------- merge

    @staticmethod
    def _merge(plan: CampaignPlan, units: list[CampaignUnit],
               benchmarks: Mapping[str, Any], gpus: Mapping[str, Any],
               indices_by_unit: Mapping[tuple[str, str], np.ndarray],
               rows_by_shard: Mapping[int, list[tuple[float, bool, str]]],
               configs_by_shard: Mapping[int, list[Mapping[str, Any]]],
               columns_by_shard: Mapping[int, tuple[np.ndarray, np.ndarray,
                                                    list[str]]] | None = None,
               ) -> dict[tuple[str, str], EvaluationCache]:
        """Merge shard rows into campaign caches, in serial insertion order.

        ``plan.shards_of`` yields shards sorted by start offset -- evaluation
        order, never completion order -- which is what makes the merge (and the
        bytes of anything serialized from it) independent of scheduling.

        A unit whose every shard was loaded as columnar fragment columns merges
        without decoding a single row: the value/code columns are concatenated in
        shard order with one error-table re-intern
        (:func:`repro.io.columnar.concat_fragment_columns`) and adopted by the
        cache wholesale.  Any freshly-executed shard in the unit falls back to
        the per-row path, whose inserted observations are identical by
        construction.
        """
        columns_by_shard = columns_by_shard or {}
        caches: dict[tuple[str, str], EvaluationCache] = {}
        for unit in units:
            benchmark = benchmarks[unit.benchmark]
            gpu = gpus[unit.gpu]
            cache = benchmark.new_cache(gpu, sample_size=unit.sample_size)
            indices = indices_by_unit[unit.key]
            shards = plan.shards_of(unit)
            if (columns_by_shard
                    and all(s.shard_id in columns_by_shard for s in shards)):
                from repro.io.columnar import concat_fragment_columns
                values, codes, errors = concat_fragment_columns(
                    [columns_by_shard[s.shard_id] for s in shards])
                cache.attach_columns(indices, values, codes, errors)
                caches[unit.key] = cache
                continue
            for shard in shards:
                configs = configs_by_shard.get(shard.shard_id)
                if configs is None:
                    configs = benchmark.space.configs_at(
                        indices[shard.start:shard.stop])
                columns = columns_by_shard.get(shard.shard_id)
                if columns is not None:
                    from repro.io.columnar import decode_failure_strings
                    col_values, col_codes, col_errors = columns
                    valid, errors = decode_failure_strings(col_codes, col_errors)
                    rows = list(zip(col_values.tolist(), valid.tolist(), errors))
                else:
                    rows = rows_by_shard[shard.shard_id]
                for config, (value, valid, error) in zip(configs, rows):
                    cache.add(config, value, valid=valid, error=error)
            caches[unit.key] = cache
        return caches


class SerialExecutor(Executor):
    """Reference executor: evaluates every shard in-process, in plan order.

    Byte-identical to :meth:`KernelBenchmark.build_cache` per unit (asserted by
    tests); exists so the parallel path has a same-code-path baseline to be compared
    against, and so checkpointing/resume work without a worker pool.

    Fault semantics in-process: injected worker faults are *simulated* (the
    taxonomy exception the parallel parent would observe is raised -- a serial
    executor cannot survive a real ``os._exit`` or preempt a real hang), so retry
    and quarantine decisions match the parallel executor's exactly.
    """

    def _run_shards(self, tasks, on_complete):
        queue = deque(tasks)
        while queue:
            task = queue.popleft()
            fault = self._fault_for(task.shard.shard_id)
            try:
                if fault is not None:
                    raise fault.to_exception()
                configs = task.benchmark.space.configs_at(task.indices)
                rows = task.benchmark.evaluate_batch(
                    task.gpu, configs, with_noise=task.unit.with_noise)
            except Exception as error:
                delay = self._handle_shard_failure(task, error)
                if delay is None:
                    continue  # quarantined; the campaign moves on
                if delay > 0:
                    time.sleep(delay)
                queue.appendleft(task)
                continue
            on_complete(task.shard, rows, configs)


class _ShardWorker:
    """One worker process and its command pipe -- one slot of the parallel pool.

    A dedicated process per in-flight shard is the load-bearing design decision of
    the fault-tolerant executor: when a process dies or hangs, exactly one shard
    can be blamed, killed and retried, and the other slots keep working.  (A shared
    ``ProcessPoolExecutor`` fails *every* in-flight future on one crash and cannot
    cancel a running task at all.)
    """

    def __init__(self, ctx: Any, slot: int, memoize_threshold: int | None,
                 workload_overrides: Mapping[str, Mapping[str, Any]] | None,
                 benchmark_specs: Mapping[str, Any] | None):
        self.slot = slot
        self.conn, child_conn = ctx.Pipe(duplex=True)
        self.process = ctx.Process(
            target=shard_worker_loop,
            args=(child_conn, memoize_threshold, workload_overrides,
                  benchmark_specs),
            daemon=True, name=f"repro-shard-worker-{slot}")
        self.process.start()
        child_conn.close()
        self.task: _ShardTask | None = None
        self.deadline: float | None = None

    @property
    def busy(self) -> bool:
        return self.task is not None

    def submit(self, task: _ShardTask, fault_payload: tuple[str, float] | None,
               timeout: float | None) -> None:
        self.conn.send((task.shard.benchmark, task.shard.gpu, task.indices,
                        task.unit.with_noise, fault_payload))
        self.task = task
        self.deadline = (time.monotonic() + timeout) if timeout is not None else None

    def finish(self) -> _ShardTask:
        task = self.task
        self.task = None
        self.deadline = None
        return task

    def stop(self) -> None:
        """Graceful shutdown of an idle worker (protocol EOF, then join)."""
        try:
            self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout=5.0)
        if self.process.is_alive():  # pragma: no cover - stuck teardown
            self.process.terminate()
            self.process.join(timeout=5.0)
        self.conn.close()

    def retire(self) -> None:
        """Hard kill: the worker crashed, hung, or the run is being aborted."""
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=5.0)
            if self.process.is_alive():  # pragma: no cover - SIGTERM ignored
                self.process.kill()
                self.process.join(timeout=5.0)
        else:
            self.process.join(timeout=5.0)
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass


class ParallelExecutor(Executor):
    """Multi-process executor: fans shards out over long-lived worker processes.

    Parameters
    ----------
    workers:
        Pool size (the paper-scale campaign saturates at ~#physical-cores).
    memoize_threshold:
        See :class:`Executor`; forwarded to worker initializers.
    workload_overrides:
        Per-benchmark factory keyword overrides forwarded to workers, for callers
        that run non-default workloads (must match the parent's ``benchmarks``
        mapping or rows will diverge from the serial path).
    mp_context:
        Optional :mod:`multiprocessing` context (e.g. ``get_context("spawn")``).
    retry_policy / shard_timeout / fault_plan:
        See :class:`Executor`.  This executor is where ``shard_timeout`` has
        teeth: every in-flight shard carries a wall-clock deadline, and a worker
        that blows it is killed and respawned while its shard is charged a
        transient failure.

    Notes
    -----
    Workers rebuild benchmarks *by name* from the registry or *by spec* (a
    ``"module:factory"`` description carried by the plan's units or supplied by
    :func:`repro.core.registry.register_benchmark`), so every benchmark in the plan
    must be one or the other; anonymous live benchmark objects require the
    :class:`SerialExecutor` (or registration).

    On interruption (Ctrl-C / SIGTERM translated to :class:`KeyboardInterrupt`)
    the executor flushes results its workers have already sent -- their fragments
    land on disk -- before tearing the pool down, so an interrupted checkpointed
    campaign loses at most the shards that were genuinely mid-evaluation.
    """

    def __init__(self, workers: int = 4, memoize_threshold: int | None = None,
                 workload_overrides: Mapping[str, Mapping[str, Any]] | None = None,
                 mp_context: Any = None,
                 retry_policy: RetryPolicy | None = None,
                 shard_timeout: float | None = None,
                 fault_plan: FaultPlan | None = None):
        super().__init__(memoize_threshold=memoize_threshold,
                         retry_policy=retry_policy, shard_timeout=shard_timeout,
                         fault_plan=fault_plan)
        if workers < 1:
            raise ReproError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self.workload_overrides = ({k: dict(v) for k, v in workload_overrides.items()}
                                   if workload_overrides else None)
        self.mp_context = mp_context

    def _check_registry_resolvable(self, tasks: list[_ShardTask]
                                   ) -> dict[str, dict[str, Any]] | None:
        """Workers must be able to rebuild *these exact* benchmarks by name or spec.

        Built-in kernel names resolve through :func:`repro.kernels.all_benchmarks`;
        any other name needs a picklable spec, taken from the plan's units first
        and the open registry second.  A name (or spec) collision is not enough:
        a caller's benchmark object carrying a custom workload or a diverged space
        would be silently replaced by the rebuild in every worker, so the parent's
        objects are compared against what :func:`init_worker` will construct and
        any mismatch is refused loudly.  Returns the spec dictionaries to ship to
        the worker initializer (None when every benchmark is built-in).
        """
        from repro.core.registry import registered_benchmarks
        from repro.kernels import BENCHMARK_NAMES, all_benchmarks

        by_name = {t.shard.benchmark: t.benchmark for t in tasks}
        specs: dict[str, dict[str, Any]] = {}
        for task in tasks:
            if task.unit.spec and task.shard.benchmark not in specs:
                specs[task.shard.benchmark] = dict(task.unit.spec)
        registered = None
        unknown = []
        for name in by_name:
            if name in BENCHMARK_NAMES or name in specs:
                continue
            if registered is None:
                registered = registered_benchmarks()
            if name in registered:
                specs[name] = registered[name].to_dict()
            else:
                unknown.append(name)
        if unknown:
            raise ReproError(
                f"ParallelExecutor workers rebuild benchmarks from the registry (or "
                f"from picklable specs) and cannot resolve {sorted(unknown)}; "
                f"register them with repro.core.registry.register_benchmark (or "
                f"pass specs= to ShardPlanner), or use SerialExecutor for "
                f"anonymous benchmark objects")
        builtin = [name for name in by_name if name not in specs]
        rebuilt: dict[str, Any] = (all_benchmarks(**(self.workload_overrides or {}))
                                   if builtin else {})
        for name, spec in specs.items():
            rebuilt[name] = BenchmarkSpec.from_dict(spec).build()
        for name, benchmark in by_name.items():
            if (benchmark.name != rebuilt[name].name
                    or dict(benchmark.workload.sizes) != dict(rebuilt[name].workload.sizes)
                    or benchmark.space.to_dict() != rebuilt[name].space.to_dict()):
                hint = ("pass matching workload_overrides= to ParallelExecutor"
                        if name not in specs else
                        "re-register it so the spec matches the object")
                raise ReproError(
                    f"benchmark {name!r} differs from what workers would rebuild "
                    f"(custom workload or space under a registry name); {hint}, "
                    f"or use SerialExecutor")
        return specs or None

    def _run_shards(self, tasks, on_complete):
        benchmark_specs = self._check_registry_resolvable(tasks)
        ctx = self.mp_context if self.mp_context is not None else mp.get_context()

        def spawn(slot: int) -> _ShardWorker:
            return _ShardWorker(ctx, slot, self.memoize_threshold,
                                self.workload_overrides, benchmark_specs)

        workers = [spawn(slot) for slot in range(min(self.workers, len(tasks)))]
        ready: deque[_ShardTask] = deque(tasks)
        delayed: list[tuple[float, int, _ShardTask]] = []  # (wake, seq, task) heap
        seq = itertools.count()
        remaining = len(tasks)

        def respawn(worker: _ShardWorker) -> None:
            slot = workers.index(worker)
            worker.retire()
            workers[slot] = spawn(worker.slot)

        def schedule_failure(task: _ShardTask, error: Exception) -> None:
            nonlocal remaining
            delay = self._handle_shard_failure(task, error)
            if delay is None:
                remaining -= 1  # quarantined; nothing left to run for this shard
            elif delay > 0:
                heapq.heappush(delayed,
                               (time.monotonic() + delay, next(seq), task))
            else:
                ready.append(task)

        def collect(worker: _ShardWorker) -> None:
            """A busy worker's pipe or sentinel fired: reap its result or death."""
            nonlocal remaining
            try:
                has_reply = worker.conn.poll(0)
            except (EOFError, OSError):
                has_reply = False
            if has_reply:
                try:
                    reply = worker.conn.recv()
                except (EOFError, OSError):
                    has_reply = False
            if not has_reply:
                # The sentinel fired with no buffered reply: the process died
                # mid-shard (crash fault, OOM kill, signal).
                exit_code = worker.process.exitcode
                task = worker.finish()
                respawn(worker)
                schedule_failure(task, WorkerCrashError(
                    f"worker died evaluating shard {task.shard.shard_id} "
                    f"(exit code {exit_code})", exit_code=exit_code))
                return
            task = worker.finish()
            if reply[0] == "ok":
                on_complete(task.shard, reply[1])
                remaining -= 1
            else:
                _, type_name, message, transient = reply
                schedule_failure(
                    task, _rebuild_worker_error(type_name, message, transient))

        def kill_hung(worker: _ShardWorker) -> None:
            task = worker.finish()
            respawn(worker)
            schedule_failure(task, ShardTimeoutError(
                f"shard {task.shard.shard_id} exceeded its "
                f"{self.shard_timeout}s wall-clock timeout; worker killed",
                timeout=self.shard_timeout))

        def flush_and_stop() -> None:
            # Interrupted: harvest replies the workers have already sent so their
            # fragments land on disk, then tear everything down.  Failure replies
            # are dropped -- no retrying on the way out.
            for worker in workers:
                if not worker.busy:
                    continue
                try:
                    if not worker.conn.poll(0.05):
                        continue
                    reply = worker.conn.recv()
                except (EOFError, OSError):
                    continue
                if reply[0] == "ok":
                    try:
                        on_complete(worker.finish().shard, reply[1])
                    # repro: allow[RPL004] interrupt teardown: the fragment (saved
                    # first inside on_complete) is what matters on the way out; a
                    # raising progress sink must not abort the flush or mask the
                    # interrupt
                    except Exception:
                        pass
            for worker in workers:
                worker.retire()

        try:
            while remaining > 0:
                now = time.monotonic()
                while delayed and delayed[0][0] <= now:
                    ready.append(heapq.heappop(delayed)[2])
                for worker in workers:
                    if not ready:
                        break
                    if worker.busy:
                        continue
                    task = ready.popleft()
                    fault = self._fault_for(task.shard.shard_id)
                    try:
                        worker.submit(
                            task, fault.payload() if fault is not None else None,
                            self.shard_timeout)
                    except (BrokenPipeError, OSError):
                        # Died between shards (its last reply still counted);
                        # not the task's fault -- requeue without charging it.
                        ready.appendleft(task)
                        respawn(worker)
                busy = [w for w in workers if w.busy]
                if not busy:
                    if ready:
                        continue
                    if delayed:
                        time.sleep(max(0.0, delayed[0][0] - time.monotonic()))
                        continue
                    break  # everything left was quarantined
                timeout = None
                deadlines = [w.deadline for w in busy if w.deadline is not None]
                if deadlines:
                    timeout = max(0.0, min(deadlines) - time.monotonic())
                if delayed:
                    wake = max(0.0, delayed[0][0] - time.monotonic())
                    timeout = wake if timeout is None else min(timeout, wake)
                fired = set(mp_wait(
                    [w.conn for w in busy] + [w.process.sentinel for w in busy],
                    timeout))
                for worker in busy:
                    if worker.conn in fired or worker.process.sentinel in fired:
                        collect(worker)
                now = time.monotonic()
                for worker in workers:
                    if (worker.busy and worker.deadline is not None
                            and now >= worker.deadline):
                        # Prefer a reply racing in right at the deadline over
                        # killing a worker that actually finished.
                        try:
                            racing = worker.conn.poll(0)
                        except (EOFError, OSError):
                            racing = False
                        if racing:
                            collect(worker)
                        else:
                            kill_hung(worker)
            for worker in workers:
                worker.stop()
        except BaseException:
            flush_and_stop()
            raise

    def map(self, fn, iterable):
        """Parallel task mapping over the worker pool (``fn`` must pickle)."""
        with ProcessPoolExecutor(max_workers=self.workers,
                                 mp_context=self.mp_context) as pool:
            return list(pool.map(fn, iterable))


# ------------------------------------------------------------------- conveniences


def run_campaign(benchmarks: Mapping[str, Any] | None = None,
                 gpus: Mapping[str, Any] | None = None,
                 sample_size: int | None = None,
                 exhaustive_limit: int | None = None,
                 seed: int = 2023, with_noise: bool = True,
                 shard_size: int | None = None,
                 executor: Executor | None = None,
                 checkpoint: CheckpointStore | str | None = None,
                 progress: Progress | None = None,
                 ) -> dict[tuple[str, str], EvaluationCache]:
    """Plan and execute a campaign in one call (the API behind the ``run`` CLI)."""
    planner_kwargs: dict[str, Any] = {
        "benchmarks": benchmarks, "gpus": gpus, "exhaustive_limit": exhaustive_limit,
        "seed": seed, "with_noise": with_noise,
    }
    if sample_size is not None:
        planner_kwargs["sample_size"] = sample_size
    if shard_size is not None:
        planner_kwargs["shard_size"] = shard_size
    planner = ShardPlanner(**planner_kwargs)
    executor = executor or SerialExecutor()
    return executor.run(planner.plan(), benchmarks=planner.benchmarks,
                        gpus=planner.gpus, checkpoint=checkpoint, progress=progress)


def resume_campaign(checkpoint: CheckpointStore | str,
                    executor: Executor | None = None,
                    benchmarks: Mapping[str, Any] | None = None,
                    gpus: Mapping[str, Any] | None = None,
                    progress: Progress | None = None,
                    ) -> dict[tuple[str, str], EvaluationCache]:
    """Finish an interrupted campaign from its checkpoint directory.

    The plan is read back from the manifest; shards with an existing fragment are
    loaded, the rest are evaluated, and the merged caches are byte-identical to an
    uninterrupted run.
    """
    if not isinstance(checkpoint, CheckpointStore):
        checkpoint = CheckpointStore(checkpoint)
    plan = checkpoint.load_plan()
    executor = executor or SerialExecutor()
    return executor.run(plan, benchmarks=benchmarks, gpus=gpus,
                        checkpoint=checkpoint, progress=progress)
