"""Worker-process side of parallel campaign execution.

Shard workers never receive live benchmark objects: compiled constraint code objects
(and the closures built on them) do not pickle, and shipping them would tie the
protocol to one process-start method.  Instead a worker receives *names* and rebuilds
the registries once per process in :func:`init_worker`; a shard task is then just
``(benchmark_name, gpu_name, index_array, with_noise)`` and its result a list of
``(value, valid, error)`` rows.  Custom benchmarks follow the same discipline one
level up: they arrive as picklable *specs* (``"module:factory"`` plus JSON kwargs,
see :class:`repro.core.registry.BenchmarkSpec`) and the worker builds them next to
the built-in suite -- which is how runtime-registered and synthetic scenarios ride
the parallel machinery.

Determinism: a rebuilt benchmark is value-identical to the parent's (the registries
and spec factories are pure constructors), configurations are decoded from
mixed-radix indices by the same columnar codec, and the noise model hashes with
blake2b (process-stable, unlike ``hash()``).  A worker therefore returns exactly the
rows the parent would have computed serially -- the byte-identity contract of
:mod:`repro.exec.executors`.

Two entry points share that machinery: :func:`evaluate_shard` is the plain task
function (used by the pool ``map`` path and callable in-process), and
:func:`shard_worker_loop` is the long-lived pipe protocol the fault-tolerant
:class:`~repro.exec.executors.ParallelExecutor` drives -- one worker process per
slot, receiving ``(benchmark, gpu, indices, with_noise, fault)`` tuples and
answering ``("ok", rows)`` or ``("error", type_name, message, transient)``.  A
dedicated process per in-flight shard is what makes blame precise: a crash or hang
can only ever belong to the one shard its worker was evaluating.

Warm caches are shared, not rebuilt: :func:`open_shared_cache` opens a columnar
campaign cache (:mod:`repro.io.columnar`) as read-only memory-mapped columns,
memoized per process, so a fleet of workers replaying the same measurements maps
one file instead of each rehydrating its own observation dictionary.
"""

from __future__ import annotations

import os
import signal
import time
from typing import Any, Mapping, Sequence

import numpy as np

from repro.core.errors import ExecutionError, TransientExecutionError, is_transient
from repro.exec.config import apply_memoize_threshold

__all__ = ["init_worker", "evaluate_shard", "shard_worker_loop",
           "open_shared_cache"]

#: Per-process registries, built lazily (or by the pool initializer).
_BENCHMARKS: dict[str, Any] | None = None
_GPUS: dict[str, Any] | None = None

#: Per-process columnar caches opened read-only via :func:`open_shared_cache`,
#: keyed by resolved path.  The mmap means N worker processes opening the same
#: warm cache share one set of physical pages through the OS page cache instead
#: of rebuilding N observation dictionaries.
_SHARED_CACHES: dict[str, Any] = {}


def open_shared_cache(path: str | os.PathLike, verify: bool = True) -> Any:
    """Open a columnar campaign cache read-only, memoized per worker process.

    The returned :class:`~repro.core.cache.EvaluationCache` is backed by
    memory-mapped columns (``from_columnar(mmap=True)``): index-table replay
    probes read straight off the mapping, nothing is rehydrated up front, and
    every worker on the host that opens the same file shares its physical pages.
    Treat it as read-only -- mutating it would silently fork a private copy of
    the columns (copy-on-write in the index table), not alter the file.

    Repeated calls with the same path in one process return the same object;
    ``verify`` applies only to the first open (checksums are immutable after it).
    """
    from repro.core.cache import EvaluationCache

    key = os.path.realpath(os.fspath(path))
    cache = _SHARED_CACHES.get(key)
    if cache is None:
        cache = EvaluationCache.from_columnar(key, mmap=True, verify=verify)
        _SHARED_CACHES[key] = cache
    return cache


def init_worker(memoize_threshold: int | None = None,
                workload_overrides: Mapping[str, Mapping[str, Any]] | None = None,
                benchmark_specs: Mapping[str, Any] | None = None) -> None:
    """Build the per-process benchmark/GPU registries.

    Parameters
    ----------
    memoize_threshold:
        Feasible-set memoization ceiling applied to every benchmark space (the
        resolved value of the ``--memoize-threshold`` flag /
        ``REPRO_MEMOIZE_THRESHOLD`` environment variable).
    workload_overrides:
        Per-benchmark factory keyword overrides (e.g. shrunken test workloads),
        forwarded to :func:`repro.kernels.all_benchmarks`.
    benchmark_specs:
        Picklable specs of the plan's non-built-in benchmarks, keyed by name (any
        :meth:`~repro.core.registry.BenchmarkSpec.parse` form).  Each is built
        fresh in this process and added beside the built-in suite -- the worker
        half of the open-registry contract.
    """
    global _BENCHMARKS, _GPUS
    from repro.core.registry import BenchmarkSpec
    from repro.gpus.specs import all_gpus
    from repro.kernels import all_benchmarks

    _BENCHMARKS = all_benchmarks(**{k: dict(v) for k, v in (workload_overrides or {}).items()})
    for name, spec in (benchmark_specs or {}).items():
        _BENCHMARKS[name] = BenchmarkSpec.parse(spec).build()
    _GPUS = all_gpus()
    apply_memoize_threshold((b.space for b in _BENCHMARKS.values()), memoize_threshold)


def _apply_worker_fault(fault: tuple[str, float]) -> None:
    """Realize an injected fault payload inside a worker process.

    The parent decided *whether* this attempt faults (from its deterministic
    :class:`~repro.exec.faults.FaultPlan`); the worker only realizes the outcome --
    a real hard exit, a real sleep, or a taxonomy exception.
    """
    from repro.exec.faults import FAULT_CRASH_EXIT_CODE

    kind, hang_seconds = fault
    if kind == "crash":
        # A real abrupt death: no exception, no cleanup, no reply on the pipe --
        # exactly what an OOM kill or node loss looks like to the parent.
        os._exit(FAULT_CRASH_EXIT_CODE)
    if kind == "hang":
        time.sleep(hang_seconds)
        # Only reached when the hang outlasts its purpose (no shard timeout armed);
        # fail transiently rather than hand back rows late.
        raise TransientExecutionError(
            f"injected hang woke after {hang_seconds}s without being killed")
    if kind == "transient":
        raise TransientExecutionError("injected transient fault")
    if kind == "permanent":
        raise ExecutionError("injected permanent fault")
    raise ExecutionError(f"unknown injected fault kind {kind!r}")


def evaluate_shard(benchmark_name: str, gpu_name: str,
                   indices: Sequence[int] | np.ndarray,
                   with_noise: bool = True,
                   fault: tuple[str, float] | None = None,
                   ) -> list[tuple[float, bool, str]]:
    """Evaluate one shard's configurations; the task function submitted to pools.

    Also callable in-process (it lazily initializes the registries), which is how the
    configuration tests exercise worker behaviour without spawning a pool.  ``fault``
    is an optional injected-fault payload (see :mod:`repro.exec.faults`), applied
    *before* any evaluation so a faulted attempt never half-computes.
    """
    if fault is not None:
        _apply_worker_fault(fault)
    if _BENCHMARKS is None:
        init_worker()
    benchmark = _BENCHMARKS[benchmark_name]
    gpu = _GPUS[gpu_name]
    configs = benchmark.space.configs_at(np.asarray(indices, dtype=np.int64))
    return benchmark.evaluate_batch(gpu, configs, with_noise=with_noise)


def shard_worker_loop(conn: Any, memoize_threshold: int | None = None,
                      workload_overrides: Mapping[str, Mapping[str, Any]] | None = None,
                      benchmark_specs: Mapping[str, Any] | None = None) -> None:
    """Long-lived worker: evaluate shard requests arriving on a pipe until EOF.

    Protocol (one request, one reply, strictly alternating):

    * request: ``(benchmark_name, gpu_name, indices, with_noise, fault)`` --
      ``fault`` as in :func:`evaluate_shard`; or ``None`` to shut down cleanly.
    * reply: ``("ok", rows)`` on success, or
      ``("error", type_name, message, transient)`` when evaluation raised -- the
      exception is *described*, not pickled, so arbitrary benchmark exceptions
      can never poison the pipe.

    SIGINT is ignored: on a terminal Ctrl-C the parent (which does receive it)
    flushes completed shards and tears the pool down deliberately; workers dying
    first would turn a graceful stop into a storm of crash retries.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main-thread fallback
        pass
    init_worker(memoize_threshold, workload_overrides, benchmark_specs)
    while True:
        try:
            request = conn.recv()
        except (EOFError, OSError):
            break
        if request is None:
            break
        benchmark_name, gpu_name, indices, with_noise, fault = request
        try:
            rows = evaluate_shard(benchmark_name, gpu_name, indices,
                                  with_noise=with_noise, fault=fault)
        except Exception as exc:
            reply = ("error", type(exc).__name__, str(exc), is_transient(exc))
        else:
            reply = ("ok", rows)
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):  # pragma: no cover - parent died
            break
