"""Worker-process side of parallel campaign execution.

Shard workers never receive live benchmark objects: compiled constraint code objects
(and the closures built on them) do not pickle, and shipping them would tie the
protocol to one process-start method.  Instead a worker receives *names* and rebuilds
the registries once per process in :func:`init_worker`; a shard task is then just
``(benchmark_name, gpu_name, index_array, with_noise)`` and its result a list of
``(value, valid, error)`` rows.  Custom benchmarks follow the same discipline one
level up: they arrive as picklable *specs* (``"module:factory"`` plus JSON kwargs,
see :class:`repro.core.registry.BenchmarkSpec`) and the worker builds them next to
the built-in suite -- which is how runtime-registered and synthetic scenarios ride
the parallel machinery.

Determinism: a rebuilt benchmark is value-identical to the parent's (the registries
and spec factories are pure constructors), configurations are decoded from
mixed-radix indices by the same columnar codec, and the noise model hashes with
blake2b (process-stable, unlike ``hash()``).  A worker therefore returns exactly the
rows the parent would have computed serially -- the byte-identity contract of
:mod:`repro.exec.executors`.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from repro.exec.config import apply_memoize_threshold

__all__ = ["init_worker", "evaluate_shard"]

#: Per-process registries, built lazily (or by the pool initializer).
_BENCHMARKS: dict[str, Any] | None = None
_GPUS: dict[str, Any] | None = None


def init_worker(memoize_threshold: int | None = None,
                workload_overrides: Mapping[str, Mapping[str, Any]] | None = None,
                benchmark_specs: Mapping[str, Any] | None = None) -> None:
    """Build the per-process benchmark/GPU registries.

    Parameters
    ----------
    memoize_threshold:
        Feasible-set memoization ceiling applied to every benchmark space (the
        resolved value of the ``--memoize-threshold`` flag /
        ``REPRO_MEMOIZE_THRESHOLD`` environment variable).
    workload_overrides:
        Per-benchmark factory keyword overrides (e.g. shrunken test workloads),
        forwarded to :func:`repro.kernels.all_benchmarks`.
    benchmark_specs:
        Picklable specs of the plan's non-built-in benchmarks, keyed by name (any
        :meth:`~repro.core.registry.BenchmarkSpec.parse` form).  Each is built
        fresh in this process and added beside the built-in suite -- the worker
        half of the open-registry contract.
    """
    global _BENCHMARKS, _GPUS
    from repro.core.registry import BenchmarkSpec
    from repro.gpus.specs import all_gpus
    from repro.kernels import all_benchmarks

    _BENCHMARKS = all_benchmarks(**{k: dict(v) for k, v in (workload_overrides or {}).items()})
    for name, spec in (benchmark_specs or {}).items():
        _BENCHMARKS[name] = BenchmarkSpec.parse(spec).build()
    _GPUS = all_gpus()
    apply_memoize_threshold((b.space for b in _BENCHMARKS.values()), memoize_threshold)


def evaluate_shard(benchmark_name: str, gpu_name: str,
                   indices: Sequence[int] | np.ndarray,
                   with_noise: bool = True) -> list[tuple[float, bool, str]]:
    """Evaluate one shard's configurations; the task function submitted to pools.

    Also callable in-process (it lazily initializes the registries), which is how the
    configuration tests exercise worker behaviour without spawning a pool.
    """
    if _BENCHMARKS is None:
        init_worker()
    benchmark = _BENCHMARKS[benchmark_name]
    gpu = _GPUS[gpu_name]
    configs = benchmark.space.configs_at(np.asarray(indices, dtype=np.int64))
    return benchmark.evaluate_batch(gpu, configs, with_noise=with_noise)
