"""Resumable campaign checkpoints.

A checkpoint directory makes an interrupted campaign cheap to finish: every completed
shard is persisted immediately as a cache-file fragment (atomic write, deterministic
bytes -- see :mod:`repro.io.cachefile`), and a manifest pins the exact shard plan the
fragments belong to.  Because writes are atomic, a killed campaign leaves only
complete fragments; resuming re-evaluates exactly the missing shards and the merged
result is byte-identical to an uninterrupted run.

Layout::

    <directory>/
        manifest.json        the serialized CampaignPlan
        shard_00000.json     rows of shard 0 (value/valid/error triples)
        shard_00001.json     ...

The store is deliberately dumb: it knows nothing about executors or kernel models,
only about plans, shards and rows.  Validation is strict -- a manifest that does not
match the plan being run, or a fragment whose shape disagrees with its shard, raises
:class:`~repro.core.errors.SerializationError` instead of silently merging wrong data.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.core.errors import SerializationError
from repro.exec.planner import CampaignPlan, Shard
from repro.io.cachefile import load_fragment, load_manifest, save_fragment, save_manifest

__all__ = ["CheckpointStore", "benchmark_fingerprint"]

#: Manifest file name inside a checkpoint directory.
MANIFEST_NAME = "manifest.json"


def benchmark_fingerprint(benchmark: Any) -> str:
    """Digest of a benchmark's search space + workload.

    Fragments are only meaningful against the exact space (index decoding) and
    workload (model inputs) they were evaluated with; this digest is what manifests
    record to detect divergence on resume.
    """
    payload = {"space": benchmark.space.to_dict(),
               "workload": dict(benchmark.workload.sizes)}
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")).hexdigest()


class CheckpointStore:
    """Fragment + manifest persistence for one campaign run.

    Parameters
    ----------
    directory:
        Checkpoint directory (created on first write).
    """

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)

    # ------------------------------------------------------------------- manifest

    @property
    def manifest_path(self) -> Path:
        return self.directory / MANIFEST_NAME

    def has_manifest(self) -> bool:
        return self.manifest_path.exists()

    def load_plan(self) -> CampaignPlan:
        """The plan this checkpoint directory belongs to."""
        return CampaignPlan.from_dict(load_manifest(self.manifest_path)["plan"])

    def initialize(self, plan: CampaignPlan,
                   fingerprints: Mapping[str, str] | None = None) -> None:
        """Bind the directory to ``plan``: write the manifest or validate a match.

        A directory already bound to a *different* plan is refused -- merging
        fragments of one campaign into another would corrupt both.  Likewise a
        benchmark whose space/workload fingerprint differs from the recorded one:
        its fragments carry rows evaluated against a different definition, and
        merging them would silently attach measurements to the wrong
        configurations.
        """
        if self.has_manifest():
            existing = load_manifest(self.manifest_path)
            if existing["plan"] != plan.to_dict():
                raise SerializationError(
                    f"checkpoint directory {self.directory} belongs to a different "
                    f"campaign plan; use a fresh directory (or `resume` to continue "
                    f"the existing one)")
            stored = existing["fingerprints"]
            if stored and fingerprints is not None:
                diverged = [name for name, digest in fingerprints.items()
                            if name in stored and stored[name] != digest]
                if diverged:
                    raise SerializationError(
                        f"checkpoint directory {self.directory} was written with "
                        f"different definitions of {sorted(diverged)} (space or "
                        f"workload changed); its fragments cannot be merged with "
                        f"the current benchmarks")
            return
        save_manifest(self.manifest_path, plan.to_dict(), fingerprints)

    # ------------------------------------------------------------------ fragments

    def fragment_path(self, shard: Shard) -> Path:
        return self.directory / shard.fragment_name

    def completed_shard_ids(self, plan: CampaignPlan) -> set[int]:
        """IDs of plan shards whose fragment is present on disk."""
        return {s.shard_id for s in plan.shards if self.fragment_path(s).exists()}

    def save_shard(self, shard: Shard,
                   rows: Sequence[tuple[float, bool, str]]) -> Path:
        """Atomically persist the rows of one completed shard."""
        if len(rows) != shard.n_configs:
            raise SerializationError(
                f"shard {shard.shard_id} produced {len(rows)} rows, "
                f"expected {shard.n_configs}")
        return save_fragment(self.fragment_path(shard), shard.to_dict(), rows)

    def load_shard(self, shard: Shard) -> list[tuple[float, bool, str]]:
        """Load and validate the rows of one completed shard."""
        meta, rows = load_fragment(self.fragment_path(shard))
        if (meta.get("shard_id") != shard.shard_id
                or meta.get("benchmark") != shard.benchmark
                or meta.get("gpu") != shard.gpu
                or meta.get("start") != shard.start
                or meta.get("stop") != shard.stop):
            raise SerializationError(
                f"fragment {self.fragment_path(shard)} describes shard "
                f"{meta}, expected {shard.to_dict()}")
        if len(rows) != shard.n_configs:
            raise SerializationError(
                f"fragment {self.fragment_path(shard)} has {len(rows)} rows, "
                f"expected {shard.n_configs}")
        return rows

    # --------------------------------------------------------------------- status

    def status(self, plan: CampaignPlan | None = None) -> dict[str, object]:
        """Completion summary of the checkpoint directory.

        Returns per-unit completed/total shard and config counts (with percentages)
        plus campaign totals, and -- when at least two fragments exist -- a timing
        estimate derived from the fragment files' modification times: elapsed
        wall-clock between the first and last completed shard, the implied
        configs-per-second throughput, and the ETA for the remaining configs at
        that rate.  Used by the ``status`` CLI subcommand and by tests.
        """
        if plan is None:
            plan = self.load_plan()
        done = self.completed_shard_ids(plan)
        units = []
        for unit in plan.units:
            shards = plan.shards_of(unit)
            completed = [s for s in shards if s.shard_id in done]
            configs_completed = sum(s.n_configs for s in completed)
            units.append({
                "benchmark": unit.benchmark, "gpu": unit.gpu,
                "shards_completed": len(completed), "shards_total": len(shards),
                "configs_completed": configs_completed,
                "configs_total": unit.n_configs,
                "percent": round(100.0 * configs_completed / unit.n_configs, 1)
                           if unit.n_configs else 100.0,
            })
        configs_completed = sum(u["configs_completed"] for u in units)
        configs_total = sum(u["configs_total"] for u in units)
        status: dict[str, object] = {
            "directory": str(self.directory),
            "shards_completed": len(done),
            "shards_total": len(plan.shards),
            "configs_completed": configs_completed,
            "configs_total": configs_total,
            "percent": round(100.0 * configs_completed / configs_total, 1)
                       if configs_total else 100.0,
        }
        timed = [(self.fragment_path(s).stat().st_mtime, s.n_configs)
                 for s in plan.shards if s.shard_id in done]
        if len(timed) >= 2:
            timed.sort()
            elapsed = timed[-1][0] - timed[0][0]
            if elapsed > 0:
                # The earliest fragment's mtime marks the end of its shard, so the
                # observed span covers all completed configs but that shard's.
                rate = max(configs_completed - timed[0][1], 1) / elapsed
                status["elapsed_s"] = round(elapsed, 3)
                status["configs_per_s"] = round(rate, 1)
                if configs_total > configs_completed:
                    status["eta_s"] = round(
                        (configs_total - configs_completed) / rate, 3)
        status["units"] = units
        return status
