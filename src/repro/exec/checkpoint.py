"""Resumable campaign checkpoints.

A checkpoint directory makes an interrupted campaign cheap to finish: every completed
shard is persisted immediately as a cache-file fragment (atomic write, deterministic
bytes -- see :mod:`repro.io.cachefile`), and a manifest pins the exact shard plan the
fragments belong to.  Because writes are atomic, a killed campaign leaves only
complete fragments; resuming re-evaluates exactly the missing shards and the merged
result is byte-identical to an uninterrupted run.

Layout::

    <directory>/
        manifest.json        the serialized CampaignPlan
        health.json          retry / quarantine / repair history (optional)
        shard_00000.json     rows of shard 0 (value/valid/error triples, checksummed)
        shard_00001.json     ...

Fragments come in two formats sharing one contract: the JSON files above
(interchange, the default) and columnar ``shard_*.col`` files
(:mod:`repro.io.columnar` -- fixed-width value/code columns behind a checksummed
header, selected with ``fragment_format="columnar"`` / the ``--cache-format`` CLI
flag).  A directory holds exactly one format; resumes auto-detect it from the
manifest (or from the fragments already on disk) and refuse a conflicting explicit
choice rather than mixing.  Row semantics, atomicity, shard validation and damage
signalling are identical in both, so executors never care which one is underneath.

The store is deliberately dumb: it knows nothing about executors or kernel models,
only about plans, shards and rows.  Validation is strict -- a manifest that does not
match the plan being run, or a fragment whose shape disagrees with its shard, raises
:class:`~repro.core.errors.SerializationError` instead of silently merging wrong
data; a fragment whose *bytes* are damaged (truncated, bit-flipped, checksum-stale)
raises the :class:`~repro.core.errors.FragmentIntegrityError` subclass, which the
executors treat as "discard and re-execute".  :meth:`CheckpointStore.verify_fragments`
is the offline form of that check (the ``doctor`` CLI subcommand); it also reports
stale ``*.tmp`` siblings that a SIGKILL between ``os.open`` and ``os.replace`` can
leave behind (never read by anything, but litter worth sweeping -- ``doctor --fix``).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.core.errors import SerializationError
from repro.exec.planner import CampaignPlan, Shard
from repro.io.cachefile import (
    atomic_write_json,
    load_fragment,
    load_manifest,
    read_json,
    save_fragment,
    save_manifest,
)
from repro.io.columnar import (
    COLUMNAR_SUFFIX,
    load_columnar_fragment,
    load_columnar_fragment_columns,
    save_columnar_fragment,
)

__all__ = ["CheckpointStore", "benchmark_fingerprint", "FRAGMENT_FORMATS"]

#: Fragment formats a checkpoint directory may hold (one per directory).
FRAGMENT_FORMATS = ("json", "columnar")

#: Manifest file name inside a checkpoint directory.
MANIFEST_NAME = "manifest.json"

#: Execution-health record (retries, quarantines, repairs) inside a checkpoint
#: directory; written by the executors, read by ``status``.
HEALTH_NAME = "health.json"

#: Format identifier written into every health record.
HEALTH_VERSION = 1


def benchmark_fingerprint(benchmark: Any) -> str:
    """Digest of a benchmark's search space + workload.

    Fragments are only meaningful against the exact space (index decoding) and
    workload (model inputs) they were evaluated with; this digest is what manifests
    record to detect divergence on resume.
    """
    payload = {"space": benchmark.space.to_dict(),
               "workload": dict(benchmark.workload.sizes)}
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")).hexdigest()


class CheckpointStore:
    """Fragment + manifest persistence for one campaign run.

    Parameters
    ----------
    directory:
        Checkpoint directory (created on first write).
    fragment_format:
        ``"json"`` (default) or ``"columnar"``; ``None`` auto-detects from the
        manifest or the fragments already on disk, which is what ``resume`` and
        ``doctor`` rely on.
    """

    def __init__(self, directory: str | Path,
                 fragment_format: str | None = None):
        self.directory = Path(directory)
        if fragment_format is not None and fragment_format not in FRAGMENT_FORMATS:
            raise ValueError(
                f"fragment_format must be one of {FRAGMENT_FORMATS}, "
                f"got {fragment_format!r}")
        self._fragment_format = fragment_format

    @property
    def fragment_format(self) -> str:
        """The directory's fragment format, resolved once per store.

        An explicit constructor choice wins; otherwise the manifest's recorded
        format, then the presence of ``shard_*.col`` fragments, then ``"json"``.
        """
        if self._fragment_format is None:
            self._fragment_format = self._detect_format()
        return self._fragment_format

    def _detect_format(self) -> str:
        if self.has_manifest():
            recorded = load_manifest(self.manifest_path).get("fragment_format")
            if recorded in FRAGMENT_FORMATS:
                return recorded
        if any(self.directory.glob("shard_*" + COLUMNAR_SUFFIX)):
            return "columnar"
        return "json"

    # ------------------------------------------------------------------- manifest

    @property
    def manifest_path(self) -> Path:
        return self.directory / MANIFEST_NAME

    def has_manifest(self) -> bool:
        return self.manifest_path.exists()

    def load_plan(self) -> CampaignPlan:
        """The plan this checkpoint directory belongs to."""
        return CampaignPlan.from_dict(load_manifest(self.manifest_path)["plan"])

    def initialize(self, plan: CampaignPlan,
                   fingerprints: Mapping[str, str] | None = None) -> None:
        """Bind the directory to ``plan``: write the manifest or validate a match.

        A directory already bound to a *different* plan is refused -- merging
        fragments of one campaign into another would corrupt both.  Likewise a
        benchmark whose space/workload fingerprint differs from the recorded one:
        its fragments carry rows evaluated against a different definition, and
        merging them would silently attach measurements to the wrong
        configurations.
        """
        if self.has_manifest():
            existing = load_manifest(self.manifest_path)
            if existing["plan"] != plan.to_dict():
                raise SerializationError(
                    f"checkpoint directory {self.directory} belongs to a different "
                    f"campaign plan; use a fresh directory (or `resume` to continue "
                    f"the existing one)")
            stored = existing["fingerprints"]
            if stored and fingerprints is not None:
                diverged = [name for name, digest in fingerprints.items()
                            if name in stored and stored[name] != digest]
                if diverged:
                    raise SerializationError(
                        f"checkpoint directory {self.directory} was written with "
                        f"different definitions of {sorted(diverged)} (space or "
                        f"workload changed); its fragments cannot be merged with "
                        f"the current benchmarks")
            recorded = existing.get("fragment_format")
            if recorded not in FRAGMENT_FORMATS:
                recorded = ("columnar"
                            if any(self.directory.glob("shard_*" + COLUMNAR_SUFFIX))
                            else "json")
            if self._fragment_format is not None and self._fragment_format != recorded:
                raise SerializationError(
                    f"checkpoint directory {self.directory} holds {recorded} "
                    f"fragments; it cannot be continued with "
                    f"fragment_format={self._fragment_format!r} (one format per "
                    f"directory)")
            self._fragment_format = recorded
            return
        # Only a non-default format is recorded, keeping the bytes of every
        # JSON-format manifest identical to what earlier versions wrote.
        save_manifest(self.manifest_path, plan.to_dict(), fingerprints,
                      fragment_format=(self.fragment_format
                                       if self.fragment_format != "json" else None))

    # ------------------------------------------------------------------ fragments

    def fragment_path(self, shard: Shard) -> Path:
        name = shard.fragment_name
        if self.fragment_format == "columnar":
            name = str(Path(name).with_suffix(COLUMNAR_SUFFIX))
        return self.directory / name

    def completed_shard_ids(self, plan: CampaignPlan) -> set[int]:
        """IDs of plan shards whose fragment is present on disk.

        Stale ``*.tmp`` siblings of interrupted writes never count: only the
        final fragment name (of the directory's format) marks completion.
        """
        return {s.shard_id for s in plan.shards if self.fragment_path(s).exists()}

    def save_shard(self, shard: Shard,
                   rows: Sequence[tuple[float, bool, str]]) -> Path:
        """Atomically persist the rows of one completed shard."""
        if len(rows) != shard.n_configs:
            raise SerializationError(
                f"shard {shard.shard_id} produced {len(rows)} rows, "
                f"expected {shard.n_configs}")
        if self.fragment_format == "columnar":
            return save_columnar_fragment(self.fragment_path(shard),
                                          shard.to_dict(), rows)
        return save_fragment(self.fragment_path(shard), shard.to_dict(), rows)

    def _validate_shard_meta(self, shard: Shard, meta: Mapping[str, Any],
                             n_rows: int) -> None:
        if (meta.get("shard_id") != shard.shard_id
                or meta.get("benchmark") != shard.benchmark
                or meta.get("gpu") != shard.gpu
                or meta.get("start") != shard.start
                or meta.get("stop") != shard.stop):
            raise SerializationError(
                f"fragment {self.fragment_path(shard)} describes shard "
                f"{dict(meta)}, expected {shard.to_dict()}")
        if n_rows != shard.n_configs:
            raise SerializationError(
                f"fragment {self.fragment_path(shard)} has {n_rows} rows, "
                f"expected {shard.n_configs}")

    def load_shard(self, shard: Shard) -> list[tuple[float, bool, str]]:
        """Load and validate the rows of one completed shard."""
        loader = (load_columnar_fragment if self.fragment_format == "columnar"
                  else load_fragment)
        meta, rows = loader(self.fragment_path(shard))
        self._validate_shard_meta(shard, meta, len(rows))
        return rows

    def load_shard_columns(self, shard: Shard) -> tuple[Any, Any, list[str]]:
        """Load one columnar shard as raw ``(values, codes, errors)`` columns.

        The no-decode form the executors' merge concatenates
        (:func:`repro.io.columnar.concat_fragment_columns`); validation matches
        :meth:`load_shard` exactly.  Only meaningful for columnar directories.
        """
        if self.fragment_format != "columnar":
            raise SerializationError(
                f"checkpoint directory {self.directory} holds "
                f"{self.fragment_format} fragments; load_shard_columns requires "
                f"the columnar format")
        meta, values, codes, errors = load_columnar_fragment_columns(
            self.fragment_path(shard))
        self._validate_shard_meta(shard, meta, int(values.size))
        return values, codes, errors

    def verify_fragments(self, plan: CampaignPlan | None = None) -> dict[str, Any]:
        """Full integrity sweep of every fragment against the manifest (doctor).

        Each plan shard is classified ``ok`` (present, checksum and shape valid),
        ``missing`` (no fragment -- normal for an interrupted campaign), or
        ``damaged`` (present but unreadable, checksum-stale, or describing the
        wrong shard).  Damaged fragments are exactly what ``resume`` re-executes.
        The result also lists ``stale_tmp``: leftover ``*.tmp`` siblings of
        writes that were SIGKILLed between ``os.open`` and ``os.replace`` --
        never read by anything, but litter that accumulates until swept
        (``doctor --fix`` / :meth:`sweep_stale_tmp`).
        """
        if plan is None:
            plan = self.load_plan()
        ok: list[int] = []
        missing: list[int] = []
        damaged: list[dict[str, Any]] = []
        for shard in plan.shards:
            path = self.fragment_path(shard)
            if not path.exists():
                missing.append(shard.shard_id)
                continue
            try:
                self.load_shard(shard)
            except SerializationError as exc:
                damaged.append({"shard_id": shard.shard_id,
                                "benchmark": shard.benchmark, "gpu": shard.gpu,
                                "path": str(path), "error": str(exc)})
            else:
                ok.append(shard.shard_id)
        return {"ok": ok, "missing": missing, "damaged": damaged,
                "shards_total": len(plan.shards),
                "stale_tmp": [str(p) for p in self.stale_tmp_files()]}

    def stale_tmp_files(self) -> list[Path]:
        """Leftover ``*.tmp`` siblings of interrupted atomic writes (sorted)."""
        if not self.directory.is_dir():
            return []
        return sorted(p for p in self.directory.glob("*.tmp") if p.is_file())

    def sweep_stale_tmp(self) -> list[Path]:
        """Remove every stale ``*.tmp`` file; returns the paths removed."""
        swept = self.stale_tmp_files()
        for path in swept:
            path.unlink(missing_ok=True)
        return swept

    # --------------------------------------------------------------------- health

    @property
    def health_path(self) -> Path:
        return self.directory / HEALTH_NAME

    def has_health(self) -> bool:
        return self.health_path.exists()

    def load_health(self) -> dict[str, Any]:
        """Retry/quarantine/repair history of this checkpoint directory.

        Returns ``{"retries": {shard_id: count}, "quarantined": [records],
        "repaired": [shard_ids]}`` -- all empty when no health record exists.
        """
        if not self.has_health():
            return {"retries": {}, "quarantined": [], "repaired": []}
        payload = read_json(self.health_path)
        retries = {int(shard_id): int(count)
                   for shard_id, count in payload.get("retries", {}).items()}
        return {"retries": retries,
                "quarantined": list(payload.get("quarantined", [])),
                "repaired": [int(s) for s in payload.get("repaired", [])]}

    def record_health(self, retries: Mapping[int, int],
                      quarantined: Sequence[Mapping[str, Any]],
                      repaired: Sequence[int]) -> Path:
        """Merge one run's retry/quarantine/repair outcome into ``health.json``.

        Retry counts accumulate across sessions; quarantine records from earlier
        sessions survive only while their shard still lacks a fragment (a later
        resume that completes the shard clears it) and are replaced by this run's
        record for the same shard.
        """
        previous = self.load_health()
        merged_retries = {str(shard_id): count
                          for shard_id, count in previous["retries"].items()}
        for shard_id, count in retries.items():
            key = str(shard_id)
            merged_retries[key] = merged_retries.get(key, 0) + int(count)
        current_ids = {record["shard_id"] for record in quarantined}
        kept = [record for record in previous["quarantined"]
                if record["shard_id"] not in current_ids
                and not (self.directory / record.get("fragment", "")).exists()]
        payload = {"health_version": HEALTH_VERSION,
                   "retries": merged_retries,
                   "quarantined": kept + [dict(r) for r in quarantined],
                   "repaired": sorted(set(previous["repaired"]) | set(repaired))}
        return atomic_write_json(payload, self.health_path)

    # --------------------------------------------------------------------- status

    def status(self, plan: CampaignPlan | None = None,
               session_gap: float | None = None) -> dict[str, object]:
        """Completion summary of the checkpoint directory.

        Returns per-unit completed/total shard and config counts (with percentages)
        plus campaign totals; retry/quarantine/repair counts from the health
        record; and -- when at least two fragments exist -- a timing estimate
        derived from the fragment files' modification times: *active* elapsed
        wall-clock, the implied configs-per-second throughput, and the ETA for the
        remaining configs at that rate.  Fragment mtimes are clustered into
        sessions (consecutive gaps above ``session_gap`` seconds start a new one;
        default: adaptive, ``max(60, 10 x median gap)``) so an interrupted-then-
        resumed campaign does not dilute its rate with the hours the run sat dead
        on disk.  Used by the ``status`` CLI subcommand and by tests.
        """
        if plan is None:
            plan = self.load_plan()
        done = self.completed_shard_ids(plan)
        units = []
        for unit in plan.units:
            shards = plan.shards_of(unit)
            completed = [s for s in shards if s.shard_id in done]
            configs_completed = sum(s.n_configs for s in completed)
            units.append({
                "benchmark": unit.benchmark, "gpu": unit.gpu,
                "shards_completed": len(completed), "shards_total": len(shards),
                "configs_completed": configs_completed,
                "configs_total": unit.n_configs,
                "percent": round(100.0 * configs_completed / unit.n_configs, 1)
                           if unit.n_configs else 100.0,
            })
        configs_completed = sum(u["configs_completed"] for u in units)
        configs_total = sum(u["configs_total"] for u in units)
        status: dict[str, object] = {
            "directory": str(self.directory),
            "shards_completed": len(done),
            "shards_total": len(plan.shards),
            "configs_completed": configs_completed,
            "configs_total": configs_total,
            "percent": round(100.0 * configs_completed / configs_total, 1)
                       if configs_total else 100.0,
        }
        health = self.load_health()
        status["retry_attempts"] = sum(health["retries"].values())
        status["retried_shards"] = len(health["retries"])
        status["quarantined_shards"] = len(health["quarantined"])
        if health["quarantined"]:
            status["quarantined"] = health["quarantined"]
        status["repaired_shards"] = len(health["repaired"])
        timed = [(self.fragment_path(s).stat().st_mtime, s.n_configs)
                 for s in plan.shards if s.shard_id in done]
        if len(timed) >= 2:
            timed.sort()
            gaps = [later[0] - earlier[0] for earlier, later in zip(timed, timed[1:])]
            if session_gap is None:
                positive = sorted(gap for gap in gaps if gap > 0)
                median = positive[len(positive) // 2] if positive else 0.0
                session_gap = max(60.0, 10.0 * median)
            # A fragment's mtime marks the *end* of its shard, so each intra-session
            # gap covers exactly the configs of its later fragment; gaps above the
            # session threshold are dead time between runs and count toward neither
            # the elapsed wall-clock nor the throughput.
            active = 0.0
            counted = 0
            for gap, (_, n_configs) in zip(gaps, timed[1:]):
                if gap > session_gap:
                    continue
                active += gap
                counted += n_configs
            status["sessions"] = 1 + sum(1 for gap in gaps if gap > session_gap)
            if counted > 0 and active > 0:
                rate = counted / active
                status["elapsed_s"] = round(active, 3)
                status["configs_per_s"] = round(rate, 1)
                if configs_total > configs_completed:
                    status["eta_s"] = round(
                        (configs_total - configs_completed) / rate, 3)
        status["units"] = units
        return status
