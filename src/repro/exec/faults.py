"""Deterministic fault injection for chaos-testing campaign execution.

A :class:`FaultPlan` names exactly which faults strike which shards on which
attempts, so a chaos test (or a reproduction of a production incident) is a pure
function of its plan -- run it twice and the same workers crash, the same shards
hang, the same fragments rot.  The executors consult the plan at two sites:

``"worker"``
    Applied to a shard attempt.  In the :class:`~repro.exec.executors.ParallelExecutor`
    the fault payload ships to the worker process, which *really* crashes
    (``os._exit``), hangs (``time.sleep``) or raises; the
    :class:`~repro.exec.executors.SerialExecutor` simulates the same outcomes
    in-process by raising the taxonomy exception the parallel parent would observe.
``"fragment"``
    Applied to a checkpoint fragment right after it is written: the file is
    truncated, bit-flipped or value-tampered on disk, exercising the
    checksum/integrity detection and the heal-on-resume path.

Fault kinds
-----------

==========  =========  ===========================================================
site        kind       effect
==========  =========  ===========================================================
worker      crash      worker process exits hard (transient: retried)
worker      hang       worker sleeps ``hang_seconds`` (killed by the shard timeout)
worker      transient  raises :class:`~repro.core.errors.TransientExecutionError`
worker      permanent  raises :class:`~repro.core.errors.ExecutionError` (quarantined
                       immediately -- retrying a permanent failure is pointless)
fragment    truncate   fragment file cut to half its bytes
fragment    bitflip    one bit flipped mid-file
fragment    tamper     a row value edited, JSON kept valid (checksum must catch it)
==========  =========  ===========================================================

The standing contract the chaos suite asserts: under every one of these, the merged
:class:`~repro.core.cache.EvaluationCache` is byte-identical to the serial no-fault
run (or the affected unit is quarantined deterministically).
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.core.errors import (
    ExecutionError,
    ReproError,
    ShardTimeoutError,
    TransientExecutionError,
    WorkerCrashError,
)
from repro.exec.retry import unit_uniform
from repro.io.columnar import COLUMNAR_MAGIC, peek_columnar_header

__all__ = ["Fault", "FaultPlan", "corrupt_fragment",
           "WORKER_FAULT_KINDS", "FRAGMENT_FAULT_KINDS"]

#: Fault kinds applicable at the ``"worker"`` site.
WORKER_FAULT_KINDS: tuple[str, ...] = ("crash", "hang", "transient", "permanent")

#: Fault kinds applicable at the ``"fragment"`` site.
FRAGMENT_FAULT_KINDS: tuple[str, ...] = ("truncate", "bitflip", "tamper")

#: Exit code of an injected worker crash (recognizable in worker post-mortems).
FAULT_CRASH_EXIT_CODE = 57


@dataclass(frozen=True)
class Fault:
    """One injected fault: a ``kind`` striking ``shard_id`` at ``site``.

    ``attempts`` lists the 0-based attempt numbers the fault strikes on (for the
    ``"fragment"`` site: the 0-based save count), so "fails once then succeeds"
    and "fails every attempt" are both expressible.
    """

    site: str
    kind: str
    shard_id: int
    attempts: tuple[int, ...] = (0,)
    hang_seconds: float = 3600.0

    def __post_init__(self):
        if self.site == "worker":
            allowed = WORKER_FAULT_KINDS
        elif self.site == "fragment":
            allowed = FRAGMENT_FAULT_KINDS
        else:
            raise ReproError(f"unknown fault site {self.site!r} "
                             f"(expected 'worker' or 'fragment')")
        if self.kind not in allowed:
            raise ReproError(f"unknown {self.site} fault kind {self.kind!r}; "
                             f"expected one of {allowed}")
        if self.hang_seconds <= 0:
            raise ReproError(f"hang_seconds must be positive, got {self.hang_seconds}")

    def matches(self, site: str, shard_id: int, attempt: int) -> bool:
        return (self.site == site and self.shard_id == shard_id
                and attempt in self.attempts)

    def payload(self) -> tuple[str, float]:
        """Picklable description shipped to worker processes."""
        return (self.kind, self.hang_seconds)

    def to_exception(self) -> Exception:
        """The taxonomy exception an in-process (serial) executor raises.

        A serial executor cannot survive a real crash or preempt a real hang, so
        it simulates the *outcome* the parallel parent would observe: the same
        exception class, hence the same retry/quarantine decision.
        """
        if self.kind == "crash":
            return WorkerCrashError("injected worker crash (simulated in-process)",
                                    exit_code=FAULT_CRASH_EXIT_CODE)
        if self.kind == "hang":
            return ShardTimeoutError("injected hang (simulated as an immediate "
                                     "timeout in-process)")
        if self.kind == "transient":
            return TransientExecutionError("injected transient fault")
        if self.kind == "permanent":
            return ExecutionError("injected permanent fault")
        raise ReproError(f"fault kind {self.kind!r} has no in-process simulation")

    def to_dict(self) -> dict[str, object]:
        return {"site": self.site, "kind": self.kind, "shard_id": self.shard_id,
                "attempts": list(self.attempts), "hang_seconds": self.hang_seconds}


class FaultPlan:
    """An ordered collection of :class:`Fault`\\ s consulted by the executors.

    Deterministic by construction: lookups are pure, and the :meth:`random`
    constructor derives its choices from blake2b digests of the seed -- never from
    ``random``/``numpy`` state.
    """

    def __init__(self, faults: Iterable[Fault] = ()):
        self.faults: tuple[Fault, ...] = tuple(faults)
        for fault in self.faults:
            if not isinstance(fault, Fault):
                raise ReproError(f"FaultPlan expects Fault instances, got {fault!r}")

    def fault_at(self, site: str, shard_id: int, attempt: int) -> Fault | None:
        """The first fault striking ``(site, shard_id, attempt)``, or None."""
        for fault in self.faults:
            if fault.matches(site, shard_id, attempt):
                return fault
        return None

    def shard_ids(self, site: str | None = None) -> tuple[int, ...]:
        """Sorted shard ids the plan strikes (optionally at one site)."""
        return tuple(sorted({f.shard_id for f in self.faults
                             if site is None or f.site == site}))

    @classmethod
    def random(cls, seed: int, shard_ids: Sequence[int], rate: float = 0.25,
               kinds: Sequence[str] = ("transient", "crash"),
               attempts: tuple[int, ...] = (0,),
               hang_seconds: float = 3600.0) -> "FaultPlan":
        """Seeded chaos: each shard independently draws a fault with ``rate``.

        Same ``(seed, shard_ids, rate, kinds)`` -> same plan, in every process.
        """
        if not 0.0 <= rate <= 1.0:
            raise ReproError(f"rate must be in [0, 1], got {rate}")
        if not kinds:
            raise ReproError("kinds must not be empty")
        faults = []
        for shard_id in shard_ids:
            if unit_uniform("fault-hit", seed, shard_id) >= rate:
                continue
            pick = int(unit_uniform("fault-kind", seed, shard_id) * len(kinds))
            kind = kinds[min(pick, len(kinds) - 1)]
            faults.append(Fault(site="worker", kind=kind, shard_id=shard_id,
                                attempts=attempts, hang_seconds=hang_seconds))
        return cls(faults)

    def to_dict(self) -> dict[str, object]:
        return {"faults": [f.to_dict() for f in self.faults]}

    def __len__(self) -> int:
        return len(self.faults)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan({list(self.faults)!r})"


def corrupt_fragment(path: str | Path, mode: str = "bitflip") -> Path:
    """Damage a checkpoint fragment on disk (the ``"fragment"`` fault site).

    ``truncate`` halves the file (a torn write that bypassed the atomic rename,
    e.g. filesystem loss after a power cut); ``bitflip`` flips one bit mid-file
    (storage rot); ``tamper`` edits a row value while keeping the container
    structurally valid -- the case only the fragment checksum can catch.  All
    three modes understand both fragment formats: for columnar files, ``tamper``
    locates the value column through the header directory and rewrites its first
    float in place, and ``bitflip`` targets the middle of the column data (never
    header padding, which no checksum covers).
    """
    path = Path(path)
    data = path.read_bytes()
    if not data:
        raise ReproError(f"cannot corrupt empty fragment {path}")
    columnar = data.startswith(COLUMNAR_MAGIC)
    if mode == "truncate":
        # repro: allow[RPL003] deliberate in-place damage: this is the fault injector
        path.write_bytes(data[: len(data) // 2])
    elif mode == "bitflip":
        buffer = bytearray(data)
        if columnar:
            # Flip inside the first column's data so the damage is always under
            # a checksum (mid-file could land in inter-column zero padding).
            entry = peek_columnar_header(path)["columns"][0]
            target = int(entry["offset"]) + int(entry["nbytes"]) // 2
        else:
            target = len(buffer) // 2
        buffer[target] ^= 0x01
        # repro: allow[RPL003] deliberate in-place damage: this is the fault injector
        path.write_bytes(bytes(buffer))
    elif mode == "tamper":
        if columnar:
            header = peek_columnar_header(path)
            entry = next(e for e in header["columns"] if e["name"] == "value")
            if int(entry["nbytes"]) < 8:
                raise ReproError(f"fragment {path} has no rows to tamper with")
            offset = int(entry["offset"])
            current = struct.unpack_from("<d", data, offset)[0]
            buffer = bytearray(data)
            struct.pack_into("<d", buffer, offset,
                             123456.75 if current != 123456.75 else 654321.5)
            # repro: allow[RPL003] deliberate in-place damage: this is the fault injector
            path.write_bytes(bytes(buffer))
        else:
            payload = json.loads(data.decode("utf-8"))
            rows = payload.get("rows")
            if not rows:
                raise ReproError(f"fragment {path} has no rows to tamper with")
            rows[0][0] = 123456.75 if rows[0][0] != 123456.75 else 654321.5
            # repro: allow[RPL003] deliberate in-place damage: this is the fault injector
            path.write_bytes(json.dumps(payload).encode("utf-8"))
    else:
        raise ReproError(f"unknown corruption mode {mode!r}; "
                         f"expected one of {FRAGMENT_FAULT_KINDS}")
    return path
