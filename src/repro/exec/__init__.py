"""Parallel campaign execution.

The paper's evaluation is built entirely from per-(benchmark, GPU) campaign caches;
this subpackage is the execution layer that produces them at scale.  It splits a
campaign into deterministic shards (:mod:`repro.exec.planner`), evaluates them
serially or across a process pool (:mod:`repro.exec.executors`) with results
*byte-identical* to the serial reference, persists completed shards for resumable
runs (:mod:`repro.exec.checkpoint`), and exposes the whole thing as the suite's first
operational CLI (``python -m repro.exec``; see :mod:`repro.exec.cli`).

Quick start::

    from repro.exec import ParallelExecutor, run_campaign

    caches = run_campaign(executor=ParallelExecutor(workers=4),
                          checkpoint="ckpt/")

The division of labour mirrors worker-queue runner services: a *planner* that owns
the deterministic work breakdown, stateless *workers* that evaluate index slices by
name or by picklable spec, a *checkpoint store* for completed work units, and
*executors* that merge in plan order.  Custom benchmarks are first-class: anything
registered through :func:`repro.core.registry.register_benchmark` (e.g. the
generated scenarios of :mod:`repro.kernels.synthetic`) plans, runs in parallel and
resumes exactly like the built-in kernels -- its ``"module:factory"`` spec rides the
plan manifest, so ``resume``/``status`` need no registration at all.  Multi-host
sharding only needs a new executor -- the plan, worker and checkpoint contracts
already hold.
"""

from repro.exec.checkpoint import CheckpointStore
from repro.exec.config import (
    MEMOIZE_THRESHOLD_ENV,
    apply_memoize_threshold,
    resolve_memoize_threshold,
)
from repro.exec.executors import (
    Executor,
    ParallelExecutor,
    SerialExecutor,
    resume_campaign,
    run_campaign,
)
from repro.exec.faults import Fault, FaultPlan, corrupt_fragment
from repro.exec.progress import ShardProgressReporter
from repro.exec.retry import RetryPolicy
from repro.exec.planner import (
    DEFAULT_SHARD_SIZE,
    PAPER_SAMPLE_SIZE,
    PAPER_SAMPLED_BENCHMARKS,
    CampaignPlan,
    CampaignUnit,
    Shard,
    ShardPlanner,
)

__all__ = [
    "CampaignPlan", "CampaignUnit", "CheckpointStore", "Executor",
    "Fault", "FaultPlan", "ParallelExecutor", "RetryPolicy", "SerialExecutor",
    "Shard", "ShardPlanner", "corrupt_fragment",
    "run_campaign", "resume_campaign", "ShardProgressReporter",
    "resolve_memoize_threshold", "apply_memoize_threshold",
    "DEFAULT_SHARD_SIZE", "MEMOIZE_THRESHOLD_ENV",
    "PAPER_SAMPLE_SIZE", "PAPER_SAMPLED_BENCHMARKS",
]
