"""Command-line entry point of the campaign-execution subsystem.

``python -m repro.exec`` is the first operational surface of the suite: it plans,
runs, resumes and inspects measurement campaigns without writing any Python.

Subcommands
-----------

``plan``
    Print the deterministic shard plan of a campaign (units, counts, shards) without
    evaluating anything.
``run``
    Execute a campaign (serial, or parallel with ``--workers N``), optionally
    checkpointing shards and writing the merged caches as
    ``<benchmark>_<gpu>.json[.gz]`` files.
``resume``
    Finish an interrupted ``run`` from its checkpoint directory; only missing shards
    are evaluated (damaged fragments are discarded and re-executed) and the merged
    caches are byte-identical to an uninterrupted run.
``status``
    Show per-unit completion of a checkpoint directory, plus its retry/quarantine
    history.
``doctor``
    Integrity-check every fragment of a checkpoint directory against its manifest
    and report stale ``*.tmp`` litter left by interrupted writes; ``--fix``
    deletes the damaged fragments (so ``resume`` re-executes exactly those
    shards) and sweeps the litter.

``run`` and ``resume`` accept ``--cache-format {json,columnar}``: ``json`` (the
default) keeps today's interchange files byte-for-byte; ``columnar`` stores
checkpoint fragments and ``--output-dir`` caches in the binary memory-mappable
format of :mod:`repro.io.columnar` (identical values, ~order-of-magnitude faster
replay opens).  A checkpoint directory holds one format; ``resume`` auto-detects
it.

Fault tolerance: ``run`` and ``resume`` accept ``--max-retries N`` (retry transient
shard failures on a deterministic backoff schedule, then quarantine instead of
aborting -- exit code 3 signals a completed-but-quarantined campaign) and
``--shard-timeout S`` (kill and retry shards stuck past a wall-clock deadline;
parallel runs only).  Ctrl-C and SIGTERM shut down gracefully: completed shards are
flushed to the checkpoint first, and exit code 130 marks the run resumable.

Examples
--------

::

    python -m repro.exec plan --benchmarks hotspot --gpus RTX_3090
    python -m repro.exec run --benchmarks hotspot,expdist --workers 4 \
        --max-retries 3 --shard-timeout 600 \
        --checkpoint-dir ckpt/ --output-dir caches/
    python -m repro.exec resume --checkpoint-dir ckpt/ --workers 4 --output-dir caches/
    python -m repro.exec status --checkpoint-dir ckpt/
    python -m repro.exec doctor --checkpoint-dir ckpt/ --fix

Custom benchmarks join a campaign by *spec* (no registration, no Python): the spec is
recorded into the plan manifest, so ``resume``/``status`` round-trip it::

    python -m repro.exec run --gpus RTX_3090 --workers 4 \
        --benchmark-spec 'scn={"factory": "repro.kernels.synthetic:create_benchmark",
                               "kwargs": {"name": "scn", "family": "coupled", "seed": 7}}' \
        --benchmarks scn --checkpoint-dir ckpt/
"""

from __future__ import annotations

import argparse
import contextlib
import json
import signal
import sys
import threading
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.core.errors import ReproError
from repro.core.registry import (
    BenchmarkSpec,
    _normalize_benchmark_name,
    _require_matching_name,
)
from repro.exec.checkpoint import CheckpointStore
from repro.exec.config import resolve_memoize_threshold
from repro.exec.executors import (
    Executor,
    ParallelExecutor,
    SerialExecutor,
    resume_campaign,
)
from repro.exec.planner import PAPER_SAMPLE_SIZE, DEFAULT_SHARD_SIZE, ShardPlanner
from repro.exec.progress import ShardProgressReporter, format_duration
from repro.exec.retry import RetryPolicy

__all__ = ["main", "build_parser"]

#: Exit code of a campaign that completed but quarantined shards (their units are
#: withheld from the merged caches; `status`/`resume` show and finish them).
EXIT_QUARANTINED = 3

#: Exit code of an interrupted (Ctrl-C / SIGTERM) but resumable run -- 128+SIGINT,
#: the conventional shell encoding.
EXIT_INTERRUPTED = 130


@contextlib.contextmanager
def _sigterm_as_interrupt():
    """Translate SIGTERM into KeyboardInterrupt while a campaign runs.

    Schedulers and ``timeout(1)`` send SIGTERM; routing it through the same
    graceful-shutdown path as Ctrl-C means completed shards are flushed to the
    checkpoint and the run exits resumable instead of dying mid-write.  Signal
    handlers are main-thread-only; elsewhere (tests, embedding) this is a no-op.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return

    def _handler(signum, frame):
        raise KeyboardInterrupt

    try:
        previous = signal.signal(signal.SIGTERM, _handler)
    except (ValueError, OSError):  # pragma: no cover - restricted environment
        yield
        return
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


def _names(raw: str | None, known: Sequence[str], kind: str) -> list[str] | None:
    """Parse a comma-separated name list, validating against the registry."""
    if raw is None:
        return None
    names = [part.strip() for part in raw.split(",") if part.strip()]
    unknown = [n for n in names if n not in known]
    if unknown:
        raise ReproError(f"unknown {kind} {unknown}; known: {sorted(known)}")
    return names


def _select(mapping: Mapping[str, Any], names: list[str] | None) -> dict[str, Any]:
    if names is None:
        return dict(mapping)
    return {name: mapping[name] for name in names}


def _add_campaign_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--benchmarks", default=None, metavar="NAMES",
                        help="comma-separated benchmark names (default: the seven "
                             "paper kernels plus every registered or --benchmark-"
                             "spec'd custom benchmark)")
    parser.add_argument("--gpus", default=None, metavar="NAMES",
                        help="comma-separated GPU names (default: the paper's four)")
    parser.add_argument("--sample-size", type=int, default=PAPER_SAMPLE_SIZE,
                        help="unique configurations per sampled campaign "
                             "(default: %(default)s, the paper's design)")
    parser.add_argument("--exhaustive-limit", type=int, default=None,
                        help="sample any space whose cardinality exceeds this "
                             "(default: follow the paper exactly)")
    parser.add_argument("--seed", type=int, default=2023,
                        help="base campaign seed; each GPU gets seed+index "
                             "(default: %(default)s)")
    parser.add_argument("--no-noise", action="store_true",
                        help="disable the deterministic measurement-noise model")
    parser.add_argument("--shard-size", type=int, default=DEFAULT_SHARD_SIZE,
                        help="maximum configurations per shard (default: %(default)s)")
    parser.add_argument("--benchmark-spec", action="append", default=None,
                        dest="benchmark_specs", metavar="NAME=SPEC",
                        help="add a custom benchmark: NAME=MODULE:FACTORY or "
                             "NAME={\"factory\": ..., \"kwargs\": {...}} (JSON); "
                             "repeatable.  The spec is recorded in the plan "
                             "manifest, so resume/status need no registration.")


def _add_executor_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes; 1 runs serially (default: %(default)s)")
    parser.add_argument("--memoize-threshold", type=int, default=None,
                        help="feasible-set memoization ceiling for execution "
                             "workers (overrides REPRO_MEMOIZE_THRESHOLD; default: "
                             "the space's own threshold)")
    parser.add_argument("--output-dir", default=None, metavar="DIR",
                        help="write merged caches as <benchmark>_<gpu>.json[.gz] "
                             "(or .col) here")
    parser.add_argument("--compress", action="store_true",
                        help="gzip the cache files written to --output-dir "
                             "(JSON format only)")
    parser.add_argument("--cache-format", default=None,
                        choices=("json", "columnar"), metavar="FMT",
                        help="on-disk format of checkpoint fragments and "
                             "--output-dir caches: 'json' (interchange, the "
                             "default) or 'columnar' (binary memory-mappable "
                             "columns, see repro.io.columnar).  resume "
                             "auto-detects the checkpoint's format when omitted "
                             "and refuses a conflicting choice")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-shard progress lines")
    parser.add_argument("--max-retries", type=int, default=None, metavar="N",
                        help="retry transiently failed shards up to N times on a "
                             "deterministic backoff schedule, then quarantine them "
                             "instead of aborting the campaign (default: fail fast "
                             "on the first shard error)")
    parser.add_argument("--shard-timeout", type=float, default=None, metavar="S",
                        help="wall-clock seconds one shard attempt may take; a "
                             "worker stuck past it is killed and the shard retried "
                             "(parallel runs only; default: no timeout)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.exec",
        description="Plan, run, resume and inspect measurement campaigns.")
    sub = parser.add_subparsers(dest="command", required=True)

    plan = sub.add_parser("plan", help="print the shard plan of a campaign")
    _add_campaign_arguments(plan)

    run = sub.add_parser("run", help="execute a campaign")
    _add_campaign_arguments(run)
    _add_executor_arguments(run)
    run.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                     help="persist completed shards here for resume")

    resume = sub.add_parser("resume", help="finish an interrupted campaign")
    resume.add_argument("--checkpoint-dir", required=True, metavar="DIR")
    _add_executor_arguments(resume)

    status = sub.add_parser("status", help="show checkpoint completion")
    status.add_argument("--checkpoint-dir", required=True, metavar="DIR")

    doctor = sub.add_parser("doctor",
                            help="integrity-check checkpoint fragments")
    doctor.add_argument("--checkpoint-dir", required=True, metavar="DIR")
    doctor.add_argument("--fix", action="store_true",
                        help="delete damaged fragments so resume re-executes "
                             "exactly those shards")
    return parser


def _make_executor(args: argparse.Namespace) -> Executor:
    threshold = resolve_memoize_threshold(args.memoize_threshold)
    retry_policy = (RetryPolicy(max_retries=args.max_retries)
                    if args.max_retries is not None else None)
    if args.workers > 1:
        return ParallelExecutor(workers=args.workers, memoize_threshold=threshold,
                                retry_policy=retry_policy,
                                shard_timeout=args.shard_timeout)
    return SerialExecutor(memoize_threshold=threshold, retry_policy=retry_policy,
                          shard_timeout=args.shard_timeout)


def _parse_benchmark_spec(raw: str) -> tuple[str, BenchmarkSpec]:
    """Parse one ``--benchmark-spec`` argument into ``(name, spec)``."""
    from repro.kernels import BENCHMARK_NAMES

    name, sep, value = raw.partition("=")
    name = _normalize_benchmark_name(name)
    value = value.strip()
    if not sep or not name or not value:
        raise ReproError(
            f"--benchmark-spec expects NAME=MODULE:FACTORY or NAME=JSON, got {raw!r}")
    if name in BENCHMARK_NAMES:
        # Same guard register_benchmark enforces: a spec must never silently
        # replace a paper kernel (its caches would carry the kernel's name).
        raise ReproError(
            f"--benchmark-spec {name}: cannot shadow the built-in {name!r} kernel")
    if value.startswith("{"):
        try:
            data = json.loads(value)
        except json.JSONDecodeError as exc:
            raise ReproError(
                f"--benchmark-spec {name}: invalid JSON spec ({exc})") from None
        if not isinstance(data, Mapping) or "factory" not in data:
            raise ReproError(
                f"--benchmark-spec {name}: JSON spec must be an object with a "
                f"'factory' key")
        return name, BenchmarkSpec.from_dict(data)
    return name, BenchmarkSpec(value)


def _planner_from_args(args: argparse.Namespace) -> ShardPlanner:
    from repro.core.registry import benchmark_spec, registered_benchmarks
    from repro.gpus.specs import all_gpus
    from repro.kernels import BENCHMARK_NAMES

    specs: dict[str, BenchmarkSpec] = {}
    for raw in args.benchmark_specs or ():
        name, spec = _parse_benchmark_spec(raw)
        specs[name] = spec
    # Known names in stable order: paper kernels, registered customs, spec'd
    # additions.  Only the *selected* benchmarks are constructed, so planning one
    # scenario stays cheap no matter how many are registered.  Selection tokens
    # get the same normalization the registry applies to spec names, so
    # `--benchmark-spec demo-scn=... --benchmarks demo-scn` agrees with itself.
    known = list(BENCHMARK_NAMES)
    known += [n for n in registered_benchmarks() if n not in known]
    known += [n for n in specs if n not in known]
    raw_selection = args.benchmarks
    if raw_selection is not None:
        raw_selection = ",".join(_normalize_benchmark_name(part)
                                 for part in raw_selection.split(",") if part.strip())
    selected = _names(raw_selection, known, "benchmarks")
    if selected is None:
        selected = known
    benchmarks = {name: (_require_matching_name(name, specs[name].build())
                         if name in specs else benchmark_spec(name).build())
                  for name in selected}
    gpus = all_gpus()
    return ShardPlanner(
        benchmarks=benchmarks,
        gpus=_select(gpus, _names(args.gpus, list(gpus), "GPUs")),
        sample_size=args.sample_size,
        exhaustive_limit=args.exhaustive_limit,
        seed=args.seed,
        with_noise=not args.no_noise,
        shard_size=args.shard_size,
        specs=specs,
    )


def _print_plan_table(plan, out) -> None:
    print(f"{'benchmark':>14} {'gpu':>12} {'mode':>16} {'seed':>6} "
          f"{'configs':>9} {'shards':>7}", file=out)
    for row in plan.summary_rows():
        print(f"{row['benchmark']:>14} {row['gpu']:>12} {row['mode']:>16} "
              f"{row['seed']:>6} {row['configs']:>9} {row['shards']:>7}", file=out)
    print(f"total: {plan.n_configs} configurations in {len(plan.shards)} shards "
          f"(shard size {plan.shard_size})", file=out)


def _write_caches(caches, output_dir: str, compress: bool, out,
                  cache_format: str | None = None) -> None:
    from repro.io.cachefile import save_cache
    from repro.io.columnar import COLUMNAR_SUFFIX

    if cache_format == "columnar":
        if compress:
            raise ReproError("--compress applies to JSON cache files only; "
                             "columnar files are binary and uncompressed")
        directory = Path(output_dir)
        for (benchmark, gpu), cache in caches.items():
            path = cache.to_columnar(
                directory / f"{benchmark}_{gpu}{COLUMNAR_SUFFIX}")
            print(f"wrote {path} ({len(cache)} entries)", file=out)
        return
    suffix = ".json.gz" if compress else ".json"
    directory = Path(output_dir)
    for (benchmark, gpu), cache in caches.items():
        path = save_cache(cache, directory / f"{benchmark}_{gpu}{suffix}")
        print(f"wrote {path} ({len(cache)} entries)", file=out)


def main(argv: Sequence[str] | None = None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    try:
        if args.command == "plan":
            _print_plan_table(_planner_from_args(args).plan(), out)
            return 0

        progress = None if getattr(args, "quiet", True) else ShardProgressReporter(
            emit=lambda line: print(line, file=out))

        if args.command == "run":
            planner = _planner_from_args(args)
            executor = _make_executor(args)
            checkpoint = (CheckpointStore(args.checkpoint_dir,
                                          fragment_format=args.cache_format)
                          if args.checkpoint_dir else None)
            try:
                with _sigterm_as_interrupt():
                    caches = executor.run(
                        planner.plan(), benchmarks=planner.benchmarks,
                        gpus=planner.gpus, checkpoint=checkpoint,
                        progress=progress)
            except KeyboardInterrupt:
                _print_interrupted(args.checkpoint_dir, out)
                return EXIT_INTERRUPTED
            # Persist before summarising: a summary hiccup must never discard a
            # completed campaign's caches.
            if args.output_dir:
                _write_caches(caches, args.output_dir, args.compress, out,
                              args.cache_format)
            for (benchmark, gpu), cache in caches.items():
                best = (f"best {cache.optimum():.4f} ms" if cache.num_valid
                        else "no valid entries")
                print(f"{benchmark}/{gpu}: {len(cache)} entries, {best}", file=out)
            return _print_quarantine(executor, out)

        if args.command == "resume":
            executor = _make_executor(args)
            # No explicit --cache-format means "whatever the directory holds";
            # an explicit one is a claim the store verifies against the manifest.
            store = CheckpointStore(args.checkpoint_dir,
                                    fragment_format=args.cache_format)
            try:
                with _sigterm_as_interrupt():
                    caches = resume_campaign(store, executor=executor,
                                             progress=progress)
            except KeyboardInterrupt:
                _print_interrupted(args.checkpoint_dir, out)
                return EXIT_INTERRUPTED
            if args.output_dir:
                _write_caches(caches, args.output_dir, args.compress, out,
                              args.cache_format or store.fragment_format)
            for (benchmark, gpu), cache in caches.items():
                print(f"{benchmark}/{gpu}: {len(cache)} entries", file=out)
            return _print_quarantine(executor, out)

        if args.command == "doctor":
            store = CheckpointStore(args.checkpoint_dir)
            if not store.has_manifest():
                print(f"no manifest in {args.checkpoint_dir}", file=out)
                return 1
            report = store.verify_fragments()
            print(f"{len(report['ok'])} ok, {len(report['missing'])} missing, "
                  f"{len(report['damaged'])} damaged "
                  f"(of {report['shards_total']} shards), "
                  f"{len(report['stale_tmp'])} stale tmp file(s)", file=out)
            for record in report["damaged"]:
                print(f"damaged shard {record['shard_id']:>5} "
                      f"[{record['benchmark']}/{record['gpu']}]: "
                      f"{record['error']}", file=out)
            for tmp in report["stale_tmp"]:
                print(f"stale tmp {tmp} (leftover of an interrupted write; "
                      f"never read, safe to delete)", file=out)
            if not report["damaged"] and not report["stale_tmp"]:
                return 0
            if not args.fix:
                print("run again with --fix to delete the damaged fragments "
                      "(resume then re-executes exactly those shards) and sweep "
                      "the stale tmp litter", file=out)
                return 1
            for record in report["damaged"]:
                Path(record["path"]).unlink(missing_ok=True)
                print(f"deleted {record['path']}; shard {record['shard_id']} "
                      f"will re-execute on resume", file=out)
            for tmp in store.sweep_stale_tmp():
                print(f"swept {tmp}", file=out)
            return 0

        if args.command == "status":
            store = CheckpointStore(args.checkpoint_dir)
            if not store.has_manifest():
                print(f"no manifest in {args.checkpoint_dir}", file=out)
                return 1
            status = store.status()
            for row in status["units"]:
                print(f"{row['benchmark']:>14}/{row['gpu']:<12} "
                      f"shards {row['shards_completed']:>4}/{row['shards_total']:<4} "
                      f"configs {row['configs_completed']:>8}/{row['configs_total']:<8} "
                      f"{row['percent']:>5.1f}%",
                      file=out)
            summary = (f"total: {status['shards_completed']}/{status['shards_total']} "
                       f"shards, {status['configs_completed']}/"
                       f"{status['configs_total']} configs "
                       f"({status['percent']:.1f}%) complete")
            if "elapsed_s" in status:
                summary += (f"; active {format_duration(status['elapsed_s'])} "
                            f"at {status['configs_per_s']:.0f} configs/s")
                if status.get("sessions", 1) > 1:
                    summary += f" over {status['sessions']} sessions"
                if "eta_s" in status:
                    summary += f", eta {format_duration(status['eta_s'])}"
            print(summary, file=out)
            if status.get("retry_attempts"):
                print(f"retries: {status['retry_attempts']} attempt(s) across "
                      f"{status['retried_shards']} shard(s)", file=out)
            if status.get("repaired_shards"):
                print(f"repaired: {status['repaired_shards']} damaged fragment(s) "
                      f"discarded and re-executed", file=out)
            if status.get("quarantined_shards"):
                print(f"quarantined: {status['quarantined_shards']} shard(s)",
                      file=out)
                for record in status.get("quarantined", ()):
                    print(f"  shard {record['shard_id']:>5} "
                          f"[{record['benchmark']}/{record['gpu']}] "
                          f"{record['error_type']}: {record['error']}", file=out)
            return 0
    except ReproError as exc:
        print(f"error: {exc}", file=out)
        return 2
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


def _print_interrupted(checkpoint_dir: str | None, out) -> None:
    if checkpoint_dir:
        print(f"interrupted; completed shards are checkpointed in "
              f"{checkpoint_dir} -- finish with `python -m repro.exec resume "
              f"--checkpoint-dir {checkpoint_dir}`", file=out)
    else:
        print("interrupted; no --checkpoint-dir was given, so completed shards "
              "were not persisted", file=out)


def _print_quarantine(executor: Executor, out) -> int:
    """Summarize a finished run's quarantine; the exit code of run/resume."""
    if not executor.quarantine:
        return 0
    print(f"quarantined {len(executor.quarantine)} shard(s); their units are "
          f"withheld from the merged caches:", file=out)
    for record in executor.quarantine:
        print(f"  shard {record['shard_id']:>5} "
              f"[{record['benchmark']}/{record['gpu']} "
              f"{record['start']}:{record['stop']}] after {record['attempts']} "
              f"attempt(s): {record['error_type']}: {record['error']}", file=out)
    return EXIT_QUARANTINED
