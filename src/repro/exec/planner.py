"""Deterministic shard planning for measurement campaigns.

A campaign -- the paper's per-(benchmark, GPU) evaluation design -- is an
embarrassingly parallel workload once its evaluation order is pinned down: every
configuration it will visit is identified by a mixed-radix index of the benchmark's
:class:`~repro.core.searchspace.SearchSpace`, and the order is a pure function of the
campaign definition (exhaustive campaigns visit the ascending feasible set, sampled
campaigns visit the unique-rejection-sampling stream of their seed).  The planner
exploits that:

* a :class:`CampaignUnit` fixes one (benchmark, GPU) pair's design -- sample size
  (None = exhaustive), seed, noise flag -- and its exact evaluation count;
* a :class:`Shard` is a contiguous slice ``[start, stop)`` of one unit's
  evaluation-order index array, the atom of distribution and checkpointing;
* a :class:`CampaignPlan` is the ordered list of units and shards plus the settings
  that produced them; it serializes to JSON, which is what checkpoint manifests store
  and what ``python -m repro.exec plan`` prints.

Because shard boundaries are deterministic offsets into a deterministic evaluation
order, *any* executor that evaluates every shard and merges the rows in shard order
reproduces the serial campaign byte for byte -- the invariant the executor tests
assert and the checkpoint/resume machinery relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

import numpy as np

from repro.core.errors import ReproError
from repro.core.registry import BenchmarkSpec
from repro.core.searchspace import SearchSpace

__all__ = [
    "PAPER_SAMPLED_BENCHMARKS", "PAPER_SAMPLE_SIZE", "DEFAULT_SHARD_SIZE",
    "CUSTOM_EXHAUSTIVE_LIMIT",
    "CampaignUnit", "Shard", "CampaignPlan", "ShardPlanner", "unit_indices",
]

#: Benchmarks the paper samples (10 000 random configurations) instead of enumerating.
PAPER_SAMPLED_BENCHMARKS: frozenset[str] = frozenset({"hotspot", "dedispersion", "expdist"})

#: Number of random configurations per sampled campaign in the paper.
PAPER_SAMPLE_SIZE: int = 10_000

#: Default shard length: small enough that a 10k-sample unit splits across a worker
#: pool, large enough that per-shard dispatch overhead stays negligible.
DEFAULT_SHARD_SIZE: int = 2_500

#: Cardinality ceiling above which *custom* (non-paper) benchmarks are sampled when
#: no explicit ``exhaustive_limit`` is given.  The paper kernels follow the paper's
#: design exactly; a registered scenario with a 1e8-point space must not silently
#: schedule a full enumeration (feasible-set sweep at plan time, every feasible
#: config at run time).  Aligned with the feasible-memoization default, which is
#: also the largest space the suite treats as comfortably enumerable.
CUSTOM_EXHAUSTIVE_LIMIT: int = 1_000_000


@dataclass(frozen=True)
class CampaignUnit:
    """The evaluation design of one (benchmark, GPU) pair.

    Attributes
    ----------
    benchmark / gpu:
        Canonical names (workers re-resolve them against the registries).
    sample_size:
        Unique random configurations to draw, or None for exhaustive enumeration.
    seed:
        Seed of the sampled index stream (ignored for exhaustive units but kept so
        the manifest fully describes the campaign).
    with_noise:
        Whether the simulated measurements include the deterministic noise model.
    n_configs:
        Exact number of configurations this unit evaluates (feasible count for
        exhaustive units, ``sample_size`` otherwise).
    spec:
        Optional benchmark spec dictionary (:meth:`~repro.core.registry.BenchmarkSpec.to_dict`
        form) describing how workers -- and ``resume`` runs with no registration --
        rebuild this benchmark.  None for the built-in kernels, which workers
        rebuild from :func:`repro.kernels.all_benchmarks` as before.
    """

    benchmark: str
    gpu: str
    sample_size: int | None
    seed: int
    with_noise: bool
    n_configs: int
    spec: dict[str, Any] | None = None

    @property
    def key(self) -> tuple[str, str]:
        """Dictionary key used for caches and merges: ``(benchmark, gpu)``."""
        return (self.benchmark, self.gpu)

    @property
    def exhaustive(self) -> bool:
        """True when this unit enumerates the whole feasible set."""
        return self.sample_size is None

    def to_dict(self) -> dict[str, Any]:
        return {"benchmark": self.benchmark, "gpu": self.gpu,
                "sample_size": self.sample_size, "seed": self.seed,
                "with_noise": self.with_noise, "n_configs": self.n_configs,
                "spec": self.spec}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignUnit":
        spec = data.get("spec")
        return cls(benchmark=data["benchmark"], gpu=data["gpu"],
                   sample_size=data["sample_size"], seed=int(data["seed"]),
                   with_noise=bool(data["with_noise"]), n_configs=int(data["n_configs"]),
                   spec=dict(spec) if spec else None)


@dataclass(frozen=True)
class Shard:
    """One contiguous slice of a unit's evaluation order -- the unit of work.

    ``start``/``stop`` are offsets into the unit's evaluation-order index array (not
    raw mixed-radix indices), so a shard is meaningful without materialising that
    array and fragments can validate their length against ``stop - start``.
    """

    shard_id: int
    benchmark: str
    gpu: str
    start: int
    stop: int

    @property
    def unit_key(self) -> tuple[str, str]:
        return (self.benchmark, self.gpu)

    @property
    def n_configs(self) -> int:
        return self.stop - self.start

    @property
    def fragment_name(self) -> str:
        """Checkpoint fragment file name for this shard."""
        return f"shard_{self.shard_id:05d}.json"

    def to_dict(self) -> dict[str, Any]:
        return {"shard_id": self.shard_id, "benchmark": self.benchmark,
                "gpu": self.gpu, "start": self.start, "stop": self.stop}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Shard":
        return cls(shard_id=int(data["shard_id"]), benchmark=data["benchmark"],
                   gpu=data["gpu"], start=int(data["start"]), stop=int(data["stop"]))


@dataclass(frozen=True)
class CampaignPlan:
    """An ordered, serializable description of every shard of a campaign."""

    units: tuple[CampaignUnit, ...]
    shards: tuple[Shard, ...]
    shard_size: int

    @property
    def n_configs(self) -> int:
        """Total number of configurations the campaign evaluates."""
        return sum(u.n_configs for u in self.units)

    def unit(self, benchmark: str, gpu: str) -> CampaignUnit:
        for u in self.units:
            if u.key == (benchmark, gpu):
                return u
        raise ReproError(f"plan has no unit ({benchmark}, {gpu})")

    def shards_of(self, unit: CampaignUnit) -> list[Shard]:
        """Shards of one unit, in evaluation (offset) order."""
        return sorted((s for s in self.shards if s.unit_key == unit.key),
                      key=lambda s: s.start)

    def shard_by_id(self, shard_id: int) -> Shard:
        """The shard with the given id.

        Shards are the unit of retry, timeout and quarantine as well as of
        checkpointing, so health records and quarantine reports refer to them by
        id; this is the reverse lookup.
        """
        for s in self.shards:
            if s.shard_id == shard_id:
                return s
        raise ReproError(f"plan has no shard {shard_id}")

    def to_dict(self) -> dict[str, Any]:
        return {"shard_size": self.shard_size,
                "units": [u.to_dict() for u in self.units],
                "shards": [s.to_dict() for s in self.shards]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignPlan":
        return cls(units=tuple(CampaignUnit.from_dict(d) for d in data["units"]),
                   shards=tuple(Shard.from_dict(d) for d in data["shards"]),
                   shard_size=int(data["shard_size"]))

    def summary_rows(self) -> list[dict[str, Any]]:
        """One row per unit for reports and the ``plan``/``status`` CLI."""
        rows = []
        for u in self.units:
            rows.append({
                "benchmark": u.benchmark, "gpu": u.gpu,
                "mode": "exhaustive" if u.exhaustive else f"sampled({u.sample_size})",
                "seed": u.seed, "configs": u.n_configs,
                "shards": len(self.shards_of(u)),
            })
        return rows


def unit_indices(space: SearchSpace, unit: CampaignUnit) -> np.ndarray:
    """The unit's evaluation-order mixed-radix index array.

    Exhaustive units visit the ascending feasible set; sampled units replay the
    batched unique rejection-sampling stream of ``unit.seed`` -- exactly the
    configurations, in exactly the order, that
    :meth:`~repro.kernels.base.KernelBenchmark.build_cache` evaluates serially.
    """
    if unit.exhaustive:
        feasible = space.feasible_indices(force=True)
        if space.cardinality > space.memoize_threshold:
            # Dropping the memo reference does not invalidate our local one; no
            # copy, so peak memory stays one index array.
            space.release_feasible_memo()
        return feasible
    return space.sample_indices(unit.sample_size, rng=unit.seed,
                                valid_only=True, unique=True)


class ShardPlanner:
    """Splits a campaign into deterministic shards.

    Parameters mirror :class:`~repro.analysis.campaign.Campaign` (which delegates its
    design decisions here): ``sampled_benchmarks`` are always sampled,
    ``exhaustive_limit`` forces sampling above a cardinality ceiling, and each GPU's
    sampled stream is seeded ``seed + index`` with GPUs in sorted-name order.

    Parameters
    ----------
    benchmarks:
        Mapping of benchmark name to :class:`~repro.kernels.base.KernelBenchmark`
        (default: the full registry).
    gpus:
        Mapping of GPU name to spec (default: the paper's four GPUs).
    sample_size:
        Unique configurations per sampled campaign (paper: 10 000).
    exhaustive_limit:
        Benchmarks whose cardinality exceeds this are sampled even if the paper
        enumerates them; None follows the paper exactly.
    seed:
        Base seed (each GPU gets ``seed + index``).
    with_noise:
        Whether measurements include the deterministic noise model.
    shard_size:
        Maximum configurations per shard.
    specs:
        Optional explicit benchmark specs (any :meth:`BenchmarkSpec.parse` form)
        recorded into the plan's units so that workers, checkpoint manifests and
        registration-free ``resume`` runs can rebuild the benchmarks.  Names
        without an explicit spec fall back to the open registry
        (:func:`repro.core.registry.benchmark_spec`); built-in kernels stay
        spec-free (workers rebuild them from the kernel registry as before).
    """

    def __init__(self, benchmarks: Mapping[str, Any] | None = None,
                 gpus: Mapping[str, Any] | None = None,
                 sample_size: int = PAPER_SAMPLE_SIZE,
                 exhaustive_limit: int | None = None,
                 seed: int = 2023, with_noise: bool = True,
                 shard_size: int = DEFAULT_SHARD_SIZE,
                 sampled_benchmarks: frozenset[str] = PAPER_SAMPLED_BENCHMARKS,
                 specs: Mapping[str, Any] | None = None):
        if benchmarks is None:
            from repro.core.registry import benchmark_suite
            benchmarks = benchmark_suite()
        if gpus is None:
            from repro.gpus.specs import all_gpus
            gpus = all_gpus()
        if shard_size <= 0:
            raise ReproError(f"shard_size must be positive, got {shard_size}")
        self.benchmarks = dict(benchmarks)
        self.gpus = dict(gpus)
        self.sample_size = int(sample_size)
        self.exhaustive_limit = exhaustive_limit
        self.seed = int(seed)
        self.with_noise = with_noise
        self.shard_size = int(shard_size)
        self.sampled_benchmarks = frozenset(sampled_benchmarks)
        self.specs = {name: BenchmarkSpec.parse(spec)
                      for name, spec in (specs or {}).items()}
        self._exhaustive_counts: dict[str, int] = {}

    # -------------------------------------------------------------------- design

    def is_sampled(self, benchmark_name: str) -> bool:
        """True when the campaign for this benchmark uses random sampling.

        Paper kernels follow the paper design exactly (the ``sampled_benchmarks``
        list, or an explicit ``exhaustive_limit``).  Custom benchmarks above
        :data:`CUSTOM_EXHAUSTIVE_LIMIT` are sampled by default -- a registered
        scenario with a huge space must opt *in* to exhaustive enumeration via
        ``exhaustive_limit``, not hang plan time by accident.
        """
        if benchmark_name in self.sampled_benchmarks:
            return True
        if self.exhaustive_limit is not None:
            return self.benchmarks[benchmark_name].space.cardinality > self.exhaustive_limit
        from repro.kernels import BENCHMARK_NAMES

        if benchmark_name not in BENCHMARK_NAMES:
            return (self.benchmarks[benchmark_name].space.cardinality
                    > CUSTOM_EXHAUSTIVE_LIMIT)
        return False

    def unit_seed(self, gpu_name: str) -> int:
        """Seed of one GPU's sampled streams (``seed + index``, sorted GPU names)."""
        return self.seed + sorted(self.gpus).index(gpu_name)

    def spec_for(self, benchmark_name: str) -> dict[str, Any] | None:
        """Spec dictionary recorded into this benchmark's units, or None.

        Explicit ``specs=`` entries win; otherwise custom registrations in the
        open registry supply their spec, and built-in kernels return None (the
        worker rebuild path that predates specs).
        """
        spec = self.specs.get(benchmark_name)
        if spec is not None:
            return spec.to_dict()
        from repro.core.registry import registered_benchmarks

        registered = registered_benchmarks().get(benchmark_name)
        return registered.to_dict() if registered is not None else None

    def unit_for(self, benchmark_name: str, gpu_name: str) -> CampaignUnit:
        """The campaign unit of one (benchmark, GPU) pair."""
        benchmark = self.benchmarks[benchmark_name]
        if gpu_name not in self.gpus:
            raise ReproError(f"unknown GPU {gpu_name!r}; known: {sorted(self.gpus)}")
        sampled = self.is_sampled(benchmark_name)
        if sampled:
            n_configs = self.sample_size
        elif benchmark_name in self._exhaustive_counts:
            n_configs = self._exhaustive_counts[benchmark_name]
        else:
            space = benchmark.space
            feasible = space.feasible_indices(force=True)
            n_configs = self._exhaustive_counts[benchmark_name] = int(feasible.size)
            if space.cardinality > space.memoize_threshold:
                # Counting must not permanently pin a memo the space's threshold
                # says should stream; the per-benchmark count is memoized here
                # instead.  Execution later re-enumerates once (the deliberate
                # memory-over-time tradeoff of the threshold) -- above-threshold
                # *exhaustive* units never occur in the paper design.
                space.release_feasible_memo()
        return CampaignUnit(benchmark=benchmark_name, gpu=gpu_name,
                            sample_size=self.sample_size if sampled else None,
                            seed=self.unit_seed(gpu_name),
                            with_noise=self.with_noise, n_configs=n_configs,
                            spec=self.spec_for(benchmark_name))

    def units(self) -> list[CampaignUnit]:
        """Every (benchmark, GPU) unit, benchmarks in mapping order, GPUs sorted."""
        return [self.unit_for(b, g) for b in self.benchmarks for g in sorted(self.gpus)]

    # ---------------------------------------------------------------------- plans

    def plan(self, units: Sequence[CampaignUnit] | None = None) -> CampaignPlan:
        """Split the given units (default: all) into a deterministic shard plan."""
        if units is None:
            units = self.units()
        shards: list[Shard] = []
        shard_id = 0
        for unit in units:
            for start in range(0, unit.n_configs, self.shard_size):
                stop = min(start + self.shard_size, unit.n_configs)
                shards.append(Shard(shard_id=shard_id, benchmark=unit.benchmark,
                                    gpu=unit.gpu, start=start, stop=stop))
                shard_id += 1
        return CampaignPlan(units=tuple(units), shards=tuple(shards),
                            shard_size=self.shard_size)

    def unit_indices(self, unit: CampaignUnit) -> np.ndarray:
        """Evaluation-order index array of one unit (see :func:`unit_indices`)."""
        return unit_indices(self.benchmarks[unit.benchmark].space, unit)
