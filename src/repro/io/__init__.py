"""Persistence helpers: cache files and tuning-result files.

The BAT project distributes its measurement campaigns as JSON cache files so that
search-algorithm research can run without a GPU.  This subpackage mirrors that:
campaign caches and tuning results serialize to JSON (optionally gzip-compressed), and
load back into the same objects the analysis layer consumes.
"""

from repro.io.cachefile import save_cache, load_cache
from repro.io.results_io import save_results, load_results

__all__ = ["save_cache", "load_cache", "save_results", "load_results"]
