"""Persistence helpers: cache files and tuning-result files.

The BAT project distributes its measurement campaigns as JSON cache files so that
search-algorithm research can run without a GPU.  This subpackage mirrors that:
campaign caches and tuning results serialize to JSON (optionally gzip-compressed), and
load back into the same objects the analysis layer consumes.

JSON is the *interchange* format; :mod:`repro.io.columnar` adds the binary
*performance* format (fixed-width memory-mappable columns) for replay-scale opens
and zero-decode fragment merges.  See the module docstrings for the compatibility
guarantee between the two.
"""

from repro.io.cachefile import save_cache, load_cache
from repro.io.columnar import (COLUMNAR_SUFFIX, read_columnar, write_columnar,
                               peek_columnar_header)
from repro.io.results_io import save_results, load_results

__all__ = ["save_cache", "load_cache", "save_results", "load_results",
           "COLUMNAR_SUFFIX", "read_columnar", "write_columnar",
           "peek_columnar_header"]
