"""Binary columnar cache store: the performance format of the suite.

The JSON cache files of :mod:`repro.io.cachefile` are the *interchange* format --
self-describing, diffable, byte-deterministic -- but at production scale (hundreds of
scenario families x devices x millions of evaluations) parsing one observation
dictionary per row dominates load/merge/replay wall-clock.  This module provides the
*performance* format: fixed-width little-endian columns that memory-map straight into
NumPy arrays, so opening a campaign cache for replay costs one header parse plus an
``mmap`` -- no dict rehydration, no per-row Python -- and concurrent reader processes
share the physical pages through the OS page cache.

File layout
-----------

::

    offset 0   magic            b"REPROCOL" (8 bytes)
    offset 8   format version   uint32, little-endian
    offset 12  header length H  uint32, little-endian
    offset 16  header           H bytes of UTF-8 JSON (compact, sorted keys)
    ...        zero padding to the next multiple of 8
    ...        column data      each column at an 8-aligned offset, zero-padded

The header is self-describing: it carries the payload kind (``"cache"`` or
``"fragment"``), the row count, a SHA-256 digest over the (benchmark, gpu, space)
identity, the interned error-string table, and a column directory of
``{name, dtype, offset, nbytes, sha256}`` entries -- one checksum per column, so any
truncation or bit rot is caught at open time and raised as
:class:`~repro.core.errors.FragmentIntegrityError`.  Because every column is a
contiguous fixed-width block described only by the directory, the format is
append-friendly: growing a cache is re-emitting the directory over concatenated
column blocks, and merging shard fragments is a column concatenate in shard order
(see :func:`concat_fragment_columns`) -- no row decoding at all.

Columns
-------

``"cache"`` payloads carry three columns, aligned row-for-row with the cache's
insertion order (row position == ``evaluation_index``):

``index``   ``int64``    mixed-radix space index of the configuration
``value``   ``float64``  measured objective (``+inf`` is the failed-launch sentinel;
                         NaN and ``-inf`` are rejected, exactly like JSON fragments)
``code``    ``int32``    failure code into the interned error-string table

``"fragment"`` payloads carry only ``value`` and ``code`` (a shard's space indices
are derivable from its plan slice).  The failure code packs validity and error
string into one integer: ``code >= 0`` means the row is invalid and its error is
``errors[code]``; ``code < 0`` means the row is valid with error
``errors[-code - 1]`` (normally the interned empty string).

Compatibility guarantee
-----------------------

JSON stays the interchange format and its bytes are untouched: a cache round-tripped
through the columnar store serializes to *byte-identical* JSON (asserted by the
differential suite in ``tests/test_columnar.py``), so every existing consumer,
golden file and byte-identity contract keeps working.  Columnar files are an opt-in
performance overlay (``--cache-format columnar``), never a replacement.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import struct
import uuid
from pathlib import Path
from typing import Any, Mapping, Sequence

import numpy as np

from repro.core.errors import FragmentIntegrityError, SerializationError

__all__ = [
    "COLUMNAR_MAGIC", "COLUMNAR_VERSION", "COLUMNAR_SUFFIX",
    "ColumnarPayload", "cache_digest",
    "write_columnar", "read_columnar", "peek_columnar_header",
    "encode_failure_codes", "decode_failure_strings",
    "save_columnar_fragment", "load_columnar_fragment",
    "load_columnar_fragment_columns", "concat_fragment_columns",
]

#: First eight bytes of every columnar file.
COLUMNAR_MAGIC = b"REPROCOL"

#: Format identifier written into every columnar file.
COLUMNAR_VERSION = 1

#: Conventional file suffix of columnar caches and fragments.
COLUMNAR_SUFFIX = ".col"

#: Column name -> little-endian dtype string, per payload kind.
_CACHE_COLUMNS = (("index", "<i8"), ("value", "<f8"), ("code", "<i4"))
_FRAGMENT_COLUMNS = (("value", "<f8"), ("code", "<i4"))

_PREAMBLE = struct.Struct("<8sII")  # magic, version, header length


def _align8(offset: int) -> int:
    return (offset + 7) & ~7


def cache_digest(benchmark: str, gpu: str, space_dict: Mapping[str, Any]) -> str:
    """SHA-256 digest of a cache's (benchmark, gpu, space) identity.

    Recorded in every columnar cache header so a reader (or a worker sharing the
    file read-only) can cheaply tell whether two files describe the same campaign
    unit without comparing space dictionaries.
    """
    canonical = json.dumps({"benchmark": benchmark, "gpu": gpu,
                            "space": space_dict}, sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# --------------------------------------------------------------- failure codes


def encode_failure_codes(valid: Sequence[bool], errors: Sequence[str]
                         ) -> tuple[np.ndarray, list[str]]:
    """Intern error strings and pack (valid, error) pairs into one int32 column.

    Returns the code column and the interned string table (first-occurrence
    order, so the encoding -- and therefore the file bytes -- is a pure function
    of the row sequence).
    """
    table: dict[str, int] = {}
    codes = np.empty(len(errors), dtype=np.int32)
    for row, (is_valid, error) in enumerate(zip(valid, errors)):
        slot = table.get(error)
        if slot is None:
            slot = table[error] = len(table)
        codes[row] = slot if not is_valid else -slot - 1
    return codes, list(table)


def decode_failure_strings(codes: np.ndarray, table: Sequence[str]
                           ) -> tuple[np.ndarray, list[str]]:
    """Inverse of :func:`encode_failure_codes`: ``(valid, errors)`` per row."""
    codes = np.asarray(codes, dtype=np.int32)
    valid = codes < 0
    slots = np.where(valid, -codes - 1, codes)
    if codes.size and (int(slots.max()) >= len(table) or int(slots.min()) < 0):
        raise FragmentIntegrityError(
            f"columnar failure codes reference error-string slots outside the "
            f"interned table of {len(table)} entries")
    table = list(table)
    return valid, [table[slot] for slot in slots.tolist()]


# --------------------------------------------------------------------- writing


def _column_bytes(name: str, dtype: str, array: np.ndarray) -> bytes:
    data = np.ascontiguousarray(array, dtype=np.dtype(dtype))
    if data.ndim != 1:
        raise SerializationError(f"columnar column {name!r} must be 1-D")
    return data.tobytes()


def write_columnar(path: str | Path, kind: str, meta: Mapping[str, Any],
                   columns: Mapping[str, np.ndarray],
                   errors: Sequence[str]) -> Path:
    """Atomically write one columnar payload (``kind`` in ``{"cache", "fragment"}``).

    ``meta`` supplies the kind-specific header fields (cache identity or shard
    description); the row count, error table and checksummed column directory are
    derived here.  The write is atomic (temporary sibling + :func:`os.replace`)
    and byte-deterministic: same rows, same bytes.
    """
    layout = dict(_CACHE_COLUMNS if kind == "cache" else _FRAGMENT_COLUMNS)
    if set(columns) != set(layout):
        raise SerializationError(
            f"columnar {kind} payload expects columns {sorted(layout)}, "
            f"got {sorted(columns)}")
    path = Path(path)
    sizes = {name: np.asarray(col).size for name, col in columns.items()}
    row_count = next(iter(sizes.values()))
    if any(size != row_count for size in sizes.values()):
        raise SerializationError(
            f"columnar columns disagree on row count: {sizes}")
    values = np.asarray(columns["value"], dtype=float)
    bad = values[np.isnan(values) | (values == -math.inf)]
    if bad.size:
        raise SerializationError(
            f"columnar rows may not contain {bad[0]!r} (only finite values or "
            f"+inf round-trip through {path})")

    blobs = {name: _column_bytes(name, dtype, columns[name])
             for name, dtype in layout.items()}
    # The directory is built twice: once with placeholder offsets to learn the
    # header's own length, once final.  Offsets depend on the header length,
    # which depends on the offsets' digit counts, so iterate to a fixed point.
    directory = [{"name": name, "dtype": dtype, "offset": 0,
                  "nbytes": len(blobs[name]),
                  "sha256": hashlib.sha256(blobs[name]).hexdigest()}
                 for name, dtype in layout.items()]
    header = {"kind": kind, "row_count": int(row_count),
              "errors": list(errors), "columns": directory}
    header.update({key: meta[key] for key in sorted(meta)})
    header_bytes = b""
    for _ in range(8):  # converges in <= 2 extra rounds (offset digit growth)
        # Insertion order, not sort_keys: the top-level keys are laid out
        # deterministically above, and nested meta dicts (cache metadata, space)
        # must keep their original key order so a round-tripped cache serializes
        # to JSON byte-identically.
        candidate = json.dumps(header,
                               separators=(",", ":")).encode("utf-8")
        offset = _align8(_PREAMBLE.size + len(candidate))
        changed = False
        for entry in directory:
            if entry["offset"] != offset:
                entry["offset"] = offset
                changed = True
            offset = _align8(offset + entry["nbytes"])
        if not changed and candidate == header_bytes:
            break
        header_bytes = candidate
    total = offset

    buffer = bytearray(total)
    buffer[:_PREAMBLE.size] = _PREAMBLE.pack(COLUMNAR_MAGIC, COLUMNAR_VERSION,
                                             len(header_bytes))
    buffer[_PREAMBLE.size:_PREAMBLE.size + len(header_bytes)] = header_bytes
    for entry in directory:
        start = entry["offset"]
        buffer[start:start + entry["nbytes"]] = blobs[entry["name"]]

    path.parent.mkdir(parents=True, exist_ok=True)
    # Same atomic-sibling discipline as atomic_write_json (and the same umask
    # rationale for O_CREAT 0o666 over mkstemp).
    # repro: allow[RPL001] tmp-file names are non-semantic (never persisted, never
    # hashed); entropy here only avoids collisions between concurrent writers
    tmp_name = str(path.parent / f"{path.name}.{os.getpid()}.{uuid.uuid4().hex[:8]}.tmp")
    try:
        # repro: allow[RPL003] this IS the atomic-write implementation (columnar
        # twin of atomic_write_json: tmp sibling + os.replace)
        fd = os.open(tmp_name, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o666)
        with os.fdopen(fd, "wb") as handle:
            handle.write(bytes(buffer))
        os.replace(tmp_name, path)
    except OSError as exc:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise SerializationError(f"could not write {path}: {exc}") from exc
    return path


# --------------------------------------------------------------------- reading


class ColumnarPayload:
    """One opened columnar file: parsed header plus zero-copy column arrays.

    ``columns`` maps column name to a read-only NumPy view.  With ``mmap=True``
    the views alias the memory-mapped file, so bytes are paged in on first
    access and shared between processes opening the same file.
    """

    __slots__ = ("path", "kind", "header", "columns", "errors", "row_count")

    def __init__(self, path: Path, header: Mapping[str, Any],
                 columns: Mapping[str, np.ndarray]):
        self.path = path
        self.header = dict(header)
        self.kind = header["kind"]
        self.columns = dict(columns)
        self.errors = list(header.get("errors", ()))
        self.row_count = int(header["row_count"])

    def decoded_rows(self) -> list[tuple[float, bool, str]]:
        """The ``(value, valid, error)`` triples JSON fragments traffic in."""
        valid, errors = decode_failure_strings(self.columns["code"], self.errors)
        values = self.columns["value"]
        return [(float(value), bool(ok), error)
                for value, ok, error in zip(values.tolist(), valid.tolist(), errors)]


def peek_columnar_header(path: str | Path) -> dict[str, Any]:
    """Parse a columnar file's header without verifying column checksums.

    Cheap metadata access (digest comparison, fault injection targeting a column's
    byte range); integrity still belongs to :func:`read_columnar`.
    """
    path = Path(path)
    try:
        with open(path, "rb") as handle:
            preamble = handle.read(_PREAMBLE.size)
            if len(preamble) < _PREAMBLE.size:
                raise FragmentIntegrityError(
                    f"{path} is too short to be a columnar file "
                    f"({len(preamble)} bytes)")
            magic, version, header_length = _PREAMBLE.unpack(preamble)
            if magic != COLUMNAR_MAGIC:
                raise SerializationError(
                    f"{path} is not a columnar file (magic {magic!r})")
            if version != COLUMNAR_VERSION:
                raise SerializationError(
                    f"{path} has unsupported columnar format version {version} "
                    f"(expected {COLUMNAR_VERSION})")
            header_bytes = handle.read(header_length)
    except OSError as exc:
        raise SerializationError(f"could not read {path}: {exc}") from exc
    if len(header_bytes) < header_length:
        raise FragmentIntegrityError(
            f"{path} is truncated inside its header "
            f"({len(header_bytes)} of {header_length} bytes)")
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FragmentIntegrityError(
            f"{path} carries an undecodable columnar header: {exc}") from exc
    if not isinstance(header, dict) or "columns" not in header:
        raise FragmentIntegrityError(
            f"{path} columnar header is missing its column directory")
    return header


def read_columnar(path: str | Path, mmap: bool = True,
                  verify: bool = True) -> ColumnarPayload:
    """Open a columnar file written by :func:`write_columnar`.

    With ``mmap=True`` (default) the columns are zero-copy read-only views of the
    memory-mapped file; ``mmap=False`` reads the bytes into process memory
    instead (still read-only views).  ``verify=True`` checks every column's
    SHA-256 against the directory and the row count against the column shapes;
    any damage -- truncation, bit rot, tampered values -- raises
    :class:`~repro.core.errors.FragmentIntegrityError`.
    """
    path = Path(path)
    header = peek_columnar_header(path)
    try:
        if mmap:
            data = np.memmap(path, dtype=np.uint8, mode="r")
        else:
            data = np.frombuffer(path.read_bytes(), dtype=np.uint8)
    except (OSError, ValueError) as exc:
        raise SerializationError(f"could not read {path}: {exc}") from exc

    expected = {"cache": _CACHE_COLUMNS, "fragment": _FRAGMENT_COLUMNS}.get(
        header.get("kind"))
    if expected is None:
        raise SerializationError(
            f"{path} carries unknown columnar payload kind {header.get('kind')!r}")
    directory = header["columns"]
    if [(e.get("name"), e.get("dtype")) for e in directory] != list(expected):
        raise FragmentIntegrityError(
            f"{path} column directory {directory!r} does not match the "
            f"{header['kind']} layout {expected}")

    row_count = int(header["row_count"])
    columns: dict[str, np.ndarray] = {}
    for entry in directory:
        start, nbytes = int(entry["offset"]), int(entry["nbytes"])
        blob = data[start:start + nbytes]
        if blob.size != nbytes:
            raise FragmentIntegrityError(
                f"{path} is truncated: column {entry['name']!r} needs bytes "
                f"[{start}, {start + nbytes}) but the file has {data.size}")
        if verify:
            actual = hashlib.sha256(blob.tobytes()).hexdigest()
            if actual != entry["sha256"]:
                raise FragmentIntegrityError(
                    f"{path} column {entry['name']!r} fails its checksum "
                    f"(stored {entry['sha256'][:12]}..., recomputed "
                    f"{actual[:12]}...); the file was altered on disk")
        column = blob.view(np.dtype(entry["dtype"]))
        if column.size != row_count:
            raise FragmentIntegrityError(
                f"{path} column {entry['name']!r} decodes to {column.size} rows, "
                f"header says {row_count}")
        column.flags.writeable = False
        columns[entry["name"]] = column
    if verify and header["kind"] == "cache":
        stated = header.get("digest")
        actual = cache_digest(header.get("benchmark", ""), header.get("gpu", ""),
                              header.get("space", {}))
        if stated != actual:
            raise FragmentIntegrityError(
                f"{path} cache identity digest is stale (stored "
                f"{str(stated)[:12]}..., recomputed {actual[:12]}...); its "
                f"header was altered on disk")
    return ColumnarPayload(path, header, columns)


# ----------------------------------------------------------- shard fragments


def save_columnar_fragment(path: str | Path, shard: Mapping[str, Any],
                           rows: Sequence[tuple[float, bool, str]]) -> Path:
    """Columnar twin of :func:`repro.io.cachefile.save_fragment`.

    Same row semantics (``+inf`` failure sentinel only), same atomicity, but the
    rows land as fixed-width value/code columns so a merge never decodes them.
    """
    values = np.asarray([value for value, _, _ in rows], dtype=float)
    codes, errors = encode_failure_codes([valid for _, valid, _ in rows],
                                         [error for _, _, error in rows])
    return write_columnar(path, "fragment", {"shard": dict(shard)},
                          {"value": values, "code": codes}, errors)


def load_columnar_fragment(path: str | Path, verify: bool = True
                           ) -> tuple[dict[str, Any], list[tuple[float, bool, str]]]:
    """Columnar twin of :func:`repro.io.cachefile.load_fragment` (same contract)."""
    payload = read_columnar(path, mmap=False, verify=verify)
    if payload.kind != "fragment":
        raise SerializationError(
            f"{path} is a columnar {payload.kind} file, not a fragment")
    return dict(payload.header.get("shard", {})), payload.decoded_rows()


def load_columnar_fragment_columns(path: str | Path, verify: bool = True
                                   ) -> tuple[dict[str, Any], np.ndarray,
                                              np.ndarray, list[str]]:
    """Raw ``(shard, values, codes, errors)`` of a columnar fragment.

    The no-decode form :func:`concat_fragment_columns` merges; rows never become
    Python tuples.
    """
    payload = read_columnar(path, mmap=False, verify=verify)
    if payload.kind != "fragment":
        raise SerializationError(
            f"{path} is a columnar {payload.kind} file, not a fragment")
    return (dict(payload.header.get("shard", {})), payload.columns["value"],
            payload.columns["code"], payload.errors)


def concat_fragment_columns(fragments: Sequence[tuple[np.ndarray, np.ndarray,
                                                      Sequence[str]]]
                            ) -> tuple[np.ndarray, np.ndarray, list[str]]:
    """Merge fragment columns into unit columns: concatenate + error-table remap.

    ``fragments`` is the ``(values, codes, errors)`` of each shard *in evaluation
    order* (callers stable-sort by shard start offset -- completion order is
    irrelevant, which is what makes the merged bytes order-independent).  Error
    tables are re-interned in first-occurrence order across the concatenation,
    so the merged table -- and therefore the merged file -- is exactly what a
    serial single-shard run would have produced.
    """
    merged: dict[str, int] = {}
    value_parts: list[np.ndarray] = []
    code_parts: list[np.ndarray] = []
    for values, codes, errors in fragments:
        remap = np.empty(max(len(errors), 1), dtype=np.int32)
        for slot, error in enumerate(errors):
            target = merged.get(error)
            if target is None:
                target = merged[error] = len(merged)
            remap[slot] = target
        codes = np.asarray(codes, dtype=np.int32)
        valid = codes < 0
        slots = np.where(valid, -codes - 1, codes)
        remapped = remap[slots]
        code_parts.append(np.where(valid, -remapped - 1, remapped).astype(np.int32))
        value_parts.append(np.asarray(values, dtype=float))
    if not value_parts:
        return (np.empty(0, dtype=float), np.empty(0, dtype=np.int32), [])
    return (np.concatenate(value_parts), np.concatenate(code_parts), list(merged))
