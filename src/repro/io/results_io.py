"""Tuning-result files.

Stores one or more :class:`~repro.core.result.TuningResult` objects (e.g. the 100
random-search repetitions of a convergence experiment) in a single JSON file.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import Sequence

from repro.core.errors import SerializationError
from repro.core.result import TuningResult

__all__ = ["save_results", "load_results"]

#: Format identifier written into every results file.
FORMAT_VERSION = 1


def save_results(results: Sequence[TuningResult] | TuningResult, path: str | Path) -> Path:
    """Write tuning results to ``path`` (gzip-compressed when it ends in ``.gz``)."""
    if isinstance(results, TuningResult):
        results = [results]
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "format_version": FORMAT_VERSION,
        "results": [r.to_dict() for r in results],
    }
    opener = gzip.open if path.suffix == ".gz" else open
    try:
        with opener(path, "wt", encoding="utf-8") as handle:
            json.dump(payload, handle)
    except (OSError, TypeError, ValueError) as exc:
        raise SerializationError(f"could not write results file {path}: {exc}") from exc
    return path


def load_results(path: str | Path) -> list[TuningResult]:
    """Read tuning results written by :func:`save_results`."""
    path = Path(path)
    opener = gzip.open if path.suffix == ".gz" else open
    try:
        with opener(path, "rt", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise SerializationError(f"could not read results file {path}: {exc}") from exc
    if not isinstance(payload, dict) or "results" not in payload:
        raise SerializationError(f"{path} is not a results file (missing 'results' key)")
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise SerializationError(
            f"{path} has unsupported results format version {version!r} "
            f"(expected {FORMAT_VERSION})")
    return [TuningResult.from_dict(d) for d in payload["results"]]
