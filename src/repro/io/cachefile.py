"""Campaign cache files.

A cache file stores one :class:`~repro.core.cache.EvaluationCache` -- the measured
runtimes of one benchmark on one GPU -- as JSON, optionally gzip-compressed (the
``.json.gz`` suffix selects compression automatically).  The format is deliberately
self-describing: it embeds the search-space definition, so a cache file can be analysed
without the originating benchmark object.  String-expression constraints round-trip;
callable constraints cannot (only their name is serialized) and are dropped with an
explicit :class:`~repro.core.constraints.ConstraintSerializationWarning` on load unless
a live ``space=`` is supplied.

The module also provides the low-level persistence primitives the campaign-execution
subsystem (:mod:`repro.exec`) builds on:

* **atomic writes** -- every file is written to a temporary sibling and moved into
  place with :func:`os.replace`, so readers never observe a torn file and an
  interrupted campaign leaves either a complete fragment or none;
* **deterministic bytes** -- gzip members are written with ``mtime=0``, so the same
  cache always produces the same compressed bytes (the byte-identity contract between
  serial and parallel execution extends to the files on disk);
* **shard fragments** (:func:`save_fragment` / :func:`load_fragment`) -- the rows of
  one completed shard, enough to rebuild its slice of the campaign cache without
  re-evaluating.  Every fragment carries a SHA-256 checksum of its canonical row
  encoding; :func:`load_fragment` verifies it and raises
  :class:`~repro.core.errors.FragmentIntegrityError` on any damage (truncation,
  bit rot, value tampering), which is what lets resume *heal* instead of merging
  corrupt rows;
* **manifests** (:func:`save_manifest` / :func:`load_manifest`) -- the serialized
  shard plan a checkpoint directory belongs to.
"""

from __future__ import annotations

import gzip
import hashlib
import io
import json
import math
import os
import uuid
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.core.cache import EvaluationCache
from repro.core.errors import FragmentIntegrityError, SerializationError
from repro.core.searchspace import SearchSpace

__all__ = [
    "save_cache", "load_cache",
    "save_fragment", "load_fragment", "fragment_checksum",
    "save_manifest", "load_manifest",
    "atomic_write_json", "read_json",
]

#: Format identifier written into every cache file.
FORMAT_VERSION = 1

#: Format identifier written into every shard fragment.
FRAGMENT_VERSION = 1

#: Format identifier written into every checkpoint manifest.
MANIFEST_VERSION = 1


# ------------------------------------------------------------------ JSON primitives


def _encode_json_bytes(payload: Any, compress: bool) -> bytes:
    text = json.dumps(payload)
    raw = text.encode("utf-8")
    if not compress:
        return raw
    buffer = io.BytesIO()
    # mtime=0 keeps the compressed bytes a pure function of the payload.
    with gzip.GzipFile(fileobj=buffer, mode="wb", mtime=0) as handle:
        handle.write(raw)
    return buffer.getvalue()


def atomic_write_json(payload: Any, path: str | Path) -> Path:
    """Write ``payload`` as JSON to ``path`` atomically (gzip when it ends in ``.gz``).

    The bytes land in a temporary sibling first and are moved into place with
    :func:`os.replace`, so a concurrent reader (or a crash) can never observe a
    partially written file.  Parent directories are created as needed.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    try:
        data = _encode_json_bytes(payload, compress=path.suffix == ".gz")
    except (TypeError, ValueError) as exc:
        raise SerializationError(f"could not serialize payload for {path}: {exc}") from exc
    # O_CREAT with mode 0o666 lets the kernel apply the caller's umask atomically
    # (mkstemp's 0600 would make shared cache directories unreadable to teammates,
    # and probing the umask is a process-global race).
    # repro: allow[RPL001] tmp-file names are non-semantic (never persisted, never
    # hashed); entropy here only avoids collisions between concurrent writers
    tmp_name = str(path.parent / f"{path.name}.{os.getpid()}.{uuid.uuid4().hex[:8]}.tmp")
    try:
        # repro: allow[RPL003] this IS the atomic-write implementation every other
        # write goes through (tmp sibling + os.replace)
        fd = os.open(tmp_name, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o666)
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(tmp_name, path)
    except OSError as exc:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise SerializationError(f"could not write {path}: {exc}") from exc
    return path


#: First two bytes of every gzip member (RFC 1952).
_GZIP_MAGIC = b"\x1f\x8b"


def read_json(path: str | Path) -> Any:
    """Read a JSON payload written by :func:`atomic_write_json`.

    Compression is detected by content, not by suffix: the first two bytes are
    sniffed for the gzip magic (``1f 8b``), so a gzipped file with a wrong or
    odd-cased extension still reads correctly instead of dying with a misleading
    decode error.  A file whose ``.gz`` suffix *promises* gzip but whose bytes
    are not raises a :class:`SerializationError` naming the mismatch.
    """
    path = Path(path)
    try:
        with open(path, "rb") as handle:
            magic = handle.read(len(_GZIP_MAGIC))
        gzipped = magic == _GZIP_MAGIC
        if path.suffix.lower() == ".gz" and not gzipped:
            raise SerializationError(
                f"{path} has a .gz suffix but does not start with the gzip "
                f"magic bytes (found {magic!r}); the file is mislabelled or "
                f"was damaged on disk")
        if gzipped:
            with gzip.open(path, "rt", encoding="utf-8") as handle:
                return json.load(handle)
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise SerializationError(f"could not read {path}: {exc}") from exc


def _expect_payload(payload: Any, path: Path, key: str, version_key: str,
                    expected_version: int) -> Mapping[str, Any]:
    if not isinstance(payload, dict) or key not in payload:
        raise SerializationError(f"{path} is not a {key} file (missing {key!r} key)")
    version = payload.get(version_key)
    if version != expected_version:
        raise SerializationError(
            f"{path} has unsupported {key} format version {version!r} "
            f"(expected {expected_version})")
    return payload


# ---------------------------------------------------------------------- cache files


def save_cache(cache: EvaluationCache, path: str | Path) -> Path:
    """Write a campaign cache to ``path`` (gzip-compressed when it ends in ``.gz``).

    The write is atomic and byte-deterministic.  Returns the path written.
    """
    payload = {"format_version": FORMAT_VERSION, "cache": cache.to_dict()}
    return atomic_write_json(payload, path)


def load_cache(path: str | Path, space: SearchSpace | None = None) -> EvaluationCache:
    """Read a campaign cache written by :func:`save_cache`.

    Parameters
    ----------
    path:
        File to read (gzip-compressed when it ends in ``.gz``).
    space:
        Optional live search space to attach instead of the serialized one.  Supply it
        to keep callable constraints, which JSON cannot represent -- without it they
        are dropped with a
        :class:`~repro.core.constraints.ConstraintSerializationWarning`.
    """
    path = Path(path)
    payload = _expect_payload(read_json(path), path, "cache", "format_version",
                              FORMAT_VERSION)
    return EvaluationCache.from_dict(payload["cache"], space=space)


# ------------------------------------------------------------------ shard fragments
#
# A fragment is the result of one completed shard: the (value, valid, error) rows of
# its index slice, in evaluation order.  Values are stored as ``null`` when non-finite
# so the files stay standard JSON.


def fragment_checksum(encoded_rows: Sequence[Any]) -> str:
    """SHA-256 digest of a fragment's canonical (JSON-encoded) row list.

    Computed over the compact, sorted-key JSON rendering so the digest is a pure
    function of the row *values* -- identical at save and load time regardless of
    how the surrounding payload was formatted on disk.
    """
    canonical = json.dumps(encoded_rows, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def save_fragment(path: str | Path, shard: Mapping[str, Any],
                  rows: Sequence[tuple[float, bool, str]]) -> Path:
    """Atomically persist the rows of one completed shard (checksummed).

    The only non-finite value a row may carry is ``+inf`` (the failed-launch
    sentinel); NaN or ``-inf`` would come back as ``+inf`` after the JSON round
    trip, silently breaking the resumed-vs-uninterrupted byte-identity contract,
    so they are rejected here instead.
    """
    encoded = []
    for value, valid, error in rows:
        if math.isfinite(value):
            encoded.append([value, bool(valid), error])
        elif value == math.inf:
            encoded.append([None, bool(valid), error])
        else:
            raise SerializationError(
                f"fragment rows may not contain {value!r} (only finite values "
                f"or +inf round-trip through {path})")
    payload = {"fragment_version": FRAGMENT_VERSION, "shard": dict(shard),
               "rows": encoded, "checksum": fragment_checksum(encoded)}
    return atomic_write_json(payload, path)


def load_fragment(path: str | Path, verify: bool = True,
                  ) -> tuple[dict[str, Any], list[tuple[float, bool, str]]]:
    """Read a fragment written by :func:`save_fragment`.

    Returns the shard description and the decoded rows (``null`` values become
    ``math.inf`` again).  Any damage -- unreadable bytes, malformed payload, or a
    stale checksum -- raises :class:`~repro.core.errors.FragmentIntegrityError`
    (a :class:`SerializationError`), the signal the executors treat as "discard
    and re-execute this shard".  ``verify=False`` skips only the checksum.
    """
    path = Path(path)
    try:
        payload = _expect_payload(read_json(path), path, "shard",
                                  "fragment_version", FRAGMENT_VERSION)
    except FragmentIntegrityError:
        raise
    except SerializationError as exc:
        # Truncated/garbled bytes and malformed payloads are integrity failures
        # for a fragment (atomic writes mean they cannot be torn *writes*).
        raise FragmentIntegrityError(
            f"fragment {path} is damaged: {exc}") from exc
    stored = payload.get("checksum")
    if verify and stored is not None:
        actual = fragment_checksum(payload.get("rows", []))
        if actual != stored:
            raise FragmentIntegrityError(
                f"fragment {path} fails its checksum (stored {stored[:12]}..., "
                f"recomputed {actual[:12]}...); its rows were altered on disk and "
                f"cannot be merged")
    try:
        rows = [(math.inf if value is None else float(value), bool(valid), str(error))
                for value, valid, error in payload.get("rows", ())]
    except (TypeError, ValueError) as exc:
        raise FragmentIntegrityError(
            f"fragment {path} carries undecodable rows: {exc}") from exc
    return dict(payload["shard"]), rows


# ----------------------------------------------------------------------- manifests


def save_manifest(path: str | Path, plan: Mapping[str, Any],
                  fingerprints: Mapping[str, str] | None = None,
                  fragment_format: str | None = None) -> Path:
    """Atomically persist the shard plan a checkpoint directory belongs to.

    ``fingerprints`` (benchmark name -> digest of its space + workload) pins the
    exact benchmark definitions the fragments were evaluated against, so a resume
    with diverged definitions is refused instead of silently merging wrong rows.
    ``fragment_format`` records a non-default fragment format (``"columnar"``);
    ``None`` omits the key, which keeps default-format manifests byte-identical
    to those written before the columnar store existed.
    """
    payload = {"manifest_version": MANIFEST_VERSION, "plan": dict(plan),
               "fingerprints": dict(fingerprints or {})}
    if fragment_format is not None:
        payload["fragment_format"] = str(fragment_format)
    return atomic_write_json(payload, path)


def load_manifest(path: str | Path) -> dict[str, Any]:
    """Read a manifest written by :func:`save_manifest`.

    Returns a dict with ``"plan"`` (the serialized shard plan), ``"fingerprints"``
    (possibly empty, for manifests written before the digests existed) and
    ``"fragment_format"`` (None when the manifest predates the columnar store or
    holds the default JSON fragments).
    """
    path = Path(path)
    payload = _expect_payload(read_json(path), path, "plan", "manifest_version",
                              MANIFEST_VERSION)
    return {"plan": dict(payload["plan"]),
            "fingerprints": dict(payload.get("fingerprints", {})),
            "fragment_format": payload.get("fragment_format")}
