"""Campaign cache files.

A cache file stores one :class:`~repro.core.cache.EvaluationCache` -- the measured
runtimes of one benchmark on one GPU -- as JSON, optionally gzip-compressed (the
``.json.gz`` suffix selects compression automatically).  The format is deliberately
self-describing: it embeds the search-space definition, so a cache file can be analysed
without the originating benchmark object (string-expression constraints round-trip;
callable constraints degrade to their names).
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path

from repro.core.cache import EvaluationCache
from repro.core.errors import SerializationError
from repro.core.searchspace import SearchSpace

__all__ = ["save_cache", "load_cache"]

#: Format identifier written into every cache file.
FORMAT_VERSION = 1


def _open_for_write(path: Path):
    if path.suffix == ".gz":
        return gzip.open(path, "wt", encoding="utf-8")
    return open(path, "w", encoding="utf-8")


def _open_for_read(path: Path):
    if path.suffix == ".gz":
        return gzip.open(path, "rt", encoding="utf-8")
    return open(path, "r", encoding="utf-8")


def save_cache(cache: EvaluationCache, path: str | Path) -> Path:
    """Write a campaign cache to ``path`` (gzip-compressed when it ends in ``.gz``).

    Returns the path written.  Parent directories are created as needed.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {"format_version": FORMAT_VERSION, "cache": cache.to_dict()}
    try:
        with _open_for_write(path) as handle:
            json.dump(payload, handle)
    except (OSError, TypeError, ValueError) as exc:
        raise SerializationError(f"could not write cache file {path}: {exc}") from exc
    return path


def load_cache(path: str | Path, space: SearchSpace | None = None) -> EvaluationCache:
    """Read a campaign cache written by :func:`save_cache`.

    Parameters
    ----------
    path:
        File to read (gzip-compressed when it ends in ``.gz``).
    space:
        Optional live search space to attach instead of the serialized one (keeps
        callable constraints that JSON cannot represent).
    """
    path = Path(path)
    try:
        with _open_for_read(path) as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise SerializationError(f"could not read cache file {path}: {exc}") from exc
    if not isinstance(payload, dict) or "cache" not in payload:
        raise SerializationError(f"{path} is not a cache file (missing 'cache' key)")
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise SerializationError(
            f"{path} has unsupported cache format version {version!r} "
            f"(expected {FORMAT_VERSION})")
    return EvaluationCache.from_dict(payload["cache"], space=space)
