"""Analysis layer: one module per figure/table of the paper's evaluation.

============================  =========================================================
:mod:`repro.analysis.campaign`            runs and caches the measurement campaigns
:mod:`repro.analysis.distribution`        Fig. 1 -- configuration performance distributions
:mod:`repro.analysis.convergence`         Fig. 2 -- random-search convergence
:mod:`repro.analysis.centrality_report`   Fig. 3 -- proportion of centrality
:mod:`repro.analysis.speedup`             Fig. 4 -- max speedup over the median configuration
:mod:`repro.analysis.portability`         Fig. 5 -- performance portability matrices
:mod:`repro.analysis.importance`          Fig. 6 -- permutation feature importance (+ R^2)
:mod:`repro.analysis.spacesize`           Table VIII -- search-space sizes
:mod:`repro.analysis.report`              plain-text rendering of every result
============================  =========================================================
"""

from repro.analysis.campaign import Campaign, PAPER_SAMPLED_BENCHMARKS, PAPER_SAMPLE_SIZE
from repro.analysis.distribution import DistributionSummary, distribution_summary
from repro.analysis.convergence import ConvergenceCurve, random_search_convergence
from repro.analysis.centrality_report import centrality_study
from repro.analysis.speedup import SpeedupEntry, max_speedup_over_median, speedup_study
from repro.analysis.portability import PortabilityMatrix, portability_matrix, portability_study
from repro.analysis.importance import ImportanceReport, feature_importance, importance_study
from repro.analysis.spacesize import SpaceSizeRow, space_size_table
from repro.analysis import report

__all__ = [
    "Campaign",
    "PAPER_SAMPLED_BENCHMARKS",
    "PAPER_SAMPLE_SIZE",
    "DistributionSummary",
    "distribution_summary",
    "ConvergenceCurve",
    "random_search_convergence",
    "centrality_study",
    "SpeedupEntry",
    "max_speedup_over_median",
    "speedup_study",
    "PortabilityMatrix",
    "portability_matrix",
    "portability_study",
    "ImportanceReport",
    "feature_importance",
    "importance_study",
    "SpaceSizeRow",
    "space_size_table",
    "report",
]
