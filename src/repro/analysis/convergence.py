"""Random-search convergence curves (paper Fig. 2).

Fig. 2 plots the relative performance of the best configuration found so far
(``optimum / best_so_far``, so 1.0 means the optimum has been found) against the number
of function evaluations, where the evaluations are uniform random draws from the
campaign data and the curve is the *median over 100 repetitions*.

The computation is vectorised: one NumPy matrix of shape (repetitions, budget) holds
the randomly permuted runtimes, a running minimum along the budget axis gives every
repetition's trajectory at once, and the median across repetitions gives the curve.

:func:`tuner_convergence` produces the same curve shape from *real* optimizer runs
replayed against a campaign cache (the tuner-ablation companion of the random-search
curve): the replay problems answer through the cache's columnar index table and the
tuners run index-native, so 100-repetition campaigns cost milliseconds, not minutes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.cache import EvaluationCache
from repro.core.errors import ReproError

__all__ = ["ConvergenceCurve", "random_search_convergence", "tuner_convergence",
           "evaluations_to_reach"]


@dataclass
class ConvergenceCurve:
    """Median random-search convergence of one (benchmark, GPU) campaign.

    Attributes
    ----------
    evaluations:
        1-based evaluation counts (x axis).
    median_relative_performance:
        Median over repetitions of ``optimum / best_so_far`` after that many
        evaluations (y axis).
    quartile_low / quartile_high:
        25th and 75th percentile trajectories (the spread across repetitions).
    repetitions / budget:
        Experiment size.
    """

    benchmark: str
    gpu: str
    evaluations: np.ndarray
    median_relative_performance: np.ndarray
    quartile_low: np.ndarray
    quartile_high: np.ndarray
    repetitions: int
    budget: int
    optimum_ms: float

    def evaluations_to_reach(self, threshold: float) -> int | None:
        """Evaluations needed for the median curve to reach ``threshold``, or None."""
        hits = np.nonzero(self.median_relative_performance >= threshold)[0]
        return int(self.evaluations[hits[0]]) if hits.size else None

    def at(self, evaluation: int) -> float:
        """Median relative performance after ``evaluation`` evaluations."""
        idx = np.searchsorted(self.evaluations, evaluation)
        idx = min(int(idx), len(self.evaluations) - 1)
        return float(self.median_relative_performance[idx])

    def to_dict(self) -> dict[str, object]:
        """JSON-friendly representation."""
        return {
            "benchmark": self.benchmark,
            "gpu": self.gpu,
            "repetitions": self.repetitions,
            "budget": self.budget,
            "optimum_ms": self.optimum_ms,
            "evaluations": self.evaluations.tolist(),
            "median_relative_performance": self.median_relative_performance.tolist(),
        }


def random_search_convergence(cache: EvaluationCache, repetitions: int = 100,
                              budget: int | None = None,
                              seed: int = 0) -> ConvergenceCurve:
    """Simulate repeated random search over a campaign cache (the paper's Fig. 2).

    Parameters
    ----------
    cache:
        Campaign data (exhaustive or sampled).
    repetitions:
        Number of independent random-search runs (paper: 100).
    budget:
        Evaluations per run; defaults to the number of valid configurations, capped at
        1000 (the x-range of the paper's plots).
    seed:
        Seed of the permutation generator.
    """
    runtimes = cache.values(valid_only=True)
    if runtimes.size == 0:
        raise ReproError(f"cache {cache.benchmark}/{cache.gpu} has no valid entries")
    if repetitions < 1:
        raise ReproError("repetitions must be at least 1")

    n = runtimes.size
    if budget is None:
        budget = min(n, 1000)
    budget = int(min(budget, n))
    optimum = float(runtimes.min())

    rng = np.random.default_rng(seed)
    # Sampling without replacement per repetition: one permutation each.
    trajectories = np.empty((repetitions, budget))
    for r in range(repetitions):
        order = rng.permutation(n)[:budget]
        trajectories[r] = np.minimum.accumulate(runtimes[order])

    relative = optimum / trajectories
    return ConvergenceCurve(
        benchmark=cache.benchmark,
        gpu=cache.gpu,
        evaluations=np.arange(1, budget + 1),
        median_relative_performance=np.median(relative, axis=0),
        quartile_low=np.percentile(relative, 25, axis=0),
        quartile_high=np.percentile(relative, 75, axis=0),
        repetitions=repetitions,
        budget=budget,
        optimum_ms=optimum,
    )


def tuner_convergence(cache: EvaluationCache, tuner_factory: Callable[..., object],
                      repetitions: int = 100, budget: int = 100,
                      base_seed: int = 0, strict: bool = False) -> ConvergenceCurve:
    """Convergence of a *real* optimizer replayed against a campaign cache.

    The tuner-ablation twin of :func:`random_search_convergence`: each repetition
    runs ``tuner_factory()`` for ``budget`` evaluations on a fresh cache-replay
    problem (seeded ``base_seed + repetition``), and the best-so-far traces are
    aggregated into the same median/quartile curve shape.  The replay problems
    answer through the cache's columnar index table and the tuners drive the
    index-native runtime, so a 100-repetition campaign is dominated by the
    optimizer logic itself rather than dictionary plumbing.

    ``strict=False`` (default) treats configurations missing from a sampled cache
    as failed launches instead of raising, which is what lets local searchers walk
    off the sampled subset without aborting the run.
    """
    from repro.core.budget import Budget

    runtimes = cache.values(valid_only=True)
    if runtimes.size == 0:
        raise ReproError(f"cache {cache.benchmark}/{cache.gpu} has no valid entries")
    if repetitions < 1:
        raise ReproError("repetitions must be at least 1")
    optimum = float(runtimes.min())

    trajectories = np.empty((repetitions, budget))
    for r in range(repetitions):
        problem = cache.to_problem(strict=strict, memoize=True)
        result = tuner_factory().tune(problem, Budget(max_evaluations=budget),
                                      seed=base_seed + r)
        trace = result.best_value_trace()
        if trace.size < budget:  # tuner stopped early (space exhausted)
            tail = trace[-1] if trace.size else np.inf
            trace = np.concatenate([trace, np.full(budget - trace.size, tail)])
        trajectories[r] = trace[:budget]

    relative = np.zeros_like(trajectories)
    finite = np.isfinite(trajectories)
    relative[finite] = optimum / trajectories[finite]
    return ConvergenceCurve(
        benchmark=cache.benchmark,
        gpu=cache.gpu,
        evaluations=np.arange(1, budget + 1),
        median_relative_performance=np.median(relative, axis=0),
        quartile_low=np.percentile(relative, 25, axis=0),
        quartile_high=np.percentile(relative, 75, axis=0),
        repetitions=repetitions,
        budget=budget,
        optimum_ms=optimum,
    )


def evaluations_to_reach(curves: Sequence[ConvergenceCurve],
                         threshold: float = 0.9) -> dict[tuple[str, str], int | None]:
    """Evaluations needed to reach ``threshold`` for several curves, keyed by (benchmark, gpu).

    This is the quantity the paper reads off Fig. 2 ("Expdist and Nbody achieve 90%
    after just 10 evaluations; Dedisp and PnPoly need around 100; Convolution and GEMM
    require hundreds").
    """
    return {(c.benchmark, c.gpu): c.evaluations_to_reach(threshold) for c in curves}
