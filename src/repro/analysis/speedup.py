"""Max speedup over the median configuration (paper Fig. 4).

Fig. 4 reports, per benchmark and GPU, the ratio between the median configuration's
runtime and the best configuration's runtime -- i.e. how much an autotuner can gain
over a "typical" configuration.  The paper finds most benchmarks between 1.5x and
3.06x, with Hotspot as the outlier at 11.1--12.0x.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.cache import EvaluationCache

__all__ = ["SpeedupEntry", "max_speedup_over_median", "speedup_study"]


@dataclass(frozen=True)
class SpeedupEntry:
    """Max-speedup-over-median of one (benchmark, GPU) campaign."""

    benchmark: str
    gpu: str
    median_ms: float
    best_ms: float
    speedup: float

    def to_dict(self) -> dict[str, object]:
        """JSON-friendly representation."""
        return {
            "benchmark": self.benchmark,
            "gpu": self.gpu,
            "median_ms": self.median_ms,
            "best_ms": self.best_ms,
            "speedup": self.speedup,
        }


def max_speedup_over_median(cache: EvaluationCache) -> SpeedupEntry:
    """Speedup of the best configuration over the median configuration of one cache."""
    median = cache.median()
    best = cache.optimum()
    return SpeedupEntry(
        benchmark=cache.benchmark,
        gpu=cache.gpu,
        median_ms=median,
        best_ms=best,
        speedup=median / best,
    )


def speedup_study(caches: Mapping[tuple[str, str], EvaluationCache]) -> list[SpeedupEntry]:
    """Fig. 4 over a whole campaign: one entry per (benchmark, GPU) cache."""
    return [max_speedup_over_median(cache) for cache in caches.values()]
