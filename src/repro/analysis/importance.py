"""Permutation feature importance of the tuning parameters (paper Fig. 6, Sec. VI-F).

For every (benchmark, GPU) campaign the paper trains a CatBoost regression model that
predicts runtime from the configuration and then uses Permutation Feature Importance to
rank the tuning parameters.  Here the model is the in-repo GBDT
(:class:`repro.ml.gbdt.GradientBoostingRegressor`), fitted on log-runtime; the report
carries both the model quality (R^2, compared against the paper's ">= 0.992 except
Convolution") and the per-parameter PFI scores.

The sum of the PFI scores is reported too: the paper argues (Sec. VI-H) that a sum well
above 1 is evidence of parameter interactions and hence of the need for global rather
than orthogonal (one-parameter-at-a-time) optimization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.core.cache import EvaluationCache
from repro.core.errors import ReproError
from repro.ml.encoding import encode_cache
from repro.ml.gbdt import GradientBoostingRegressor
from repro.ml.metrics import r2_score
from repro.ml.permutation_importance import permutation_importance

__all__ = ["ImportanceReport", "feature_importance", "importance_study",
           "important_parameters"]


@dataclass
class ImportanceReport:
    """Feature-importance analysis of one (benchmark, GPU) campaign.

    Attributes
    ----------
    r2:
        R^2 of the fitted GBDT on the campaign (log-runtime target).
    r2_raw:
        R^2 of the back-transformed predictions against the raw runtimes.
    importances:
        Mean PFI score per parameter name.
    importances_std:
        Standard deviation of the PFI score across shuffle repeats.
    gain_importances:
        The model's internal (split-gain) importances, as a cross-check.
    """

    benchmark: str
    gpu: str
    feature_names: tuple[str, ...]
    r2: float
    r2_raw: float
    importances: dict[str, float]
    importances_std: dict[str, float]
    gain_importances: dict[str, float]
    n_samples: int

    @property
    def total_importance(self) -> float:
        """Sum of the mean PFI scores (>> 1 indicates parameter interactions)."""
        return float(sum(self.importances.values()))

    def ranked(self) -> list[tuple[str, float]]:
        """Parameters sorted by decreasing importance."""
        return sorted(self.importances.items(), key=lambda kv: kv[1], reverse=True)

    def important(self, threshold: float = 0.05) -> tuple[str, ...]:
        """Parameters whose PFI reaches the Table VIII threshold (default 0.05)."""
        return tuple(name for name, value in self.importances.items() if value >= threshold)

    def to_dict(self) -> dict[str, object]:
        """JSON-friendly representation."""
        return {
            "benchmark": self.benchmark,
            "gpu": self.gpu,
            "r2": self.r2,
            "r2_raw": self.r2_raw,
            "n_samples": self.n_samples,
            "importances": dict(self.importances),
            "total_importance": self.total_importance,
        }


def feature_importance(cache: EvaluationCache, n_estimators: int = 200, max_depth: int = 6,
                       learning_rate: float = 0.1, n_repeats: int = 3,
                       max_samples: int | None = 20_000,
                       random_state: int = 0) -> ImportanceReport:
    """Fit the regression model on one campaign and compute PFI (one Fig. 6 panel).

    Parameters
    ----------
    cache:
        Campaign data.
    n_estimators / max_depth / learning_rate:
        GBDT hyper-parameters (defaults reach the paper's R^2 regime on the simulated
        campaigns).
    n_repeats:
        Shuffle repetitions per feature for PFI.
    max_samples:
        Optional subsample of the campaign for model fitting (keeps the GEMM-sized
        exhaustive campaigns fast); None uses everything.
    """
    matrix = encode_cache(cache, log_target=True)
    if matrix.n_samples < 10:
        raise ReproError(f"campaign {cache.benchmark}/{cache.gpu} is too small "
                         f"({matrix.n_samples} samples) for the importance analysis")
    X, y, y_raw = matrix.X, matrix.y, matrix.y_raw
    if max_samples is not None and matrix.n_samples > max_samples:
        rng = np.random.default_rng(random_state)
        idx = rng.choice(matrix.n_samples, size=max_samples, replace=False)
        X, y, y_raw = X[idx], y[idx], y_raw[idx]

    model = GradientBoostingRegressor(n_estimators=n_estimators, max_depth=max_depth,
                                      learning_rate=learning_rate,
                                      random_state=random_state)
    model.fit(X, y)
    predictions = model.predict(X)
    r2 = r2_score(y, predictions)
    r2_raw = r2_score(y_raw, np.exp(predictions))

    pfi = permutation_importance(model, X, y, n_repeats=n_repeats,
                                 random_state=random_state,
                                 feature_names=matrix.feature_names)
    gains = model.feature_importances_

    return ImportanceReport(
        benchmark=cache.benchmark,
        gpu=cache.gpu,
        feature_names=matrix.feature_names,
        r2=float(r2),
        r2_raw=float(r2_raw),
        importances={name: float(v) for name, v
                     in zip(matrix.feature_names, pfi.importances_mean)},
        importances_std={name: float(v) for name, v
                         in zip(matrix.feature_names, pfi.importances_std)},
        gain_importances={name: float(v) for name, v in zip(matrix.feature_names, gains)},
        n_samples=int(X.shape[0]),
    )


def importance_study(caches: Mapping[tuple[str, str], EvaluationCache],
                     **kwargs) -> dict[tuple[str, str], ImportanceReport]:
    """Fig. 6 over a whole campaign: one report per (benchmark, GPU) cache."""
    return {key: feature_importance(cache, **kwargs) for key, cache in caches.items()}


def important_parameters(reports: Sequence[ImportanceReport],
                         threshold: float = 0.05) -> tuple[str, ...]:
    """Parameters reaching ``threshold`` importance on *any* GPU (Table VIII reduction rule).

    All reports must belong to the same benchmark.
    """
    if not reports:
        raise ReproError("need at least one importance report")
    benchmarks = {r.benchmark for r in reports}
    if len(benchmarks) > 1:
        raise ReproError(f"reports span multiple benchmarks: {sorted(benchmarks)}")
    names = reports[0].feature_names
    keep = []
    for name in names:
        if any(r.importances.get(name, 0.0) >= threshold for r in reports):
            keep.append(name)
    return tuple(keep)
