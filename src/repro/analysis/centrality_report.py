"""Proportion-of-centrality study (paper Fig. 3).

The paper computes the proportion-of-centrality search-difficulty metric for the
benchmarks whose exhaustive campaigns are affordable -- GEMM, Convolution and Pnpoly --
on each of the four GPUs, and observes that local search should fare better on
Convolution than on GEMM and Pnpoly.  This module wraps the graph substrate to produce
exactly that study from campaign caches.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.cache import EvaluationCache
from repro.graph.centrality import DEFAULT_PROPORTIONS, CentralityReport, proportion_of_centrality

__all__ = ["centrality_study", "CENTRALITY_BENCHMARKS"]

#: Benchmarks for which the paper reports Fig. 3 (exhaustive data small enough).
CENTRALITY_BENCHMARKS: tuple[str, ...] = ("gemm", "convolution", "pnpoly")


def centrality_study(caches: Mapping[tuple[str, str], EvaluationCache],
                     benchmark_names: Sequence[str] = CENTRALITY_BENCHMARKS,
                     proportions: Sequence[float] = DEFAULT_PROPORTIONS,
                     damping: float = 0.85) -> dict[tuple[str, str], CentralityReport]:
    """Fig. 3: proportion of centrality for the selected benchmarks on every GPU.

    Parameters
    ----------
    caches:
        Campaign caches keyed by (benchmark, GPU).
    benchmark_names:
        Which benchmarks to analyse (the paper's three by default; the huge sampled
        campaigns are excluded exactly as the paper excludes them for lack of
        resources).
    proportions / damping:
        Forwarded to :func:`repro.graph.centrality.proportion_of_centrality`.
    """
    selected = {key: cache for key, cache in caches.items() if key[0] in set(benchmark_names)}
    return {key: proportion_of_centrality(cache, proportions=proportions, damping=damping)
            for key, cache in selected.items()}
