"""Performance portability of optimal configurations (paper Fig. 5).

Fig. 5 asks: if I tune a kernel on GPU *A* and simply reuse the resulting optimal
configuration on GPU *B*, what fraction of *B*'s own optimum do I get?  The paper
reports the full transfer matrix for the exhaustively searched benchmarks
(Convolution, Pnpoly, Nbody) and finds transfers within an architecture family are
nearly free (e.g. RTX 3060 <-> RTX 3090) while cross-family transfers can drop to
58.5% of the achievable performance.

The matrix entry at (source row, target column) is
``optimal_runtime_on_target / runtime_of_source_optimum_on_target`` -- 1.0 on the
diagonal by construction, lower values mean poor portability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.core.cache import EvaluationCache
from repro.core.errors import ReproError
from repro.gpus.specs import GPUSpec
from repro.kernels.base import KernelBenchmark

__all__ = ["PortabilityMatrix", "portability_matrix", "portability_study"]


@dataclass
class PortabilityMatrix:
    """Transfer matrix of optimal configurations across GPUs for one benchmark.

    Attributes
    ----------
    gpus:
        Device names, defining the row (source) and column (target) order.
    relative_performance:
        ``matrix[i, j]`` = relative performance on ``gpus[j]`` of the configuration
        that is optimal on ``gpus[i]`` (1.0 = as good as the target's own optimum).
    optimal_configs:
        The optimal configuration per source GPU.
    """

    benchmark: str
    gpus: tuple[str, ...]
    relative_performance: np.ndarray
    optimal_configs: dict[str, dict[str, object]]

    def worst_transfer(self) -> tuple[str, str, float]:
        """The (source, target, value) of the worst off-diagonal transfer."""
        worst = (self.gpus[0], self.gpus[0], 1.0)
        value = np.inf
        for i, src in enumerate(self.gpus):
            for j, dst in enumerate(self.gpus):
                if i != j and self.relative_performance[i, j] < value:
                    value = float(self.relative_performance[i, j])
                    worst = (src, dst, value)
        return worst

    def mean_off_diagonal(self) -> float:
        """Mean relative performance of all cross-device transfers."""
        n = len(self.gpus)
        mask = ~np.eye(n, dtype=bool)
        return float(self.relative_performance[mask].mean())

    def entry(self, source: str, target: str) -> float:
        """One matrix entry by device names."""
        i = self.gpus.index(source)
        j = self.gpus.index(target)
        return float(self.relative_performance[i, j])

    def to_dict(self) -> dict[str, object]:
        """JSON-friendly representation."""
        return {
            "benchmark": self.benchmark,
            "gpus": list(self.gpus),
            "relative_performance": self.relative_performance.tolist(),
        }


def portability_matrix(benchmark: KernelBenchmark,
                       caches: Mapping[str, EvaluationCache],
                       gpus: Mapping[str, GPUSpec]) -> PortabilityMatrix:
    """Compute the Fig. 5 transfer matrix of one benchmark.

    Parameters
    ----------
    benchmark:
        The benchmark (used to re-evaluate a source-optimal configuration on a target
        GPU when the target's cache does not contain it, e.g. for sampled campaigns).
    caches:
        Campaign caches keyed by GPU name.
    gpus:
        GPU specs keyed by name (must cover every cache).
    """
    gpu_names = tuple(sorted(caches))
    if not gpu_names:
        raise ReproError("portability analysis needs at least one cache")
    optima = {name: caches[name].best() for name in gpu_names}

    matrix = np.ones((len(gpu_names), len(gpu_names)))
    for i, source in enumerate(gpu_names):
        source_config = dict(optima[source].config)
        for j, target in enumerate(gpu_names):
            if source == target:
                continue
            target_best = optima[target].value
            cached = caches[target].get(source_config)
            if cached is not None and not cached.is_failure:
                transferred = cached.value
            else:
                # Not in the target's cache (sampled campaign) or invalid there:
                # evaluate through the model, falling back to "not portable at all".
                try:
                    transferred = benchmark.model.time_ms(source_config, gpus[target])
                except Exception:
                    transferred = float("inf")
            matrix[i, j] = target_best / transferred if np.isfinite(transferred) else 0.0

    return PortabilityMatrix(
        benchmark=benchmark.name,
        gpus=gpu_names,
        relative_performance=matrix,
        optimal_configs={name: dict(optima[name].config) for name in gpu_names},
    )


def portability_study(benchmarks: Mapping[str, KernelBenchmark],
                      caches: Mapping[tuple[str, str], EvaluationCache],
                      gpus: Mapping[str, GPUSpec],
                      benchmark_names: tuple[str, ...] = ("convolution", "pnpoly", "nbody"),
                      ) -> dict[str, PortabilityMatrix]:
    """Fig. 5 for the exhaustively searched benchmarks (Convolution, Pnpoly, Nbody)."""
    out: dict[str, PortabilityMatrix] = {}
    for name in benchmark_names:
        per_gpu = {gpu: cache for (bench, gpu), cache in caches.items() if bench == name}
        if not per_gpu:
            continue
        out[name] = portability_matrix(benchmarks[name], per_gpu, gpus)
    return out
