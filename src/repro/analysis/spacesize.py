"""Search-space size accounting (paper Table VIII).

Table VIII reports, per benchmark:

* **Cardinality** -- the size of the raw Cartesian product of the parameter values;
* **Constrained** -- configurations that satisfy the kernel's static constraints;
* **Valid** -- configurations that additionally compile/launch on the tested GPUs
  (a range across GPUs; "N/A" for the spaces too large to check exhaustively);
* **Reduced** -- the cardinality after dropping every parameter whose permutation
  feature importance stays below 0.05 on all GPUs;
* **Reduce-Constrained** -- the constrained count of that reduced space (unimportant
  parameters frozen at the overall best configuration's values).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.analysis.importance import ImportanceReport, important_parameters
from repro.core.cache import EvaluationCache
from repro.core.errors import ReproError
from repro.gpus.specs import GPUSpec
from repro.kernels.base import KernelBenchmark

__all__ = ["SpaceSizeRow", "space_size_table", "PAPER_TABLE8"]

#: The values printed in the paper's Table VIII, for side-by-side comparison in
#: reports and EXPERIMENTS.md.  ``valid`` is a (min, max) range or None for "N/A".
PAPER_TABLE8: dict[str, dict[str, object]] = {
    "pnpoly": {"cardinality": 4_092, "constrained": 4_092, "valid": (3_734, 3_774),
               "reduced": 4_092, "reduce_constrained": (3_734, 3_774)},
    "nbody": {"cardinality": 9_408, "constrained": 1_568, "valid": (1_568, 1_568),
              "reduced": 112, "reduce_constrained": 70},
    "convolution": {"cardinality": 18_432, "constrained": 9_400, "valid": (5_220, 5_256),
                    "reduced": 4_700, "reduce_constrained": 4_700},
    "gemm": {"cardinality": 82_944, "constrained": 17_956, "valid": (17_956, 17_956),
             "reduced": 17_956, "reduce_constrained": 17_956},
    "expdist": {"cardinality": 9_732_096, "constrained": 540_000, "valid": None,
                "reduced": 144, "reduce_constrained": 96},
    "hotspot": {"cardinality": 22_200_000, "constrained": 21_850_147, "valid": None,
                "reduced": 220_000, "reduce_constrained": 202_582},
    "dedispersion": {"cardinality": 123_863_040, "constrained": 107_011_905, "valid": None,
                     "reduced": 3_870_720, "reduce_constrained": 3_327_135},
}


@dataclass
class SpaceSizeRow:
    """One row of the reproduced Table VIII.

    ``valid_range`` is None when the space is too large to check per-GPU validity
    exhaustively (mirroring the paper's "N/A" entries); counts obtained by sampling
    rather than enumeration are flagged by ``constrained_estimated``.
    """

    benchmark: str
    cardinality: int
    constrained: int
    constrained_estimated: bool
    valid_range: tuple[int, int] | None
    reduced: int
    reduce_constrained: int
    important_parameters: tuple[str, ...]

    def to_dict(self) -> dict[str, object]:
        """JSON-friendly representation, including the paper's values for comparison."""
        paper = PAPER_TABLE8.get(self.benchmark, {})
        return {
            "benchmark": self.benchmark,
            "cardinality": self.cardinality,
            "constrained": self.constrained,
            "constrained_estimated": self.constrained_estimated,
            "valid_range": list(self.valid_range) if self.valid_range else None,
            "reduced": self.reduced,
            "reduce_constrained": self.reduce_constrained,
            "important_parameters": list(self.important_parameters),
            "paper": paper,
        }


def space_size_table(benchmarks: Mapping[str, KernelBenchmark],
                     gpus: Mapping[str, GPUSpec],
                     importance_reports: Mapping[tuple[str, str], ImportanceReport],
                     caches: Mapping[tuple[str, str], EvaluationCache] | None = None,
                     importance_threshold: float = 0.05,
                     enumeration_limit: int = 200_000,
                     constrained_sample: int = 100_000,
                     validity_sample: int | None = 20_000) -> list[SpaceSizeRow]:
    """Reproduce Table VIII.

    Parameters
    ----------
    benchmarks / gpus:
        The suite and devices.
    importance_reports:
        Output of :func:`repro.analysis.importance.importance_study` (needed for the
        Reduced columns).
    caches:
        Campaign caches; used to pick the values the unimportant parameters are frozen
        at (the overall best configuration).  Defaults to parameter defaults.
    importance_threshold:
        PFI threshold above which a parameter is kept (paper: 0.05 on any GPU).
    enumeration_limit:
        Spaces with cardinality at or below this are counted exactly; larger ones are
        estimated by sampling ``constrained_sample`` points.
    validity_sample:
        Per-GPU validity is enumerated only for spaces within ``enumeration_limit``;
        larger spaces report None (the paper's "N/A").
    """
    rows: list[SpaceSizeRow] = []
    for name, benchmark in benchmarks.items():
        space = benchmark.space
        cardinality = space.cardinality

        exact = cardinality <= enumeration_limit
        if exact:
            # Memoize the feasible-index array for the duration of this row even if
            # the caller's enumeration limit exceeds the space's own threshold: the
            # exact constrained count is then one array length, and the per-GPU
            # validity enumeration below reuses the same feasible blocks instead of
            # re-masking.  Released again below for spaces over the threshold.
            space.feasible_indices(force=True)
        constrained = space.count_constrained(limit=None if exact else constrained_sample)

        if exact:
            valid_counts = [benchmark.count_valid(gpu, limit=enumeration_limit)
                            for gpu in gpus.values()]
            valid_range: tuple[int, int] | None = (min(valid_counts), max(valid_counts))
        else:
            valid_range = None

        reports = [r for (bench, _), r in importance_reports.items() if bench == name]
        if not reports:
            raise ReproError(f"no importance reports supplied for benchmark {name!r}")
        keep = important_parameters(reports, threshold=importance_threshold)
        if not keep:
            # Degenerate (should not happen with the suite's benchmarks): keep the
            # single most important parameter so the reduced space is well defined.
            best_name = max(reports[0].importances, key=reports[0].importances.get)
            keep = (best_name,)

        # Freeze the unimportant parameters at the best-known configuration's values.
        fixed = {}
        if caches:
            best_configs = [cache.best().config for (bench, _), cache in caches.items()
                            if bench == name and cache.num_valid > 0]
            if best_configs:
                fixed = dict(best_configs[0])
        reduced_space = space.reduced(keep, fixed=fixed)
        reduced = reduced_space.cardinality
        reduce_constrained = reduced_space.count_constrained(
            limit=None if reduced <= enumeration_limit else constrained_sample)

        if exact and cardinality > space.memoize_threshold:
            space.release_feasible_memo()

        rows.append(SpaceSizeRow(
            benchmark=name,
            cardinality=cardinality,
            constrained=int(constrained),
            constrained_estimated=not exact,
            valid_range=valid_range,
            reduced=int(reduced),
            reduce_constrained=int(reduce_constrained),
            important_parameters=keep,
        ))
    return rows
