"""Plain-text rendering of the reproduced figures and tables.

The benchmark harness regenerates the paper's tables and figures as *numbers*; this
module turns those numbers into aligned plain-text tables and simple series listings so
that ``pytest benchmarks/ --benchmark-only`` output (and the example scripts) read like
the paper's evaluation section.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence


from repro.analysis.centrality_report import CentralityReport
from repro.analysis.convergence import ConvergenceCurve
from repro.analysis.distribution import DistributionSummary
from repro.analysis.importance import ImportanceReport
from repro.analysis.portability import PortabilityMatrix
from repro.analysis.speedup import SpeedupEntry
from repro.analysis.spacesize import SpaceSizeRow, PAPER_TABLE8

__all__ = [
    "format_table",
    "format_parameter_table",
    "format_distribution",
    "format_convergence",
    "format_centrality",
    "format_speedups",
    "format_portability",
    "format_importance",
    "format_space_sizes",
]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Any]],
                 title: str = "") -> str:
    """Render an aligned plain-text table."""
    rendered_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_parameter_table(benchmark_name: str, table: Sequence[Mapping[str, Any]],
                           paper_table: str = "") -> str:
    """Render a benchmark's tunable-parameter table (paper Tables I--VII)."""
    rows = []
    for entry in table:
        values = entry["values"]
        if len(values) > 8:
            value_text = "{" + ", ".join(str(v) for v in values[:4]) + ", ..., " + str(values[-1]) + "}"
        else:
            value_text = "{" + ", ".join(str(v) for v in values) + "}"
        rows.append((entry["parameter"], value_text, entry["count"]))
    title = f"Tunable parameters - {benchmark_name} ({paper_table})" if paper_table else \
        f"Tunable parameters - {benchmark_name}"
    return format_table(("Parameter", "Values", "#"), rows, title=title)


def format_distribution(summaries: Sequence[DistributionSummary]) -> str:
    """Render the Fig. 1 distribution summaries."""
    rows = []
    for s in summaries:
        rows.append((s.benchmark, s.gpu, s.num_configs, f"{s.best_ms:.3f}",
                     f"{s.median_ms:.3f}", f"{s.max_speedup_over_median:.2f}x",
                     f"{s.fraction_within_10pct_of_best * 100:.1f}%",
                     f"{s.skewness:+.2f}"))
    return format_table(
        ("Benchmark", "GPU", "Configs", "Best[ms]", "Median[ms]", "Max/Med", "Within10%", "Skew"),
        rows, title="Fig. 1 - performance distribution of configurations")


def format_convergence(curves: Sequence[ConvergenceCurve],
                       thresholds: Sequence[float] = (0.8, 0.9, 0.95, 0.99)) -> str:
    """Render the Fig. 2 convergence study as evaluations-to-threshold."""
    headers = ["Benchmark", "GPU"] + [f"evals to {int(t*100)}%" for t in thresholds]
    rows = []
    for c in curves:
        row = [c.benchmark, c.gpu]
        for t in thresholds:
            needed = c.evaluations_to_reach(t)
            row.append(str(needed) if needed is not None else f">{c.budget}")
        rows.append(row)
    return format_table(headers, rows,
                        title="Fig. 2 - random-search convergence (median of repetitions)")


def format_centrality(reports: Mapping[tuple[str, str], CentralityReport]) -> str:
    """Render the Fig. 3 proportion-of-centrality study."""
    if not reports:
        return "Fig. 3 - no centrality reports"
    proportions = next(iter(reports.values())).proportions
    headers = ["Benchmark", "GPU", "Nodes", "Minima"] + [f"p={p:g}" for p in proportions]
    rows = []
    for (bench, gpu), report in sorted(reports.items()):
        rows.append([bench, gpu, report.num_nodes, report.num_minima]
                    + [f"{v:.3f}" for v in report.values])
    return format_table(headers, rows, title="Fig. 3 - proportion of centrality")


def format_speedups(entries: Sequence[SpeedupEntry]) -> str:
    """Render the Fig. 4 max-speedup-over-median study."""
    rows = [(e.benchmark, e.gpu, f"{e.median_ms:.3f}", f"{e.best_ms:.3f}", f"{e.speedup:.2f}x")
            for e in sorted(entries, key=lambda e: (e.benchmark, e.gpu))]
    return format_table(("Benchmark", "GPU", "Median[ms]", "Best[ms]", "Speedup"), rows,
                        title="Fig. 4 - max speedup over median configuration")


def format_portability(matrices: Mapping[str, PortabilityMatrix]) -> str:
    """Render the Fig. 5 performance-portability matrices."""
    blocks = []
    for name, matrix in matrices.items():
        headers = ["optimal on \\ run on"] + list(matrix.gpus)
        rows = []
        for i, src in enumerate(matrix.gpus):
            rows.append([src] + [f"{matrix.relative_performance[i, j] * 100:.1f}%"
                                 for j in range(len(matrix.gpus))])
        blocks.append(format_table(headers, rows,
                                   title=f"Fig. 5 - performance portability ({name})"))
    return "\n\n".join(blocks) if blocks else "Fig. 5 - no portability matrices"


def format_importance(reports: Mapping[tuple[str, str], ImportanceReport],
                      top_k: int = 5) -> str:
    """Render the Fig. 6 feature-importance study."""
    rows = []
    for (bench, gpu), report in sorted(reports.items()):
        top = ", ".join(f"{name}={value:.2f}" for name, value in report.ranked()[:top_k]
                        if value > 0.005)
        rows.append((bench, gpu, f"{report.r2:.4f}", f"{report.total_importance:.2f}", top))
    return format_table(("Benchmark", "GPU", "R^2", "Sum PFI", f"Top-{top_k} parameters"),
                        rows, title="Fig. 6 - permutation feature importance")


def format_space_sizes(rows: Sequence[SpaceSizeRow], include_paper: bool = True) -> str:
    """Render the reproduced Table VIII (optionally side by side with the paper's values)."""
    def fmt_valid(value):
        if value is None:
            return "N/A"
        lo, hi = value
        return f"{lo:,}" if lo == hi else f"{lo:,} - {hi:,}"

    table_rows = []
    for row in sorted(rows, key=lambda r: r.cardinality):
        cells = [row.benchmark, f"{row.cardinality:,}",
                 f"{row.constrained:,}" + ("~" if row.constrained_estimated else ""),
                 fmt_valid(row.valid_range), f"{row.reduced:,}", f"{row.reduce_constrained:,}"]
        if include_paper:
            paper = PAPER_TABLE8.get(row.benchmark, {})
            cells.append(f"{paper.get('constrained', 0):,}")
            cells.append(f"{paper.get('reduced', 0):,}")
        table_rows.append(cells)
    headers = ["Benchmark", "Cardinality", "Constrained", "Valid", "Reduced", "Reduce-Constr."]
    if include_paper:
        headers += ["Paper:Constr.", "Paper:Reduced"]
    return format_table(headers, table_rows, title="Table VIII - search space sizes")
