"""Measurement campaigns.

Everything in the paper's evaluation section is computed from per-(benchmark, GPU)
campaign caches.  The experimental design (Sec. V) is:

* **exhaustive** evaluation of the whole valid space for Pnpoly, Nbody, GEMM and
  Convolution;
* **10 000 unique random configurations** for Hotspot, Dedispersion and Expdist (their
  spaces have 1e7--1e8 points).

:class:`Campaign` reproduces that design against the simulated GPUs, memoises the
caches in memory (so one pytest/benchmark session never evaluates the same campaign
twice), and can persist/load them as cache files.  A ``scale`` parameter shrinks the
sampled campaigns and swaps exhaustive enumeration for sampling above a cardinality
limit, which is what the unit tests and the quick benchmark presets use.

Execution is delegated to the :mod:`repro.exec` subsystem: the campaign's design
decisions (which benchmarks are sampled, per-GPU seeds) live in
:class:`~repro.exec.planner.ShardPlanner`, and cache construction runs through an
:class:`~repro.exec.executors.Executor` -- the default :class:`SerialExecutor` keeps
the historical behaviour byte for byte, while a
:class:`~repro.exec.executors.ParallelExecutor` fans the same shards out over worker
processes.  An optional checkpoint directory makes long campaigns resumable.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Mapping

from repro.core.cache import EvaluationCache
from repro.exec.checkpoint import CheckpointStore
from repro.exec.executors import Executor, SerialExecutor
from repro.exec.planner import (
    PAPER_SAMPLE_SIZE,
    PAPER_SAMPLED_BENCHMARKS,
    ShardPlanner,
)
from repro.core.registry import benchmark_suite
from repro.gpus.specs import GPUSpec, all_gpus
from repro.io.cachefile import load_cache, save_cache
from repro.kernels import KernelBenchmark

__all__ = ["Campaign", "PAPER_SAMPLED_BENCHMARKS", "PAPER_SAMPLE_SIZE"]


class Campaign:
    """Runs and memoises the measurement campaigns of the paper.

    Parameters
    ----------
    benchmarks:
        Benchmarks to include (default: the full open-registry suite -- the seven
        paper kernels plus every benchmark registered through
        :func:`repro.core.registry.register_benchmark`, e.g. synthetic scenarios).
    gpus:
        Devices to include (default: the paper's four GPUs).
    sample_size:
        Number of unique random configurations for sampled campaigns
        (paper: 10 000).
    exhaustive_limit:
        Benchmarks whose *cardinality* exceeds this limit are sampled even if the
        paper enumerates them; ``None`` follows the paper exactly.  Tests use a small
        limit to stay fast.
    seed:
        Base seed of the sampled campaigns (each GPU gets ``seed + index``).
    with_noise:
        Whether the simulated measurements include the deterministic noise model.
    executor:
        Campaign executor (default: :class:`~repro.exec.executors.SerialExecutor`).
        Pass a :class:`~repro.exec.executors.ParallelExecutor` to evaluate shards
        across worker processes; the resulting caches are byte-identical.
    checkpoint:
        Optional checkpoint directory (or :class:`~repro.exec.checkpoint.CheckpointStore`):
        completed shards are persisted so an interrupted campaign resumes without
        re-evaluating.
    """

    def __init__(self, benchmarks: Mapping[str, KernelBenchmark] | None = None,
                 gpus: Mapping[str, GPUSpec] | None = None,
                 sample_size: int = PAPER_SAMPLE_SIZE,
                 exhaustive_limit: int | None = None,
                 seed: int = 2023, with_noise: bool = True,
                 executor: Executor | None = None,
                 checkpoint: CheckpointStore | str | Path | None = None):
        self.benchmarks = dict(benchmarks) if benchmarks is not None else benchmark_suite()
        self.gpus = dict(gpus) if gpus is not None else all_gpus()
        self.sample_size = int(sample_size)
        self.exhaustive_limit = exhaustive_limit
        self.seed = int(seed)
        self.with_noise = with_noise
        self.executor = executor if executor is not None else SerialExecutor()
        self.checkpoint = checkpoint
        self._planner = ShardPlanner(
            benchmarks=self.benchmarks, gpus=self.gpus, sample_size=self.sample_size,
            exhaustive_limit=self.exhaustive_limit, seed=self.seed,
            with_noise=self.with_noise)
        self._caches: dict[tuple[str, str], EvaluationCache] = {}

    # ------------------------------------------------------------------- protocol

    def is_sampled(self, benchmark_name: str) -> bool:
        """True when the campaign for this benchmark uses random sampling."""
        return self._planner.is_sampled(benchmark_name)

    def campaign_sample_size(self, benchmark_name: str) -> int | None:
        """Sample size used for this benchmark (None = exhaustive)."""
        return self.sample_size if self.is_sampled(benchmark_name) else None

    # --------------------------------------------------------------------- caches

    def _execute(self, keys: Iterable[tuple[str, str]]) -> None:
        """Build the caches of ``keys`` through the execution subsystem.

        With a checkpoint directory the manifest always binds the *full* campaign
        plan (fragments need one stable plan to resume against) while only the
        requested units' shards execute -- per-pair laziness and resumability
        compose.
        """
        keys = list(keys)
        if not keys:
            return
        if self.checkpoint is not None:
            plan = self._planner.plan()
            only_units = keys
        else:
            plan = self._planner.plan(
                [self._planner.unit_for(benchmark_name, gpu_name)
                 for benchmark_name, gpu_name in keys])
            only_units = None
        self._caches.update(self.executor.run(
            plan, benchmarks=self.benchmarks, gpus=self.gpus,
            checkpoint=self.checkpoint, only_units=only_units))

    def cache(self, benchmark_name: str, gpu_name: str) -> EvaluationCache:
        """The campaign cache of one (benchmark, GPU) pair (built on first access)."""
        key = (benchmark_name, gpu_name)
        if key not in self._caches:
            self._execute([key])
        return self._caches[key]

    def caches_for_benchmark(self, benchmark_name: str) -> dict[str, EvaluationCache]:
        """Caches of one benchmark on every GPU, keyed by GPU name."""
        return {gpu_name: self.cache(benchmark_name, gpu_name) for gpu_name in self.gpus}

    def all_caches(self) -> dict[tuple[str, str], EvaluationCache]:
        """Every (benchmark, GPU) cache of the campaign.

        Missing caches are built in a single executor pass, so a parallel executor's
        worker pool is spun up once for the whole campaign rather than per pair.
        """
        missing = [(benchmark_name, gpu_name)
                   for benchmark_name in self.benchmarks for gpu_name in self.gpus
                   if (benchmark_name, gpu_name) not in self._caches]
        self._execute(missing)
        return dict(self._caches)

    # ---------------------------------------------------------------- persistence

    def save(self, directory: str | Path, compress: bool = True) -> list[Path]:
        """Persist every built cache as ``<benchmark>_<gpu>.json[.gz]`` files."""
        directory = Path(directory)
        written: list[Path] = []
        suffix = ".json.gz" if compress else ".json"
        for (benchmark_name, gpu_name), cache in self._caches.items():
            written.append(save_cache(cache, directory / f"{benchmark_name}_{gpu_name}{suffix}"))
        return written

    def load(self, directory: str | Path) -> int:
        """Load previously saved caches from ``directory``; returns how many were loaded."""
        directory = Path(directory)
        loaded = 0
        for benchmark_name, benchmark in self.benchmarks.items():
            for gpu_name in self.gpus:
                for suffix in (".json.gz", ".json"):
                    path = directory / f"{benchmark_name}_{gpu_name}{suffix}"
                    if path.exists():
                        self._caches[(benchmark_name, gpu_name)] = load_cache(
                            path, space=benchmark.space)
                        loaded += 1
                        break
        return loaded

    # -------------------------------------------------------------------- summary

    def summary(self) -> list[dict[str, object]]:
        """One row per built cache: sizes, best/median runtimes."""
        rows: list[dict[str, object]] = []
        for (benchmark_name, gpu_name), cache in sorted(self._caches.items()):
            stats = cache.statistics()
            rows.append({
                "benchmark": benchmark_name,
                "gpu": gpu_name,
                "entries": len(cache),
                "valid": cache.num_valid,
                "exhaustive": cache.exhaustive,
                "best_ms": stats["best"],
                "median_ms": stats["median"],
            })
        return rows
