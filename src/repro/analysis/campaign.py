"""Measurement campaigns.

Everything in the paper's evaluation section is computed from per-(benchmark, GPU)
campaign caches.  The experimental design (Sec. V) is:

* **exhaustive** evaluation of the whole valid space for Pnpoly, Nbody, GEMM and
  Convolution;
* **10 000 unique random configurations** for Hotspot, Dedispersion and Expdist (their
  spaces have 1e7--1e8 points).

:class:`Campaign` reproduces that design against the simulated GPUs, memoises the
caches in memory (so one pytest/benchmark session never evaluates the same campaign
twice), and can persist/load them as cache files.  A ``scale`` parameter shrinks the
sampled campaigns and swaps exhaustive enumeration for sampling above a cardinality
limit, which is what the unit tests and the quick benchmark presets use.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Mapping

from repro.core.cache import EvaluationCache
from repro.gpus.specs import GPUSpec, all_gpus
from repro.io.cachefile import load_cache, save_cache
from repro.kernels import KernelBenchmark, all_benchmarks

__all__ = ["Campaign", "PAPER_SAMPLED_BENCHMARKS", "PAPER_SAMPLE_SIZE"]

#: Benchmarks the paper samples (10 000 random configurations) instead of enumerating.
PAPER_SAMPLED_BENCHMARKS: frozenset[str] = frozenset({"hotspot", "dedispersion", "expdist"})

#: Number of random configurations per sampled campaign in the paper.
PAPER_SAMPLE_SIZE: int = 10_000


class Campaign:
    """Runs and memoises the measurement campaigns of the paper.

    Parameters
    ----------
    benchmarks:
        Benchmarks to include (default: the full suite).
    gpus:
        Devices to include (default: the paper's four GPUs).
    sample_size:
        Number of unique random configurations for sampled campaigns
        (paper: 10 000).
    exhaustive_limit:
        Benchmarks whose *cardinality* exceeds this limit are sampled even if the
        paper enumerates them; ``None`` follows the paper exactly.  Tests use a small
        limit to stay fast.
    seed:
        Base seed of the sampled campaigns (each GPU gets ``seed + index``).
    with_noise:
        Whether the simulated measurements include the deterministic noise model.
    """

    def __init__(self, benchmarks: Mapping[str, KernelBenchmark] | None = None,
                 gpus: Mapping[str, GPUSpec] | None = None,
                 sample_size: int = PAPER_SAMPLE_SIZE,
                 exhaustive_limit: int | None = None,
                 seed: int = 2023, with_noise: bool = True):
        self.benchmarks = dict(benchmarks) if benchmarks is not None else all_benchmarks()
        self.gpus = dict(gpus) if gpus is not None else all_gpus()
        self.sample_size = int(sample_size)
        self.exhaustive_limit = exhaustive_limit
        self.seed = int(seed)
        self.with_noise = with_noise
        self._caches: dict[tuple[str, str], EvaluationCache] = {}

    # ------------------------------------------------------------------- protocol

    def is_sampled(self, benchmark_name: str) -> bool:
        """True when the campaign for this benchmark uses random sampling."""
        benchmark = self.benchmarks[benchmark_name]
        if benchmark_name in PAPER_SAMPLED_BENCHMARKS:
            return True
        if self.exhaustive_limit is not None:
            return benchmark.space.cardinality > self.exhaustive_limit
        return False

    def campaign_sample_size(self, benchmark_name: str) -> int | None:
        """Sample size used for this benchmark (None = exhaustive)."""
        return self.sample_size if self.is_sampled(benchmark_name) else None

    # --------------------------------------------------------------------- caches

    def cache(self, benchmark_name: str, gpu_name: str) -> EvaluationCache:
        """The campaign cache of one (benchmark, GPU) pair (built on first access)."""
        key = (benchmark_name, gpu_name)
        if key not in self._caches:
            benchmark = self.benchmarks[benchmark_name]
            gpu = self.gpus[gpu_name]
            gpu_index = sorted(self.gpus).index(gpu_name)
            if not self.is_sampled(benchmark_name):
                # Exhaustive campaigns enumerate the same feasible set once per GPU;
                # priming the space's memoized feasible-index array makes every
                # build after the first a pure array slice.
                benchmark.space.feasible_indices()
            self._caches[key] = benchmark.build_cache(
                gpu,
                sample_size=self.campaign_sample_size(benchmark_name),
                seed=self.seed + gpu_index,
                with_noise=self.with_noise,
            )
        return self._caches[key]

    def caches_for_benchmark(self, benchmark_name: str) -> dict[str, EvaluationCache]:
        """Caches of one benchmark on every GPU, keyed by GPU name."""
        return {gpu_name: self.cache(benchmark_name, gpu_name) for gpu_name in self.gpus}

    def all_caches(self) -> dict[tuple[str, str], EvaluationCache]:
        """Every (benchmark, GPU) cache of the campaign."""
        for benchmark_name in self.benchmarks:
            for gpu_name in self.gpus:
                self.cache(benchmark_name, gpu_name)
        return dict(self._caches)

    # ---------------------------------------------------------------- persistence

    def save(self, directory: str | Path, compress: bool = True) -> list[Path]:
        """Persist every built cache as ``<benchmark>_<gpu>.json[.gz]`` files."""
        directory = Path(directory)
        written: list[Path] = []
        suffix = ".json.gz" if compress else ".json"
        for (benchmark_name, gpu_name), cache in self._caches.items():
            written.append(save_cache(cache, directory / f"{benchmark_name}_{gpu_name}{suffix}"))
        return written

    def load(self, directory: str | Path) -> int:
        """Load previously saved caches from ``directory``; returns how many were loaded."""
        directory = Path(directory)
        loaded = 0
        for benchmark_name, benchmark in self.benchmarks.items():
            for gpu_name in self.gpus:
                for suffix in (".json.gz", ".json"):
                    path = directory / f"{benchmark_name}_{gpu_name}{suffix}"
                    if path.exists():
                        self._caches[(benchmark_name, gpu_name)] = load_cache(
                            path, space=benchmark.space)
                        loaded += 1
                        break
        return loaded

    # -------------------------------------------------------------------- summary

    def summary(self) -> list[dict[str, object]]:
        """One row per built cache: sizes, best/median runtimes."""
        rows: list[dict[str, object]] = []
        for (benchmark_name, gpu_name), cache in sorted(self._caches.items()):
            stats = cache.statistics()
            rows.append({
                "benchmark": benchmark_name,
                "gpu": gpu_name,
                "entries": len(cache),
                "valid": cache.num_valid,
                "exhaustive": cache.exhaustive,
                "best_ms": stats["best"],
                "median_ms": stats["median"],
            })
        return rows
