"""Configuration performance distributions (paper Fig. 1).

Fig. 1 plots, for every benchmark and GPU, the distribution of configuration
performance *centred around the median configuration* and extending from the worst to
the best configuration.  We express each configuration's performance relative to the
median configuration (``median_runtime / runtime``): 1.0 is the median, values above 1
are faster than the median (the best configuration sits at the maximum, which equals
the Fig. 4 speedup), values below 1 are slower.

The summary captures everything needed to reproduce the figure as numbers: histogram
(density over relative performance), percentiles, and the shape diagnostics the paper
discusses (the fraction of configurations within 5% of the optimum, which is what makes
Hotspot's "cluster of very highly performing configurations" visible, and the skewness
of the distribution).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.cache import EvaluationCache
from repro.core.errors import ReproError

__all__ = ["DistributionSummary", "distribution_summary"]


@dataclass
class DistributionSummary:
    """Distribution of configuration performance for one (benchmark, GPU) campaign.

    All "relative performance" quantities are ``median_runtime / runtime`` (higher is
    better, median = 1.0).
    """

    benchmark: str
    gpu: str
    num_configs: int
    best_ms: float
    median_ms: float
    worst_ms: float
    relative_performance: np.ndarray
    histogram_edges: np.ndarray
    histogram_density: np.ndarray
    percentiles: dict[int, float]
    fraction_within_5pct_of_best: float
    fraction_within_10pct_of_best: float
    skewness: float

    @property
    def max_speedup_over_median(self) -> float:
        """Speedup of the best configuration over the median one (ties to Fig. 4)."""
        return self.median_ms / self.best_ms

    @property
    def worst_slowdown_vs_median(self) -> float:
        """How much slower than the median the worst configuration is."""
        return self.worst_ms / self.median_ms

    def to_dict(self) -> dict[str, object]:
        """JSON-friendly summary (histogram arrays as lists)."""
        return {
            "benchmark": self.benchmark,
            "gpu": self.gpu,
            "num_configs": self.num_configs,
            "best_ms": self.best_ms,
            "median_ms": self.median_ms,
            "worst_ms": self.worst_ms,
            "max_speedup_over_median": self.max_speedup_over_median,
            "worst_slowdown_vs_median": self.worst_slowdown_vs_median,
            "percentiles": dict(self.percentiles),
            "fraction_within_5pct_of_best": self.fraction_within_5pct_of_best,
            "fraction_within_10pct_of_best": self.fraction_within_10pct_of_best,
            "skewness": self.skewness,
            "histogram_edges": self.histogram_edges.tolist(),
            "histogram_density": self.histogram_density.tolist(),
        }


def distribution_summary(cache: EvaluationCache, bins: int = 50) -> DistributionSummary:
    """Compute the Fig. 1 distribution summary of one campaign cache."""
    runtimes = cache.values(valid_only=True)
    if runtimes.size == 0:
        raise ReproError(f"cache {cache.benchmark}/{cache.gpu} has no valid entries")

    median = float(np.median(runtimes))
    relative = median / runtimes

    density, edges = np.histogram(relative, bins=bins, density=True)
    centred = relative - relative.mean()
    std = float(relative.std())
    skewness = float(np.mean(centred ** 3) / std ** 3) if std > 0 else 0.0

    best = float(runtimes.min())
    within_5 = float(np.mean(runtimes <= 1.05 * best))
    within_10 = float(np.mean(runtimes <= 1.10 * best))

    percentiles = {p: float(np.percentile(relative, p)) for p in (1, 5, 25, 50, 75, 95, 99)}

    return DistributionSummary(
        benchmark=cache.benchmark,
        gpu=cache.gpu,
        num_configs=int(runtimes.size),
        best_ms=best,
        median_ms=median,
        worst_ms=float(runtimes.max()),
        relative_performance=relative,
        histogram_edges=edges,
        histogram_density=density,
        percentiles=percentiles,
        fraction_within_5pct_of_best=within_5,
        fraction_within_10pct_of_best=within_10,
        skewness=skewness,
    )
