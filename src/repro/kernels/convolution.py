"""Convolution benchmark (paper Sec. IV-E, Table V).

2D convolution of a large image with a dense filter, from van Werkhoven et al.'s
adaptive-tiling GPU convolution library.  Each thread block computes a tile of
``(block_size_x * tile_size_x) x (block_size_y * tile_size_y)`` output pixels from an
input region staged in shared memory (output tile plus filter halo).  ``use_padding``
pads the shared-memory rows to avoid bank conflicts when ``block_size_x`` is not a
multiple of the number of banks, and ``read_only`` routes image loads through the
read-only (texture) cache.

Convolution is the hardest benchmark to tune in the paper: the good configurations are
a small corner of the space where the shared tile fits, the halo overhead is amortised
by large tiles, the block shape keeps loads coalesced and occupancy stays high -- these
requirements pull in opposite directions, producing strong parameter interactions.
Random search consequently needs hundreds of evaluations to reach 90% of optimal
(Fig. 2d), and the regression model's R^2 is visibly lower than for the other
benchmarks (Sec. VI-F).
"""

from __future__ import annotations

import math
from typing import Any, Mapping

from repro.core.constraints import ConstraintSet
from repro.core.parameter import Parameter
from repro.core.searchspace import SearchSpace
from repro.gpus.memory import (
    MemoryTraffic,
    bank_conflict_factor,
    coalescing_efficiency,
    read_only_cache_factor,
)
from repro.gpus.occupancy import OccupancyResult
from repro.gpus.perfmodel import AnalyticalKernelModel, KernelLaunchConfig
from repro.gpus.specs import GPUSpec
from repro.kernels.base import KernelBenchmark, Workload
from repro.kernels.reference import convolution_reference

__all__ = ["ConvolutionModel", "create_benchmark", "PARAMETERS", "CONSTRAINTS"]

#: Tunable parameters exactly as listed in Table V of the paper.
PARAMETERS: tuple[Parameter, ...] = (
    Parameter("block_size_x", (1, 2, 4, 8, 16, 32, 48, 64, 80, 96, 112, 128), default=16,
              description="thread block dimension x"),
    Parameter("block_size_y", (1, 2, 4, 8, 16, 32), default=16,
              description="thread block dimension y"),
    Parameter("tile_size_x", tuple(range(1, 9)), description="output pixels per thread in x"),
    Parameter("tile_size_y", tuple(range(1, 9)), description="output pixels per thread in y"),
    Parameter("use_padding", (0, 1), description="pad shared memory to avoid bank conflicts"),
    Parameter("read_only", (0, 1), description="load the image through the read-only cache"),
)

#: Launch constraints: a full warp at minimum, the CUDA block limit at maximum.
CONSTRAINTS = ConstraintSet([
    "block_size_x * block_size_y >= 32",
    "block_size_x * block_size_y <= 1024",
])


class ConvolutionModel(AnalyticalKernelModel):
    """Analytical performance model of the adaptive-tiling 2D convolution kernel."""

    def __init__(self, image_size: int, filter_size: int):
        super().__init__("convolution", occupancy_saturation=0.50, noise_sigma=0.030)
        self.image_size = int(image_size)
        self.filter_size = int(filter_size)

    # ------------------------------------------------------------------- helpers

    def _tile_dims(self, config: Mapping[str, Any]) -> tuple[int, int]:
        return (int(config["block_size_x"]) * int(config["tile_size_x"]),
                int(config["block_size_y"]) * int(config["tile_size_y"]))

    def _shared_tile_bytes(self, config: Mapping[str, Any]) -> float:
        tile_x, tile_y = self._tile_dims(config)
        halo = self.filter_size - 1
        pad = 1 if int(config["use_padding"]) else 0
        return float((tile_x + halo + pad) * (tile_y + halo) * 4)

    # ---------------------------------------------------------------- launch shape

    def launch_config(self, config: Mapping[str, Any], gpu: GPUSpec) -> KernelLaunchConfig:
        bx = int(config["block_size_x"])
        by = int(config["block_size_y"])
        tx = int(config["tile_size_x"])
        ty = int(config["tile_size_y"])

        tile_x, tile_y = self._tile_dims(config)
        out = self.image_size - self.filter_size + 1
        grid = math.ceil(out / tile_x) * math.ceil(out / tile_y)

        # One accumulator per output pixel of the thread plus input staging registers.
        registers = 16 + 2.0 * tx * ty + 0.5 * (tx + ty)
        shared_bytes = self._shared_tile_bytes(config)

        return KernelLaunchConfig(
            threads_per_block=bx * by,
            grid_blocks=grid,
            registers_per_thread=registers,
            shared_mem_bytes=shared_bytes,
            launches=1,
        )

    # -------------------------------------------------------------------- work

    def flops(self, config: Mapping[str, Any], gpu: GPUSpec) -> float:
        out = self.image_size - self.filter_size + 1
        return 2.0 * float(out) * float(out) * self.filter_size * self.filter_size

    def traffic(self, config: Mapping[str, Any], gpu: GPUSpec) -> MemoryTraffic:
        bx = int(config["block_size_x"])
        use_padding = bool(int(config["use_padding"]))
        read_only = bool(int(config["read_only"]))

        tile_x, tile_y = self._tile_dims(config)
        halo = self.filter_size - 1
        out = self.image_size - self.filter_size + 1

        # Every block reads its output tile plus the halo; small tiles re-read the halo
        # many times over the whole image.
        halo_overhead = ((tile_x + halo) * (tile_y + halo)) / float(tile_x * tile_y)
        reads = float(out) * float(out) * 4.0 * halo_overhead
        reads += self.filter_size * self.filter_size * 4.0
        writes = float(out) * float(out) * 4.0

        efficiency = coalescing_efficiency(gpu, bx)
        efficiency *= read_only_cache_factor(gpu, read_only)
        efficiency /= bank_conflict_factor(gpu, bx, use_padding)
        return MemoryTraffic(read_bytes=reads, write_bytes=writes,
                             efficiency=min(efficiency, 1.0))

    # ----------------------------------------------------------- compute efficiency

    def compute_efficiency(self, config: Mapping[str, Any], gpu: GPUSpec,
                           occupancy: OccupancyResult) -> float:
        bx = int(config["block_size_x"])
        by = int(config["block_size_y"])
        tx = int(config["tile_size_x"])
        ty = int(config["tile_size_y"])
        use_padding = bool(int(config["use_padding"]))

        base = 0.52
        # Per-thread output tiles create register-level reuse of the filter and image
        # rows; the sweet spot is architecture dependent (larger on Ampere) and the
        # penalty on either side is steep -- small tiles waste the filter reuse, large
        # tiles thrash registers.  Together with the aspect-ratio and coalescing
        # requirements this makes the well-performing region a small corner of the
        # space, which is why the paper finds Convolution the hardest benchmark for
        # random search (Fig. 2d) and the hardest to model (lowest R^2).
        work = tx * ty
        best_work = 16 if gpu.architecture == "Ampere" else 8
        if work <= best_work:
            work_factor = 0.62 + 0.38 * (math.log2(max(work, 1)) / math.log2(best_work))
        else:
            work_factor = max(1.0 - 0.10 * math.log2(work / best_work), 0.7)

        # Wide-and-flat blocks keep warps row-aligned for the shared-memory reads;
        # tall-and-narrow blocks serialise them.  The preferred aspect ratio differs
        # between the families (Ampere's wider L1 sectors reward wider rows).
        best_aspect = 16.0 if gpu.architecture == "Ampere" else 4.0
        aspect = bx / max(by, 1)
        aspect_factor = max(1.0 - 0.07 * abs(math.log2(max(aspect, 1e-3) / best_aspect)), 0.60)

        # The x-tile depth controls how many consecutive pixels a thread loads at once;
        # even values vectorise into float2/float4 accesses.
        vector_factor = 1.04 if tx % 4 == 0 else (1.0 if tx % 2 == 0 else 0.93)

        # Shared-memory bank conflicts also slow the compute phase of the inner loop.
        conflict = bank_conflict_factor(gpu, bx, use_padding)

        return base * work_factor * aspect_factor * vector_factor / conflict


def _reference(config: Mapping[str, Any], rng, image_size: int = 96, filter_size: int = 9,
               **kwargs: Any):
    """Reference driver bound to the benchmark (small default size for tests)."""
    return convolution_reference.run(config, rng, image_size=image_size,
                                     filter_size=filter_size, **kwargs)


def create_benchmark(image_size: int = 4096, filter_size: int = 17) -> KernelBenchmark:
    """Create the Convolution benchmark (paper-scale default: 4096^2 image, 17x17 filter)."""
    space = SearchSpace(PARAMETERS, CONSTRAINTS, name="convolution")
    workload = Workload(
        name=f"{image_size}x{image_size}_f{filter_size}",
        sizes={"image_size": image_size, "filter_size": filter_size},
        description="Dense 2D convolution with adaptive tiling (van Werkhoven et al.)",
    )
    model = ConvolutionModel(image_size, filter_size)
    return KernelBenchmark(
        name="convolution",
        display_name="Convolution",
        space=space,
        model=model,
        workload=workload,
        reference=_reference,
        description="2D image convolution with shared-memory tiling",
        application_domain="image processing / machine learning",
        origin="van Werkhoven et al. GPU convolution library",
        paper_table="Table V",
    )
