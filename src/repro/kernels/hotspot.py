"""Hotspot benchmark (paper Sec. IV-C, Table III).

Thermal simulation of a processor die: an iterative 5-point stencil over a 2D grid of
temperatures driven by per-cell power dissipation.  BAT's version is a from-scratch
reimplementation of the Rodinia kernel that can use any thread-block shape, any amount
of work per thread (``tile_size_x/y``) and -- crucially -- *temporal tiling*
(``temporal_tiling_factor``): one kernel launch advances the stencil several time steps
by keeping an enlarged halo in shared memory, trading redundant computation for a large
reduction in DRAM traffic.

Temporal tiling is what produces the paper's most striking result for this benchmark:
the best configurations are an order of magnitude (11--12x) faster than the median,
because the kernel is memory-bound and a working temporal tile slashes traffic by the
tiling factor, while most of the search space either does not use temporal tiling or
overflows shared memory with it.  The same mechanism produces the dense cluster of
highly-performing configurations that lets random search converge quickly (Fig. 2b).
"""

from __future__ import annotations

import math
from typing import Any, Mapping

from repro.core.constraints import ConstraintSet
from repro.core.parameter import Parameter
from repro.core.searchspace import SearchSpace
from repro.gpus.memory import MemoryTraffic, coalescing_efficiency
from repro.gpus.occupancy import OccupancyResult
from repro.gpus.perfmodel import AnalyticalKernelModel, KernelLaunchConfig, ilp_factor
from repro.gpus.specs import GPUSpec
from repro.kernels.base import KernelBenchmark, Workload
from repro.kernels.reference import hotspot_reference

__all__ = ["HotspotModel", "create_benchmark", "PARAMETERS", "CONSTRAINTS"]

#: Thread-block x sizes: {1, 2, 4, 8, 16} plus every multiple of 32 up to 1024
#: (37 values, matching the count in Table III).
_BLOCK_SIZE_X = (1, 2, 4, 8, 16) + tuple(range(32, 1025, 32))

#: Tunable parameters exactly as listed in Table III of the paper.
PARAMETERS: tuple[Parameter, ...] = (
    Parameter("block_size_x", _BLOCK_SIZE_X, default=32,
              description="thread block dimension x"),
    Parameter("block_size_y", (1, 2, 4, 8, 16, 32), default=8,
              description="thread block dimension y"),
    Parameter("tile_size_x", tuple(range(1, 11)), description="outputs per thread in x"),
    Parameter("tile_size_y", tuple(range(1, 11)), description="outputs per thread in y"),
    Parameter("temporal_tiling_factor", tuple(range(1, 11)),
              description="stencil iterations fused into one kernel launch"),
    Parameter("loop_unroll_factor_t", tuple(range(1, 11)),
              description="unroll factor of the fused time loop"),
    Parameter("sh_power", (0, 1), description="cache the power input in shared memory"),
    Parameter("blocks_per_sm", (0, 1, 2, 3, 4),
              description="__launch_bounds__ occupancy hint (0 = none)"),
)

#: Constraints from the kernel's launch rules: between 32 and 1024 threads per block,
#: and the time-loop unroll factor must divide the temporal tiling factor.
CONSTRAINTS = ConstraintSet([
    "block_size_x * block_size_y >= 32",
    "block_size_x * block_size_y <= 1024",
    "temporal_tiling_factor % loop_unroll_factor_t == 0",
])


class HotspotModel(AnalyticalKernelModel):
    """Analytical performance model of the Hotspot stencil kernel."""

    #: Floating-point operations per cell per stencil step.
    FLOPS_PER_CELL = 15.0

    def __init__(self, grid_size: int, total_iterations: int):
        super().__init__("hotspot", occupancy_saturation=0.25, noise_sigma=0.018)
        self.grid_size = int(grid_size)
        self.total_iterations = int(total_iterations)

    # ------------------------------------------------------------------- helpers

    @staticmethod
    def _tile_shape(config: Mapping[str, Any]) -> tuple[int, int, int]:
        bx = int(config["block_size_x"])
        by = int(config["block_size_y"])
        tx = int(config["tile_size_x"])
        ty = int(config["tile_size_y"])
        ttf = int(config["temporal_tiling_factor"])
        return bx * tx, by * ty, ttf

    # ---------------------------------------------------------------- launch shape

    def launch_config(self, config: Mapping[str, Any], gpu: GPUSpec) -> KernelLaunchConfig:
        bx = int(config["block_size_x"])
        by = int(config["block_size_y"])
        tx = int(config["tile_size_x"])
        ty = int(config["tile_size_y"])
        ttf = int(config["temporal_tiling_factor"])
        unroll_t = int(config["loop_unroll_factor_t"])
        sh_power = int(config["sh_power"])
        bpsm = int(config["blocks_per_sm"])

        tile_x, tile_y, _ = self._tile_shape(config)
        grid = math.ceil(self.grid_size / tile_x) * math.ceil(self.grid_size / tile_y)
        launches = math.ceil(self.total_iterations / ttf)

        # Shared memory holds the temperature tile including the temporal halo
        # (updated in place between fused steps) and optionally the power tile.
        halo = 2 * ttf
        smem_elems = (tile_x + halo) * (tile_y + halo)
        shared_bytes = float(smem_elems * 4 * (1 + sh_power))

        # Registers grow with per-thread outputs and with the unrolled time loop.
        registers = 18 + 2.2 * tx * ty + 1.2 * unroll_t + 1.0 * ttf

        # The launch-bounds hint caps resident blocks but lets the compiler cut
        # register usage in exchange.
        if bpsm > 0:
            registers = min(registers, gpu.registers_per_sm / (bpsm * bx * by))

        return KernelLaunchConfig(
            threads_per_block=bx * by,
            grid_blocks=grid,
            registers_per_thread=registers,
            shared_mem_bytes=shared_bytes,
            blocks_per_sm_hint=bpsm,
            launches=launches,
        )

    # -------------------------------------------------------------------- work

    def flops(self, config: Mapping[str, Any], gpu: GPUSpec) -> float:
        tile_x, tile_y, ttf = self._tile_shape(config)
        # Temporal tiling recomputes the halo: each fused step processes a tile grown
        # by the remaining halo, so redundant work rises with the tiling factor.
        redundancy = ((tile_x + ttf) * (tile_y + ttf)) / float(tile_x * tile_y)
        cells = float(self.grid_size) * float(self.grid_size)
        return cells * self.total_iterations * self.FLOPS_PER_CELL * redundancy

    def traffic(self, config: Mapping[str, Any], gpu: GPUSpec) -> MemoryTraffic:
        bx = int(config["block_size_x"])
        tile_x, tile_y, ttf = self._tile_shape(config)
        sh_power = int(config["sh_power"])

        cells = float(self.grid_size) * float(self.grid_size)
        launches = math.ceil(self.total_iterations / ttf)
        halo = 2 * ttf
        halo_overhead = ((tile_x + halo) * (tile_y + halo)) / float(tile_x * tile_y)

        # Per launch: read temperature + power (with halo), write temperature.  Without
        # the shared-memory power cache the power grid is re-fetched on every fused
        # time step instead of once per launch.
        power_factor = 1.0 if sh_power else 1.3
        reads = launches * cells * 4.0 * halo_overhead * (1.0 + power_factor)
        writes = launches * cells * 4.0

        efficiency = coalescing_efficiency(gpu, bx)
        return MemoryTraffic(read_bytes=reads, write_bytes=writes, efficiency=efficiency)

    # ----------------------------------------------------------- compute efficiency

    def compute_efficiency(self, config: Mapping[str, Any], gpu: GPUSpec,
                           occupancy: OccupancyResult) -> float:
        tx = int(config["tile_size_x"])
        ty = int(config["tile_size_y"])
        unroll_t = int(config["loop_unroll_factor_t"])
        bx = int(config["block_size_x"])

        base = 0.45  # stencil arithmetic with neighbour shuffles sustains less of peak
        ilp = ilp_factor(unroll_t, 4 if gpu.architecture == "Turing" else 8)
        work_per_thread = 1.0 + 0.04 * math.log2(max(tx * ty, 1))
        # Very narrow blocks in x serialise the shared-memory accesses.
        narrow_penalty = 1.0 if bx >= 16 else 0.75
        return base * ilp * work_per_thread * narrow_penalty


def _reference(config: Mapping[str, Any], rng, grid_size: int = 48, iterations: int = 8,
               **kwargs: Any):
    """Reference driver bound to the benchmark (small default size for tests)."""
    return hotspot_reference.run(config, rng, grid_size=grid_size, iterations=iterations,
                                 **kwargs)


def create_benchmark(grid_size: int = 4096, total_iterations: int = 60) -> KernelBenchmark:
    """Create the Hotspot benchmark instance (paper-scale default: 4096^2 grid, 60 steps)."""
    space = SearchSpace(PARAMETERS, CONSTRAINTS, name="hotspot")
    workload = Workload(
        name=f"{grid_size}x{grid_size}_{total_iterations}iters",
        sizes={"grid_size": grid_size, "total_iterations": total_iterations},
        description="Processor thermal simulation (Rodinia Hotspot, reimplemented)",
    )
    model = HotspotModel(grid_size, total_iterations)
    return KernelBenchmark(
        name="hotspot",
        display_name="Hotspot",
        space=space,
        model=model,
        workload=workload,
        reference=_reference,
        description="Iterative 5-point thermal stencil with temporal tiling",
        application_domain="thermal modeling",
        origin="Rodinia benchmark suite (re-implemented for tunability)",
        paper_table="Table III",
    )
