"""The seven BAT 2.0 tunable kernel benchmarks.

Each benchmark module defines:

* the tunable-parameter table exactly as printed in the paper (Tables I--VII);
* the static constraints that make a configuration compilable;
* an analytical performance model (subclass of
  :class:`repro.gpus.perfmodel.AnalyticalKernelModel`) standing in for hardware
  measurements;
* a NumPy functional reference implementation of the computation, used to verify the
  autotuning invariant that every configuration computes the same answer.

Use :func:`all_benchmarks` to obtain the full suite keyed by canonical name, or import
the individual ``create_benchmark`` factories.  Beyond the seven paper kernels,
:mod:`repro.kernels.synthetic` generates parametric scenario families (separable /
coupled value surfaces, seeded spaces, deterministic failure models) that plug into
the open registry of :mod:`repro.core.registry` as picklable
``"repro.kernels.synthetic:create_benchmark"`` specs.
"""

from __future__ import annotations


from repro.kernels.base import KernelBenchmark, Workload

__all__ = ["KernelBenchmark", "Workload", "all_benchmarks", "BENCHMARK_NAMES"]

#: Canonical benchmark names in the order the paper introduces them (Sec. IV).
BENCHMARK_NAMES: tuple[str, ...] = (
    "gemm",
    "nbody",
    "hotspot",
    "pnpoly",
    "convolution",
    "expdist",
    "dedispersion",
)


def all_benchmarks(**overrides) -> dict[str, KernelBenchmark]:
    """Instantiate the full benchmark suite.

    Keyword overrides of the form ``gemm={"matrix_size": 1024}`` are forwarded to the
    matching benchmark factory, which lets tests and examples shrink the simulated
    workloads without touching the search spaces.
    """
    from repro.kernels.gemm import create_benchmark as gemm
    from repro.kernels.nbody import create_benchmark as nbody
    from repro.kernels.hotspot import create_benchmark as hotspot
    from repro.kernels.pnpoly import create_benchmark as pnpoly
    from repro.kernels.convolution import create_benchmark as convolution
    from repro.kernels.expdist import create_benchmark as expdist
    from repro.kernels.dedispersion import create_benchmark as dedispersion

    factories = {
        "gemm": gemm,
        "nbody": nbody,
        "hotspot": hotspot,
        "pnpoly": pnpoly,
        "convolution": convolution,
        "expdist": expdist,
        "dedispersion": dedispersion,
    }
    return {name: factory(**overrides.get(name, {})) for name, factory in factories.items()}
