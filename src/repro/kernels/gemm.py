"""GEMM benchmark (paper Sec. IV-A, Table I).

Generalized dense matrix-matrix multiplication ``C = alpha * A @ B + beta * C`` using
the tunable CLBlast kernel structure: the output is partitioned into ``MWG x NWG``
workgroup tiles computed by ``MDIMC x NDIMC`` threads, ``MDIMA``/``NDIMB`` re-shape the
cooperative loading of the A/B panels, ``VWM``/``VWN`` are the global-memory vector
widths, and ``SA``/``SB`` toggle staging of the A/B panels in shared memory.

The constraint set follows the CLBlast kernel's divisibility rules restricted to the
parameters that BAT exposes (the reduction-tile size ``KWG`` is fixed at 32 in BAT, so
rules involving it become constants checked against that value).
"""

from __future__ import annotations

import math
from typing import Any, Mapping

from repro.core.constraints import ConstraintSet
from repro.core.parameter import Parameter
from repro.core.searchspace import SearchSpace
from repro.gpus.memory import MemoryTraffic, vector_access_efficiency
from repro.gpus.occupancy import OccupancyResult
from repro.gpus.perfmodel import AnalyticalKernelModel, KernelLaunchConfig
from repro.gpus.specs import GPUSpec
from repro.kernels.base import KernelBenchmark, Workload
from repro.kernels.reference import gemm_reference

__all__ = ["GemmModel", "create_benchmark", "PARAMETERS", "CONSTRAINTS", "KWG"]

#: Fixed reduction-dimension tile of the BAT GEMM kernel.
KWG = 32

#: Tunable parameters exactly as listed in Table I of the paper.
PARAMETERS: tuple[Parameter, ...] = (
    Parameter("MWG", (16, 32, 64, 128), description="work-group tile size in M"),
    Parameter("NWG", (16, 32, 64, 128), description="work-group tile size in N"),
    Parameter("MDIMC", (8, 16, 32), description="threads per work-group in M"),
    Parameter("NDIMC", (8, 16, 32), description="threads per work-group in N"),
    Parameter("MDIMA", (8, 16, 32), description="re-shaped tile dimension for loading A"),
    Parameter("NDIMB", (8, 16, 32), description="re-shaped tile dimension for loading B"),
    Parameter("VWM", (1, 2, 4, 8), description="vector width for loading/storing M-direction"),
    Parameter("VWN", (1, 2, 4, 8), description="vector width for loading/storing N-direction"),
    Parameter("SA", (0, 1), description="stage A tiles in shared memory"),
    Parameter("SB", (0, 1), description="stage B tiles in shared memory"),
)

#: CLBlast divisibility constraints restricted to BAT's parameter set.
CONSTRAINTS = ConstraintSet([
    "MWG % (MDIMC * VWM) == 0",
    "NWG % (NDIMC * VWN) == 0",
    "MWG % (MDIMA * VWM) == 0",
    "NWG % (NDIMB * VWN) == 0",
    f"{KWG} % ((MDIMC * NDIMC) // MDIMA) == 0",
    f"{KWG} % ((MDIMC * NDIMC) // NDIMB) == 0",
    "MDIMC * NDIMC <= 1024",
])


class GemmModel(AnalyticalKernelModel):
    """Analytical performance model of the CLBlast GEMM kernel.

    GEMM at 4096^3 is compute-bound on every GPU of the testbed, so the dominant
    effects are (i) per-thread register tiling (``MWG/MDIMC x NWG/NDIMC`` accumulators
    give instruction-level parallelism until register pressure kills occupancy) and
    (ii) how much global traffic the A/B panel reuse removes (``NWG``/``MWG`` and the
    shared-memory switches).  The loader re-shaping parameters ``MDIMA``/``NDIMB``
    only perturb load efficiency slightly, which is why the paper's Fig. 6a shows them
    with near-zero importance.
    """

    def __init__(self, m: int, n: int, k: int):
        super().__init__("gemm", occupancy_saturation=0.30, noise_sigma=0.012)
        self.m = int(m)
        self.n = int(n)
        self.k = int(k)

    # ---------------------------------------------------------------- launch shape

    def launch_config(self, config: Mapping[str, Any], gpu: GPUSpec) -> KernelLaunchConfig:
        mwg, nwg = int(config["MWG"]), int(config["NWG"])
        mdimc, ndimc = int(config["MDIMC"]), int(config["NDIMC"])
        vwm, vwn = int(config["VWM"]), int(config["VWN"])
        sa, sb = int(config["SA"]), int(config["SB"])

        threads = mdimc * ndimc
        grid = math.ceil(self.m / mwg) * math.ceil(self.n / nwg)

        mwi = max(mwg // mdimc, 1)           # per-thread tile in M
        nwi = max(nwg // ndimc, 1)           # per-thread tile in N
        # Accumulators plus operand registers plus addressing/loop state.
        registers = 24 + mwi * nwi + 2.0 * (mwi + nwi) + 1.5 * (vwm + vwn)
        shared_bytes = float((sa * mwg * KWG + sb * nwg * KWG) * 4)

        return KernelLaunchConfig(
            threads_per_block=threads,
            grid_blocks=grid,
            registers_per_thread=registers,
            shared_mem_bytes=shared_bytes,
            blocks_per_sm_hint=0,
            launches=1,
        )

    # -------------------------------------------------------------------- work

    def flops(self, config: Mapping[str, Any], gpu: GPUSpec) -> float:
        return 2.0 * self.m * self.n * self.k

    def traffic(self, config: Mapping[str, Any], gpu: GPUSpec) -> MemoryTraffic:
        mwg, nwg = int(config["MWG"]), int(config["NWG"])
        vwm, vwn = int(config["VWM"]), int(config["VWN"])
        sa, sb = int(config["SA"]), int(config["SB"])

        # Each workgroup column re-reads the A panel; staging in shared memory reads it
        # exactly once per workgroup, without staging the hardware caches absorb part of
        # the re-reads but not all of them.  The 0.55 factor accounts for L2 capturing
        # re-reads between neighbouring workgroups of the same wave.
        reads_a = 0.75 * self.m * self.k * 4.0 * (self.n / nwg) * (1.0 if sa else 1.45)
        reads_b = 0.75 * self.k * self.n * 4.0 * (self.m / mwg) * (1.0 if sb else 1.45)
        writes_c = self.m * self.n * 4.0

        efficiency = 0.5 * (vector_access_efficiency(gpu, vwm)
                            + vector_access_efficiency(gpu, vwn))
        return MemoryTraffic(read_bytes=reads_a + reads_b, write_bytes=writes_c,
                             efficiency=efficiency)

    # ----------------------------------------------------------- compute efficiency

    def compute_efficiency(self, config: Mapping[str, Any], gpu: GPUSpec,
                           occupancy: OccupancyResult) -> float:
        mwg, nwg = int(config["MWG"]), int(config["NWG"])
        mdimc, ndimc = int(config["MDIMC"]), int(config["NDIMC"])
        mdima, ndimb = int(config["MDIMA"]), int(config["NDIMB"])
        mwi = max(mwg // mdimc, 1)
        nwi = max(nwg // ndimc, 1)

        # Register-tile ILP: the per-thread tile size controls how many FMAs each load
        # amortises, which is THE first-order effect in register-blocked GEMM -- a
        # 2x2 tile cannot come close to peak while an 8x8 tile can.  Ampere's dual
        # FP32 pipes want a larger tile than Turing, which shifts the optimum between
        # families.  The steep curve makes the top of the space a narrow corner (the
        # paper's Fig. 2a needs hundreds of random evaluations to reach 90%).
        best_tile = 64 if gpu.architecture == "Ampere" else 32
        work = mwi * nwi
        if work <= best_tile:
            tile_factor = min(max((work / best_tile) ** 0.55, 0.15), 1.0)
        else:
            tile_factor = max(1.0 - 0.05 * math.log2(work / best_tile), 0.8)

        # The per-thread tile should be roughly square: a skewed tile starves one of
        # the FMA operand pipes and wastes register bandwidth.
        skew = max(mwi, nwi) / max(min(mwi, nwi), 1)
        skew_factor = 1.0 / (1.0 + 0.06 * math.log2(skew)) if skew > 1 else 1.0

        # FMA-dominated inner loop sustains a high fraction of peak.
        base = 0.78

        # Staging the operand panels in shared memory keeps the inner loop free of
        # global-memory instructions; without it the FMA pipes stall on loads.
        sa, sb = int(config["SA"]), int(config["SB"])
        staging_factor = {0: 0.85, 1: 0.93, 2: 1.0}[sa + sb]

        # Wider vector accesses cut the number of load instructions competing with the
        # FMAs for issue slots; the benefit saturates at the device's preferred width.
        vwm, vwn = int(config["VWM"]), int(config["VWN"])
        vector_factor = 0.90 + 0.05 * min(math.log2(vwm * vwn) / 2.0, 2.0)

        # Loader re-shaping: a mismatch between the compute grid and the load grid
        # costs a few percent (this is deliberately a small effect, matching Fig. 6a).
        loader = 1.0
        if mdima != mdimc:
            loader *= 0.985
        if ndimb != ndimc:
            loader *= 0.985

        return base * tile_factor * skew_factor * staging_factor * vector_factor * loader


def _reference(config: Mapping[str, Any], rng, matrix_size: int = 96, **kwargs: Any):
    """Reference driver bound to the benchmark (small default size for tests)."""
    return gemm_reference.run(config, rng, matrix_size=matrix_size, **kwargs)


def create_benchmark(matrix_size: int = 4096) -> KernelBenchmark:
    """Create the GEMM benchmark instance.

    Parameters
    ----------
    matrix_size:
        Square matrix dimension used by the performance model (the paper tunes a
        4096^3 problem); the functional reference always runs on small matrices.
    """
    space = SearchSpace(PARAMETERS, CONSTRAINTS, name="gemm")
    workload = Workload(
        name=f"{matrix_size}x{matrix_size}x{matrix_size}",
        sizes={"m": matrix_size, "n": matrix_size, "k": matrix_size},
        description="Square single-precision GEMM, the CLBlast tunable kernel",
    )
    model = GemmModel(matrix_size, matrix_size, matrix_size)
    return KernelBenchmark(
        name="gemm",
        display_name="GEMM",
        space=space,
        model=model,
        workload=workload,
        reference=_reference,
        description="Generalized dense matrix-matrix multiplication from CLBlast",
        application_domain="linear algebra / machine learning",
        origin="CLBlast (Nugteren, 2018)",
        paper_table="Table I",
    )
