"""Kernel-benchmark base class: the "kernel handler" of the shared problem interface.

A :class:`KernelBenchmark` couples together everything the suite knows about one
tunable kernel -- its parameter table, its constraints, its workload, its analytical
performance model and its functional reference implementation -- and can mint
:class:`~repro.core.problem.TuningProblem` instances for any simulated GPU.  This is
the class a new benchmark has to provide to join the suite, mirroring the paper's
"kernel handler classes providing for easy integration".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from repro.core.cache import EvaluationCache
from repro.core.errors import ResourceLimitError
from repro.core.problem import TuningProblem
from repro.core.searchspace import SearchSpace
from repro.gpus.perfmodel import AnalyticalKernelModel, ModelEstimate
from repro.gpus.specs import GPUSpec

__all__ = ["Workload", "KernelBenchmark"]


@dataclass(frozen=True)
class Workload:
    """Problem-size description of a benchmark instance.

    Attributes
    ----------
    name:
        Short label (e.g. ``"4096x4096"``).
    sizes:
        Dictionary of the size quantities the model and the reference implementation
        need (e.g. ``{"m": 4096, "n": 4096, "k": 4096}``).
    description:
        Human-readable origin of the workload (e.g. "ARTS survey parameters on the
        Apertif telescope", mirroring Sec. IV-G of the paper).
    """

    name: str
    sizes: dict[str, Any] = field(default_factory=dict)
    description: str = ""

    def __getitem__(self, key: str) -> Any:
        return self.sizes[key]

    def get(self, key: str, default: Any = None) -> Any:
        """Dictionary-style access with default."""
        return self.sizes.get(key, default)


class KernelBenchmark:
    """One tunable kernel benchmark of the suite.

    Parameters
    ----------
    name:
        Canonical lowercase name (``"gemm"``, ``"hotspot"``, ...).
    display_name:
        Name as printed in the paper's tables and figures.
    space:
        The constrained search space (Tables I--VII).
    model:
        Analytical performance model producing simulated runtimes.
    workload:
        Problem sizes the model is evaluated with.
    reference:
        Optional callable ``reference(config, rng, **sizes)`` running the NumPy
        functional implementation on a (small) instance and returning its output
        array; used by correctness tests and examples, never by the tuning loop.
    description / application_domain / origin:
        Documentation strings mirrored from Sec. IV of the paper.
    paper_table:
        Which paper table defines the parameter list (e.g. ``"Table I"``).
    """

    def __init__(self, name: str, display_name: str, space: SearchSpace,
                 model: AnalyticalKernelModel, workload: Workload,
                 reference: Callable[..., np.ndarray] | None = None,
                 description: str = "", application_domain: str = "",
                 origin: str = "", paper_table: str = ""):
        self.name = name
        self.display_name = display_name
        self.space = space
        self.model = model
        self.workload = workload
        self.reference = reference
        self.description = description
        self.application_domain = application_domain
        self.origin = origin
        self.paper_table = paper_table

    # ------------------------------------------------------------------ problems

    def problem(self, gpu: GPUSpec, with_noise: bool = True,
                memoize: bool = True) -> TuningProblem:
        """A tuning problem for this benchmark on ``gpu``.

        The objective function calls the analytical model; configurations that cannot
        launch on the device raise :class:`ResourceLimitError` inside the model and
        are turned into invalid observations by the problem.
        """
        def _evaluate(config: Mapping[str, Any]) -> float:
            return self.model.time_ms(config, gpu, with_noise=with_noise)

        return TuningProblem(name=self.name, space=self.space, evaluate_fn=_evaluate,
                             gpu=gpu.name, memoize=memoize)

    # ------------------------------------------------------------------- validity

    def is_valid_on(self, config: Mapping[str, Any], gpu: GPUSpec) -> bool:
        """Static constraints plus device-launch feasibility (Table VIII 'Valid')."""
        if not self.space.is_valid(config):
            return False
        try:
            self.model.occupancy(config, gpu)
        except ResourceLimitError:
            return False
        return True

    def count_valid(self, gpu: GPUSpec, limit: int | None = 200_000,
                    seed: int = 99) -> int:
        """Number (or sampled estimate) of configurations valid on ``gpu``.

        For spaces small enough to enumerate (``cardinality <= limit``) the count is
        exact; otherwise it is estimated from ``limit`` uniform samples of the raw
        Cartesian product, matching how the paper leaves the huge spaces as "N/A" or
        estimates them.
        """
        def _count_launchable(configs: Sequence[Mapping[str, Any]]) -> int:
            count = 0
            for config in configs:
                try:
                    self.model.occupancy(config, gpu)
                except ResourceLimitError:
                    continue
                count += 1
            return count

        space = self.space
        if limit is None or space.cardinality <= limit:
            # Static constraints are resolved by the vectorized mask (via the
            # feasible-index blocks); only the survivors pay the per-config
            # occupancy-model call.
            return sum(_count_launchable(space.configs_at(block))
                       for block in space.enumerate_chunked(valid_only=True))
        rng = np.random.default_rng(seed)
        idx = rng.integers(0, space.cardinality, size=limit)
        feasible = idx[space.satisfied_mask(idx)]
        hits = _count_launchable(space.configs_at(feasible))
        return int(round(space.cardinality * hits / limit))

    # ---------------------------------------------------------------- measurements

    def measure(self, config: Mapping[str, Any], gpu: GPUSpec,
                with_noise: bool = True) -> ModelEstimate:
        """Full model estimate (time plus breakdown) of one configuration."""
        return self.model.estimate(config, gpu, with_noise=with_noise)

    def evaluate_batch(self, gpu: GPUSpec, configs: Sequence[Mapping[str, Any]],
                       with_noise: bool = True) -> list[tuple[float, bool, str]]:
        """Evaluate many configurations and return ``(value, valid, error)`` rows.

        This is the batched kernel-model call shared by :meth:`build_cache` and the
        shard workers of :mod:`repro.exec`: configurations that cannot launch on the
        device become ``(inf, False, reason)`` rows, exactly the shape
        :meth:`~repro.core.cache.EvaluationCache.add` stores.  Keeping the loop (and
        in particular the error strings) in one place is what makes parallel shard
        evaluation byte-identical to the serial path.
        """
        rows: list[tuple[float, bool, str]] = []
        for config in configs:
            try:
                rows.append((self.model.time_ms(config, gpu, with_noise=with_noise),
                             True, ""))
            except ResourceLimitError as exc:
                rows.append((float("inf"), False, str(exc)))
        return rows

    def new_cache(self, gpu: GPUSpec, sample_size: int | None = None) -> EvaluationCache:
        """An empty campaign cache with the canonical metadata for this benchmark.

        Both :meth:`build_cache` and the shard-merge step of :mod:`repro.exec` create
        their caches here so the metadata layout (and therefore the serialized bytes)
        cannot drift apart.
        """
        cache = EvaluationCache(self.name, gpu.name, self.space,
                                exhaustive=sample_size is None)
        cache.metadata["workload"] = dict(self.workload.sizes)
        cache.metadata["sample_size"] = sample_size
        return cache

    def build_cache(self, gpu: GPUSpec, sample_size: int | None = None,
                    seed: int = 0, with_noise: bool = True) -> EvaluationCache:
        """Evaluate the benchmark on ``gpu`` and return the campaign cache.

        Parameters
        ----------
        sample_size:
            If None the whole valid space is enumerated (the paper does this for
            Pnpoly, Nbody, GEMM and Convolution); otherwise ``sample_size`` unique
            random configurations are drawn (the paper uses 10 000 for Hotspot,
            Dedispersion and Expdist).
        """
        cache = self.new_cache(gpu, sample_size=sample_size)
        if sample_size is None:
            # Prime the feasible-index memo (free below the memoization threshold):
            # enumeration then slices the cached array, and any later constrained
            # count or sample on the same space reuses it.
            self.space.feasible_indices()
            configs: Sequence[Mapping[str, Any]] = list(self.space.enumerate(valid_only=True))
        else:
            configs = self.space.sample(sample_size, rng=seed, valid_only=True, unique=True)
        for config, (value, valid, error) in zip(configs,
                                                 self.evaluate_batch(gpu, configs,
                                                                     with_noise=with_noise)):
            cache.add(config, value, valid=valid, error=error)
        return cache

    # ------------------------------------------------------------------ reference

    def run_reference(self, config: Mapping[str, Any], rng: np.random.Generator | int = 0,
                      **size_overrides: Any) -> np.ndarray:
        """Run the NumPy functional reference implementation for ``config``.

        Sizes default to small, test-friendly values chosen by each benchmark module;
        callers may override them (e.g. ``matrix_size=64``).  Returns the output array
        so tests can assert that every configuration computes the same result.
        """
        if self.reference is None:
            raise NotImplementedError(f"benchmark {self.name!r} has no reference implementation")
        rng = np.random.default_rng(rng) if not isinstance(rng, np.random.Generator) else rng
        return self.reference(config, rng, **size_overrides)

    # ------------------------------------------------------------------- reporting

    def parameter_table(self) -> list[dict[str, Any]]:
        """Rows of the paper's parameter table: name, allowed values and count."""
        return [
            {"parameter": p.name, "values": list(p.values), "count": p.cardinality}
            for p in self.space.parameters
        ]

    def summary(self) -> dict[str, Any]:
        """Compact description used by reports and the quickstart example."""
        return {
            "name": self.name,
            "display_name": self.display_name,
            "paper_table": self.paper_table,
            "application_domain": self.application_domain,
            "dimensions": self.space.dimensions,
            "cardinality": self.space.cardinality,
            "workload": dict(self.workload.sizes),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"KernelBenchmark(name={self.name!r}, dimensions={self.space.dimensions}, "
                f"cardinality={self.space.cardinality})")
