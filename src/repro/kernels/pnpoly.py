"""Pnpoly benchmark (paper Sec. IV-D, Table IV).

Point-in-polygon classification of a massive LiDAR point cloud against a query polygon,
the GPU kernel of a geospatial database operator (Goncalves et al.).  Each thread
classifies ``tile_size`` points with the crossing-number algorithm; the
``between_method`` and ``use_method`` parameters select between algebraically
equivalent formulations of the edge-straddling test and of the parity accumulation,
which differ in branch divergence and instruction mix.

The search space is the smallest in the suite (4 092 configurations, no static
constraints -- Table VIII lists Cardinality == Constrained), which is why the paper can
afford exhaustive evaluation and the fitness-flow-graph centrality analysis for it.
"""

from __future__ import annotations

import math
from typing import Any, Mapping

from repro.core.constraints import ConstraintSet
from repro.core.parameter import Parameter
from repro.core.searchspace import SearchSpace
from repro.gpus.memory import MemoryTraffic
from repro.gpus.occupancy import OccupancyResult
from repro.gpus.perfmodel import AnalyticalKernelModel, KernelLaunchConfig
from repro.gpus.specs import GPUSpec
from repro.kernels.base import KernelBenchmark, Workload
from repro.kernels.reference import pnpoly_reference

__all__ = ["PnpolyModel", "create_benchmark", "PARAMETERS", "CONSTRAINTS"]

#: Thread-block x sizes: multiples of 32 (31 values, matching the count in Table IV).
_BLOCK_SIZE_X = tuple(range(32, 32 * 32, 32))

#: Per-thread tile sizes: 1 plus the even numbers 2..20 (11 values).
_TILE_SIZE = (1,) + tuple(range(2, 21, 2))

#: Tunable parameters exactly as listed in Table IV of the paper.
PARAMETERS: tuple[Parameter, ...] = (
    Parameter("block_size_x", _BLOCK_SIZE_X, default=256, description="threads per block"),
    Parameter("tile_size", _TILE_SIZE, description="points processed per thread"),
    Parameter("between_method", (0, 1, 2, 3),
              description="algorithm variant of the edge-straddling test"),
    Parameter("use_method", (0, 1, 2),
              description="algorithm variant of the inside/outside accumulation"),
)

#: The Pnpoly kernel has no static constraints (Table VIII: Constrained == Cardinality).
CONSTRAINTS = ConstraintSet([])


class PnpolyModel(AnalyticalKernelModel):
    """Analytical performance model of the point-in-polygon kernel.

    The kernel loops over all polygon vertices for every point, so it is compute-bound
    with a heavily branch-dependent inner loop.  The method selectors change the
    branch-divergence behaviour, and they interact with the architecture family:
    Turing's independent integer pipe favours the predicated/bitwise variants less
    than Ampere does, which is one of the effects behind the poor cross-family
    portability the paper reports for this benchmark (Fig. 5b).
    """

    #: Floating-point/integer operations per point-vertex test.
    OPS_PER_EDGE = 9.0

    def __init__(self, num_points: int, num_vertices: int):
        super().__init__("pnpoly", occupancy_saturation=0.85, noise_sigma=0.015)
        self.num_points = int(num_points)
        self.num_vertices = int(num_vertices)

    # ---------------------------------------------------------------- launch shape

    def launch_config(self, config: Mapping[str, Any], gpu: GPUSpec) -> KernelLaunchConfig:
        block = int(config["block_size_x"])
        tile = int(config["tile_size"])
        use_method = int(config["use_method"])

        grid = math.ceil(self.num_points / (block * tile))
        # Each in-flight point needs its coordinates and a parity/crossing register;
        # the counting variant (use_method == 1) keeps an extra integer alive.
        registers = 20 + 2.4 * tile + (2.0 if use_method == 1 else 0.0)
        # The polygon vertices are staged once per block in shared memory.
        shared_bytes = float(self.num_vertices * 2 * 4)

        return KernelLaunchConfig(
            threads_per_block=block,
            grid_blocks=grid,
            registers_per_thread=registers,
            shared_mem_bytes=shared_bytes,
            launches=1,
        )

    # -------------------------------------------------------------------- work

    def flops(self, config: Mapping[str, Any], gpu: GPUSpec) -> float:
        return self.OPS_PER_EDGE * float(self.num_points) * float(self.num_vertices)

    def traffic(self, config: Mapping[str, Any], gpu: GPUSpec) -> MemoryTraffic:
        # Points are read once (two float coordinates) and a boolean/int result written.
        reads = float(self.num_points) * 8.0 + float(self.num_vertices) * 8.0
        writes = float(self.num_points) * 4.0
        return MemoryTraffic(read_bytes=reads, write_bytes=writes, efficiency=1.0)

    # ----------------------------------------------------------- compute efficiency

    def compute_efficiency(self, config: Mapping[str, Any], gpu: GPUSpec,
                           occupancy: OccupancyResult) -> float:
        tile = int(config["tile_size"])
        between_method = int(config["between_method"])
        use_method = int(config["use_method"])

        base = 0.50

        # Instruction-mix / divergence cost of the edge-straddling variants.  The
        # multiplicative variant (2) is branch-free and maps well onto Ampere's FMA
        # pipes; the comparison variants lean on the integer/predicate path that
        # Turing dedicates more resources to.  The spread between the best and worst
        # variant is substantial (the inner loop is nothing but this test), which is
        # what gives the benchmark its ~1.5x tuning headroom despite having only four
        # parameters.
        if gpu.architecture == "Ampere":
            between_factor = {0: 0.84, 1: 0.78, 2: 1.00, 3: 0.72}[between_method]
            use_factor = {0: 0.95, 1: 0.86, 2: 1.00}[use_method]
        else:
            between_factor = {0: 1.00, 1: 0.92, 2: 0.82, 3: 0.76}[between_method]
            use_factor = {0: 1.00, 1: 0.94, 2: 0.88}[use_method]

        # More points per thread amortise the per-point setup, with a sweet spot that
        # is architecture dependent (deeper batches help Ampere's dual-issue pipes).
        best_tile = 12 if gpu.architecture == "Ampere" else 6
        if tile <= best_tile:
            tile_factor = 0.86 + 0.14 * (math.log2(max(tile, 1)) / math.log2(best_tile))
        else:
            tile_factor = max(1.0 - 0.05 * math.log2(tile / best_tile), 0.85)

        return base * between_factor * use_factor * tile_factor


def _reference(config: Mapping[str, Any], rng, num_points: int = 2048,
               num_vertices: int = 24, **kwargs: Any):
    """Reference driver bound to the benchmark (small default size for tests)."""
    return pnpoly_reference.run(config, rng, num_points=num_points,
                                num_vertices=num_vertices, **kwargs)


def create_benchmark(num_points: int = 20_000_000, num_vertices: int = 600) -> KernelBenchmark:
    """Create the Pnpoly benchmark instance (paper-scale default: 2e7 points, 600 vertices)."""
    space = SearchSpace(PARAMETERS, CONSTRAINTS, name="pnpoly")
    workload = Workload(
        name=f"{num_points}pts_{num_vertices}verts",
        sizes={"num_points": num_points, "num_vertices": num_vertices},
        description="Point-in-polygon query of a LiDAR point cloud (geospatial database operator)",
    )
    model = PnpolyModel(num_points, num_vertices)
    return KernelBenchmark(
        name="pnpoly",
        display_name="PnPoly",
        space=space,
        model=model,
        workload=workload,
        reference=_reference,
        description="Crossing-number point-in-polygon classification",
        application_domain="geospatial information systems",
        origin="Goncalves et al. spatial column-store",
        paper_table="Table IV",
    )
