"""Dedispersion benchmark (paper Sec. IV-G, Table VII).

Brute-force incoherent dedispersion from the AMBER single-pulse search pipeline: for
every trial dispersion measure (DM) the kernel shifts each frequency channel by the
dispersion delay and accumulates it into the output time series.  The workload mirrors
the ARTS survey configuration on the Apertif telescope: a 24.4 kHz sampling rate,
2048 DM trials and 1536 frequency channels.

Each thread processes ``tile_size_x`` time samples for ``tile_size_y`` DM values;
``tile_stride_x``/``tile_stride_y`` choose between consecutive and block-strided
assignment, ``loop_unroll_factor_channel`` partially unrolls the channel loop (any
divisor of the channel count), and ``blocks_per_sm`` is a ``__launch_bounds__`` hint.

The kernel is memory-bandwidth bound: its arithmetic intensity is a single addition per
loaded sample, so the decisive optimisation is reusing each loaded channel sample
across many DM values (the ``tile_size_y`` direction) before it leaves the cache --
which is exactly what the feature-importance analysis of the paper singles out.
"""

from __future__ import annotations

import math
from typing import Any, Mapping

from repro.core.constraints import ConstraintSet
from repro.core.parameter import Parameter
from repro.core.searchspace import SearchSpace
from repro.gpus.memory import MemoryTraffic, coalescing_efficiency
from repro.gpus.occupancy import OccupancyResult
from repro.gpus.perfmodel import AnalyticalKernelModel, KernelLaunchConfig, ilp_factor
from repro.gpus.specs import GPUSpec
from repro.kernels.base import KernelBenchmark, Workload
from repro.kernels.reference import dedispersion_reference

__all__ = ["DedispersionModel", "create_benchmark", "PARAMETERS", "CONSTRAINTS"]

#: Thread-block x sizes: {1, 2, 4, 8} plus multiples of 16 up to 512 (36 values).
_BLOCK_SIZE_X = (1, 2, 4, 8) + tuple(range(16, 513, 16))

#: Thread-block y sizes: multiples of 4 up to 128 (32 values).
_BLOCK_SIZE_Y = tuple(range(4, 129, 4))

#: Channel-loop unroll factors: 0 (compiler decides) plus every divisor of 1536.
_CHANNEL_UNROLL = (0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256, 384,
                   512, 768, 1536)

#: Tunable parameters exactly as listed in Table VII of the paper.
PARAMETERS: tuple[Parameter, ...] = (
    Parameter("block_size_x", _BLOCK_SIZE_X, default=32,
              description="thread block dimension x (time samples)"),
    Parameter("block_size_y", _BLOCK_SIZE_Y, default=4,
              description="thread block dimension y (dispersion measures)"),
    Parameter("tile_size_x", tuple(range(1, 17)), description="samples per thread"),
    Parameter("tile_size_y", tuple(range(1, 17)), description="DMs per thread"),
    Parameter("tile_stride_x", (0, 1), description="consecutive (0) or strided (1) samples"),
    Parameter("tile_stride_y", (0, 1), description="consecutive (0) or strided (1) DMs"),
    Parameter("loop_unroll_factor_channel", _CHANNEL_UNROLL,
              description="partial unroll of the channel loop (divisor of 1536)"),
    Parameter("blocks_per_sm", (0, 1, 2, 3, 4),
              description="__launch_bounds__ occupancy hint (0 = none)"),
)

#: Launch constraint: the CUDA per-block thread limit.
CONSTRAINTS = ConstraintSet([
    "block_size_x * block_size_y <= 1024",
])


class DedispersionModel(AnalyticalKernelModel):
    """Analytical performance model of the AMBER dedispersion kernel."""

    def __init__(self, num_samples: int, num_dms: int, num_channels: int):
        super().__init__("dedispersion", occupancy_saturation=0.50, noise_sigma=0.015)
        self.num_samples = int(num_samples)
        self.num_dms = int(num_dms)
        self.num_channels = int(num_channels)

    # ---------------------------------------------------------------- launch shape

    def launch_config(self, config: Mapping[str, Any], gpu: GPUSpec) -> KernelLaunchConfig:
        bx = int(config["block_size_x"])
        by = int(config["block_size_y"])
        tx = int(config["tile_size_x"])
        ty = int(config["tile_size_y"])
        unroll_c = int(config["loop_unroll_factor_channel"])
        bpsm = int(config["blocks_per_sm"])

        grid = (math.ceil(self.num_samples / (bx * tx))
                * math.ceil(self.num_dms / (by * ty)))

        # Each thread keeps tx * ty running sums plus per-DM delay offsets; channel
        # unrolling keeps several loads in flight.  The compiler keeps the sums in a
        # blocked register tile, so pressure grows sub-linearly with the tile area.
        registers = 20 + 1.0 * tx * ty + 1.0 * ty + 0.04 * max(unroll_c, 1)
        if bpsm > 0:
            registers = min(registers, gpu.registers_per_sm / max(bpsm * bx * by, 1))
        shared_bytes = 0.0

        return KernelLaunchConfig(
            threads_per_block=bx * by,
            grid_blocks=grid,
            registers_per_thread=registers,
            shared_mem_bytes=shared_bytes,
            blocks_per_sm_hint=bpsm,
            launches=1,
        )

    # -------------------------------------------------------------------- work

    def flops(self, config: Mapping[str, Any], gpu: GPUSpec) -> float:
        # One add per (DM, channel, sample); the shift's address arithmetic is hoisted
        # out of the inner loop by the compiler.
        return 1.0 * float(self.num_dms) * float(self.num_channels) * float(self.num_samples)

    def traffic(self, config: Mapping[str, Any], gpu: GPUSpec) -> MemoryTraffic:
        bx = int(config["block_size_x"])
        by = int(config["block_size_y"])
        ty = int(config["tile_size_y"])
        tile_stride_x = int(config["tile_stride_x"])

        samples = float(self.num_samples)
        dms = float(self.num_dms)
        channels = float(self.num_channels)

        # Each channel sample must be loaded once per *block row* of DMs it serves; the
        # number of DMs that share one load grows with the per-block DM extent, but the
        # sharing happens through the L1/register file, whose capacity caps how many
        # DMs can actually reuse a resident sample (a larger cap on Ampere's bigger L1).
        # Floor of 16: neighbouring DM blocks scheduled in the same wave hit the same
        # channel samples in L2 even when a single block covers few DMs.
        reuse_cap = 48 if gpu.architecture == "Ampere" else 24
        dms_per_block = min(max(by * ty, 16), reuse_cap)
        reuse_groups = math.ceil(dms / dms_per_block)
        reads = channels * samples * 4.0 * reuse_groups
        writes = dms * samples * 4.0

        # Narrow blocks in x hurt coalescing, but far less than in a generic streaming
        # kernel: threads stacked in y read overlapping, slightly-shifted windows of
        # the same channel row, so the L1 serves most of the "wasted" sectors.
        efficiency = max(coalescing_efficiency(gpu, bx), 0.55)
        # Strided sample assignment keeps neighbouring threads on neighbouring samples
        # and is slightly friendlier to the coalescer than long consecutive runs.
        if tile_stride_x:
            efficiency = min(efficiency * 1.05, 1.0)
        return MemoryTraffic(read_bytes=reads, write_bytes=writes, efficiency=efficiency)

    # ----------------------------------------------------------- compute efficiency

    def compute_efficiency(self, config: Mapping[str, Any], gpu: GPUSpec,
                           occupancy: OccupancyResult) -> float:
        unroll_c = int(config["loop_unroll_factor_channel"])
        tile_stride_y = int(config["tile_stride_y"])
        tx = int(config["tile_size_x"])

        base = 0.40  # address arithmetic dominates; far from FMA peak
        unroll_factor = ilp_factor(unroll_c, 32 if gpu.architecture == "Ampere" else 16,
                                   falloff=0.03) ** 2
        stride_factor = 0.97 if tile_stride_y else 1.0
        work_factor = 1.0 + 0.03 * math.log2(max(tx, 1))
        return base * unroll_factor * stride_factor * work_factor


def _reference(config: Mapping[str, Any], rng, num_channels: int = 32, num_dms: int = 16,
               num_output_samples: int = 64, **kwargs: Any):
    """Reference driver bound to the benchmark (small default size for tests)."""
    return dedispersion_reference.run(config, rng, num_channels=num_channels,
                                      num_dms=num_dms,
                                      num_output_samples=num_output_samples, **kwargs)


def create_benchmark(num_samples: int = 25000, num_dms: int = 2048,
                     num_channels: int = 1536) -> KernelBenchmark:
    """Create the Dedispersion benchmark (ARTS/Apertif survey parameters by default)."""
    space = SearchSpace(PARAMETERS, CONSTRAINTS, name="dedispersion")
    workload = Workload(
        name=f"{num_dms}dms_{num_channels}ch_{num_samples}samples",
        sizes={"num_samples": num_samples, "num_dms": num_dms, "num_channels": num_channels},
        description="Incoherent dedispersion with ARTS survey parameters (24.4 kHz, "
                    "2048 DMs, 1536 channels)",
    )
    model = DedispersionModel(num_samples, num_dms, num_channels)
    return KernelBenchmark(
        name="dedispersion",
        display_name="Dedisp",
        space=space,
        model=model,
        workload=workload,
        reference=_reference,
        description="Shift-and-sum dedispersion of radio-telescope filterbank data",
        application_domain="radio astronomy",
        origin="AMBER single-pulse detection pipeline (Sclocco et al.)",
        paper_table="Table VII",
    )
