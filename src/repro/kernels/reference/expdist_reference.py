"""Reference implementation of the Expdist localization-microscopy kernel.

Expdist scores the registration of two "particles" (point clouds of single-molecule
localizations) by the Gaussian-weighted sum over all localization pairs:

``D = sum_i sum_j exp( -||x_t,i - x_m,j||^2 / (2 * (sigma_t,i^2 + sigma_m,j^2)) )``

The kernel is quadratic in the number of localizations and is called repeatedly during
template-free particle-fusion registration (Heydarian et al.).  The tunable
``use_column`` / tiling parameters change only the order in which the pair sum is
accumulated; the reference mirrors that with blocked accumulation.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

__all__ = ["expdist", "tiled_expdist", "run"]


def expdist(template: np.ndarray, model: np.ndarray, sigma_template: np.ndarray,
            sigma_model: np.ndarray) -> float:
    """Ground-truth pairwise Gaussian registration score (fully vectorised).

    Parameters
    ----------
    template, model:
        ``(Kt, 2)`` and ``(Km, 2)`` localization coordinates.
    sigma_template, sigma_model:
        ``(Kt,)`` and ``(Km,)`` localization uncertainties.
    """
    diff = template[:, None, :] - model[None, :, :]
    dist_sq = np.sum(diff * diff, axis=-1)
    denom = 2.0 * (sigma_template[:, None] ** 2 + sigma_model[None, :] ** 2)
    return float(np.exp(-dist_sq / denom).sum())


def tiled_expdist(template: np.ndarray, model: np.ndarray, sigma_template: np.ndarray,
                  sigma_model: np.ndarray, config: Mapping[str, Any]) -> float:
    """Expdist score accumulated with the tunable kernel's blocking structure.

    ``block_size_x * tile_size_x`` template localizations and
    ``block_size_y * tile_size_y`` model localizations are processed per block pair;
    with ``use_column == 1`` the model dimension is additionally split over
    ``n_y_blocks`` column blocks whose partial sums are reduced at the end (the
    kernel's two-stage reduction).  All variants produce the same scalar.
    """
    bx = max(int(config.get("block_size_x", 32)), 1)
    by = max(int(config.get("block_size_y", 1)), 1)
    tx = max(int(config.get("tile_size_x", 1)), 1)
    ty = max(int(config.get("tile_size_y", 1)), 1)
    use_column = bool(int(config.get("use_column", 0)))
    n_y_blocks = max(int(config.get("n_y_blocks", 1)), 1)

    kt = template.shape[0]
    km = model.shape[0]
    chunk_t = bx * tx
    chunk_m = by * ty

    if use_column:
        column_edges = np.linspace(0, km, n_y_blocks + 1, dtype=int)
    else:
        column_edges = np.array([0, km], dtype=int)

    partial_sums = np.zeros(len(column_edges) - 1, dtype=np.float64)
    for col, (m0, m1) in enumerate(zip(column_edges[:-1], column_edges[1:])):
        for i0 in range(0, kt, chunk_t):
            i1 = min(i0 + chunk_t, kt)
            for j0 in range(m0, m1, max(chunk_m, 1)):
                j1 = min(j0 + chunk_m, m1)
                if i1 <= i0 or j1 <= j0:
                    continue
                diff = template[i0:i1, None, :] - model[None, j0:j1, :]
                dist_sq = np.sum(diff * diff, axis=-1)
                denom = 2.0 * (sigma_template[i0:i1, None] ** 2
                               + sigma_model[None, j0:j1] ** 2)
                partial_sums[col] += np.exp(-dist_sq / denom).sum()
    return float(partial_sums.sum())


def run(config: Mapping[str, Any], rng: np.random.Generator,
        num_localizations: int = 256) -> np.ndarray:
    """Configuration-aware driver over reproducible random particles.

    Returns a 1-element array so the common "outputs must match" test applies uniformly.
    """
    kt = km = int(num_localizations)
    template = rng.standard_normal((kt, 2))
    model = template + 0.05 * rng.standard_normal((km, 2))
    sigma_template = rng.uniform(0.01, 0.05, size=kt)
    sigma_model = rng.uniform(0.01, 0.05, size=km)
    return np.array([tiled_expdist(template, model, sigma_template, sigma_model, config)])
