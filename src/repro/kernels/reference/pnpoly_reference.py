"""Reference implementation of the Pnpoly (point-in-polygon) kernel.

The kernel classifies a large batch of 2D points against a single polygon using the
crossing-number (even--odd rule) algorithm: a point is inside if a ray cast to the
right crosses the polygon boundary an odd number of times.  The tunable parameters
``between_method`` and ``use_method`` select algebraically equivalent ways of testing
whether an edge straddles the ray and of accumulating the crossing parity; all
variants agree on every point that is not exactly on an edge (the workloads used in
the suite avoid degenerate points).
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

__all__ = ["point_in_polygon", "tiled_pnpoly", "run", "regular_polygon"]


def regular_polygon(num_vertices: int, radius: float = 1.0,
                    center: tuple[float, float] = (0.0, 0.0)) -> np.ndarray:
    """Vertices of a regular polygon, used as the default test workload."""
    angles = np.linspace(0.0, 2.0 * np.pi, num_vertices, endpoint=False)
    return np.stack([center[0] + radius * np.cos(angles),
                     center[1] + radius * np.sin(angles)], axis=1)


def _edge_straddles(py: np.ndarray, vy_i: float, vy_j: float, method: int) -> np.ndarray:
    """Does the edge (i, j) straddle the horizontal line through each point?

    The three ``between_method`` variants are algebraically equivalent formulations of
    "vy_i and vy_j lie on opposite sides of py".
    """
    if method == 0:
        return (vy_i > py) != (vy_j > py)
    if method == 1:
        return ((vy_i > py) & (vy_j <= py)) | ((vy_j > py) & (vy_i <= py))
    if method == 2:
        return (vy_i - py) * (vy_j - py) < 0.0
    # method 3: min/max interval test (half-open to match the > / <= convention).
    lo = min(vy_i, vy_j)
    hi = max(vy_i, vy_j)
    return (py >= lo) & (py < hi) & (np.abs(vy_i - vy_j) > 0)


def point_in_polygon(points: np.ndarray, polygon: np.ndarray,
                     between_method: int = 0, use_method: int = 0) -> np.ndarray:
    """Crossing-number point-in-polygon test for a batch of points.

    Parameters
    ----------
    points:
        ``(n, 2)`` array of query points.
    polygon:
        ``(v, 2)`` array of polygon vertices in order.
    between_method / use_method:
        Algorithm variants of the tunable kernel (see module docstring).

    Returns
    -------
    np.ndarray
        Boolean array: True where the point lies inside the polygon.
    """
    px = points[:, 0]
    py = points[:, 1]
    nv = polygon.shape[0]
    if use_method == 1:
        crossings = np.zeros(px.shape[0], dtype=np.int64)
    else:
        inside = np.zeros(px.shape[0], dtype=bool)

    j = nv - 1
    for i in range(nv):
        vx_i, vy_i = polygon[i]
        vx_j, vy_j = polygon[j]
        straddles = _edge_straddles(py, vy_i, vy_j, between_method)
        with np.errstate(divide="ignore", invalid="ignore"):
            x_cross = (vx_j - vx_i) * (py - vy_i) / (vy_j - vy_i) + vx_i
        crosses = straddles & (px < x_cross)
        if use_method == 1:
            crossings += crosses.astype(np.int64)
        else:
            # use_method 0 (xor flag) and 2 (branchless xor) share the parity update.
            inside ^= crosses
        j = i

    if use_method == 1:
        return (crossings % 2) == 1
    return inside


def tiled_pnpoly(points: np.ndarray, polygon: np.ndarray,
                 config: Mapping[str, Any]) -> np.ndarray:
    """Point-in-polygon over per-thread tiles, mirroring the kernel's work division.

    ``block_size_x * tile_size`` points are processed per "block" chunk; the chunking
    only changes traversal order.
    """
    block = max(int(config.get("block_size_x", 256)), 1)
    tile = max(int(config.get("tile_size", 1)), 1)
    between_method = int(config.get("between_method", 0))
    use_method = int(config.get("use_method", 0))
    chunk = block * tile
    n = points.shape[0]
    out = np.zeros(n, dtype=bool)
    for start in range(0, n, chunk):
        stop = min(start + chunk, n)
        out[start:stop] = point_in_polygon(points[start:stop], polygon,
                                           between_method=between_method,
                                           use_method=use_method)
    return out


def run(config: Mapping[str, Any], rng: np.random.Generator, num_points: int = 2048,
        num_vertices: int = 24) -> np.ndarray:
    """Configuration-aware driver over a reproducible random point cloud."""
    points = rng.uniform(-1.5, 1.5, size=(int(num_points), 2))
    polygon = regular_polygon(int(num_vertices))
    return tiled_pnpoly(points, polygon, config)
