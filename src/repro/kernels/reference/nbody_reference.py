"""Reference implementation of the KTT N-body kernel.

Computes the gravitational acceleration on every body from every other body with the
classic all-pairs O(N^2) scheme and Plummer softening -- the same mathematics as the
CUDA SDK sample the tunable kernel derives from.  The tunable layout choices
(structure-of-arrays vs array-of-structures, shared-memory tiling by ``block_size``,
per-thread work via ``outer_unroll_factor``) are reproduced as traversal/layout
variations that leave the result unchanged.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

__all__ = ["nbody_accelerations", "tiled_nbody", "run"]

#: Softening constant squared, matching the CUDA SDK sample's default.
SOFTENING_SQUARED = 0.00125


def nbody_accelerations(positions: np.ndarray, masses: np.ndarray) -> np.ndarray:
    """All-pairs gravitational accelerations (ground truth, fully vectorised).

    Parameters
    ----------
    positions:
        ``(n, 3)`` array of body positions.
    masses:
        ``(n,)`` array of body masses.
    """
    diff = positions[None, :, :] - positions[:, None, :]          # (n, n, 3)
    dist_sq = np.sum(diff * diff, axis=-1) + SOFTENING_SQUARED    # (n, n)
    inv_dist3 = dist_sq ** -1.5
    # The i == j self term contributes zero because diff is zero there and the
    # softening keeps inv_dist3 finite, mirroring the CUDA SDK kernel.
    contrib = diff * (masses[None, :, None] * inv_dist3[:, :, None])
    return contrib.sum(axis=1)


def tiled_nbody(positions: np.ndarray, masses: np.ndarray,
                config: Mapping[str, Any]) -> np.ndarray:
    """N-body accelerations computed with the tunable kernel's tiling structure.

    * ``use_soa`` selects the internal data layout (structure of arrays vs array of
      structures); the layout is round-tripped so results match the ground truth.
    * ``block_size`` is the size of the body tile staged per iteration (the
      shared-memory tile on the GPU; ``local_mem`` decides whether an explicit staging
      copy is made).
    * ``outer_unroll_factor`` groups that many target bodies per "thread", mirroring
      the work-per-thread optimisation.
    """
    n = positions.shape[0]
    block = max(int(config.get("block_size", 64)), 1)
    outer = max(int(config.get("outer_unroll_factor", 1)), 1)
    use_soa = bool(int(config.get("use_soa", 0)))
    local_mem = bool(int(config.get("local_mem", 0)))

    if use_soa:
        px, py, pz = positions[:, 0].copy(), positions[:, 1].copy(), positions[:, 2].copy()
        pos = np.stack([px, py, pz], axis=1)
    else:
        pos = np.asarray(positions, dtype=np.float64)

    acc = np.zeros((n, 3), dtype=np.float64)
    for i0 in range(0, n, block * outer):
        i1 = min(i0 + block * outer, n)
        targets = pos[i0:i1]
        for j0 in range(0, n, block):
            j1 = min(j0 + block, n)
            tile = pos[j0:j1]
            tile_mass = masses[j0:j1]
            if local_mem:
                tile = np.array(tile, copy=True)
                tile_mass = np.array(tile_mass, copy=True)
            diff = tile[None, :, :] - targets[:, None, :]
            dist_sq = np.sum(diff * diff, axis=-1) + SOFTENING_SQUARED
            inv_dist3 = dist_sq ** -1.5
            acc[i0:i1] += np.sum(diff * (tile_mass[None, :, None] * inv_dist3[:, :, None]),
                                 axis=1)
    return acc


def run(config: Mapping[str, Any], rng: np.random.Generator, n_bodies: int = 256) -> np.ndarray:
    """Configuration-aware driver over a reproducible random body distribution."""
    positions = rng.standard_normal((int(n_bodies), 3))
    masses = rng.uniform(0.5, 2.0, size=int(n_bodies))
    return tiled_nbody(positions, masses, config)
