"""Reference implementation of the tunable 2D convolution kernel.

Computes, for every output pixel, the weighted sum of an ``Fh x Fw`` neighbourhood of
the input image (van Werkhoven et al.'s adaptive-tiling convolution).  The output has
shape ``(h - Fh + 1, w - Fw + 1)`` for an input of ``(h, w)`` -- the "valid" region, as
in the paper's equation.  The tunable thread-block/tile parameters are reproduced as
output tiling; ``use_padding`` and ``read_only`` affect only how data would be staged
on a GPU, so the reference treats them as staging copies with identical results.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

__all__ = ["convolve2d_valid", "tiled_convolution", "run"]


def convolve2d_valid(image: np.ndarray, filt: np.ndarray) -> np.ndarray:
    """Dense 2D correlation (no kernel flip, as in the paper's formula), valid mode."""
    image = np.asarray(image, dtype=np.float64)
    filt = np.asarray(filt, dtype=np.float64)
    fh, fw = filt.shape
    h, w = image.shape
    if h < fh or w < fw:
        raise ValueError(f"image {image.shape} smaller than filter {filt.shape}")
    out_h, out_w = h - fh + 1, w - fw + 1
    # Sliding-window view keeps this O(out * filter) without Python-level loops over pixels.
    windows = np.lib.stride_tricks.sliding_window_view(image, (fh, fw))
    return np.einsum("ijkl,kl->ij", windows[:out_h, :out_w], filt)


def tiled_convolution(image: np.ndarray, filt: np.ndarray,
                      config: Mapping[str, Any]) -> np.ndarray:
    """2D convolution computed tile-by-tile the way the tunable kernel partitions work.

    Each "thread block" produces an output tile of
    ``(block_size_y * tile_size_y, block_size_x * tile_size_x)`` pixels from the
    corresponding input region (output tile + filter halo).  ``use_padding`` stages the
    input region through a padded scratch buffer, mirroring the shared-memory padding
    optimisation.
    """
    bx = max(int(config.get("block_size_x", 16)), 1)
    by = max(int(config.get("block_size_y", 16)), 1)
    tx = max(int(config.get("tile_size_x", 1)), 1)
    ty = max(int(config.get("tile_size_y", 1)), 1)
    use_padding = bool(int(config.get("use_padding", 0)))

    filt = np.asarray(filt, dtype=np.float64)
    fh, fw = filt.shape
    image = np.asarray(image, dtype=np.float64)
    h, w = image.shape
    out_h, out_w = h - fh + 1, w - fw + 1
    out = np.empty((out_h, out_w), dtype=np.float64)

    tile_h = by * ty
    tile_w = bx * tx
    for y0 in range(0, out_h, tile_h):
        y1 = min(y0 + tile_h, out_h)
        for x0 in range(0, out_w, tile_w):
            x1 = min(x0 + tile_w, out_w)
            region = image[y0:y1 + fh - 1, x0:x1 + fw - 1]
            if use_padding:
                staged = np.zeros((region.shape[0], region.shape[1] + 1), dtype=np.float64)
                staged[:, :region.shape[1]] = region
                region = staged[:, :region.shape[1]]
            out[y0:y1, x0:x1] = convolve2d_valid(region, filt)
    return out


def run(config: Mapping[str, Any], rng: np.random.Generator, image_size: int = 96,
        filter_size: int = 9) -> np.ndarray:
    """Configuration-aware driver over a reproducible random image and filter."""
    image = rng.standard_normal((int(image_size), int(image_size)))
    filt = rng.standard_normal((int(filter_size), int(filter_size)))
    filt /= np.abs(filt).sum()
    return tiled_convolution(image, filt, config)
