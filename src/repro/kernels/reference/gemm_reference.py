"""Reference implementation of the CLBlast-style GEMM kernel.

Computes ``C = alpha * A @ B + beta * C`` using the same two-level tiling structure as
the tunable OpenCL kernel: the output matrix is partitioned into ``MWG x NWG``
workgroup tiles, the reduction dimension is processed in chunks of ``KWG`` elements,
and (when ``SA``/``SB`` are enabled) the A/B panels of the current chunk are staged
into an explicit "shared memory" buffer before being consumed.  All variants compute
the same result; the tiling merely changes the traversal order, exactly as on the GPU.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

__all__ = ["gemm", "tiled_gemm", "run"]

#: Reduction-dimension chunk used by the reference kernel (fixed in BAT's GEMM).
KWG = 32


def gemm(a: np.ndarray, b: np.ndarray, c: np.ndarray, alpha: float = 1.0,
         beta: float = 0.0) -> np.ndarray:
    """Plain BLAS-3 GEMM: ``alpha * a @ b + beta * c`` (the ground truth)."""
    return alpha * (a @ b) + beta * c


def tiled_gemm(a: np.ndarray, b: np.ndarray, c: np.ndarray, config: Mapping[str, Any],
               alpha: float = 1.0, beta: float = 0.0) -> np.ndarray:
    """GEMM with the tunable kernel's workgroup tiling applied.

    Parameters mirror the tunable kernel: ``MWG``/``NWG`` set the workgroup tile shape
    and ``SA``/``SB`` select whether the A/B panels are staged through a local buffer
    (a copy, standing in for shared memory).  The result is numerically identical to
    :func:`gemm` up to floating-point summation order.
    """
    m, k = a.shape
    k2, n = b.shape
    if k != k2:
        raise ValueError(f"inner dimensions disagree: {a.shape} @ {b.shape}")
    mwg = int(config.get("MWG", 32))
    nwg = int(config.get("NWG", 32))
    stage_a = bool(int(config.get("SA", 0)))
    stage_b = bool(int(config.get("SB", 0)))

    out = beta * np.asarray(c, dtype=np.float64).copy()
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)

    for i0 in range(0, m, mwg):
        i1 = min(i0 + mwg, m)
        for j0 in range(0, n, nwg):
            j1 = min(j0 + nwg, n)
            acc = np.zeros((i1 - i0, j1 - j0), dtype=np.float64)
            for p0 in range(0, k, KWG):
                p1 = min(p0 + KWG, k)
                a_panel = a[i0:i1, p0:p1]
                b_panel = b[p0:p1, j0:j1]
                if stage_a:
                    a_panel = np.array(a_panel, copy=True)
                if stage_b:
                    b_panel = np.array(b_panel, copy=True)
                acc += a_panel @ b_panel
            out[i0:i1, j0:j1] += alpha * acc
    return out


def run(config: Mapping[str, Any], rng: np.random.Generator, matrix_size: int = 128,
        alpha: float = 1.0, beta: float = 0.75) -> np.ndarray:
    """Configuration-aware driver used by tests and examples.

    Generates a reproducible random problem of shape ``matrix_size`` and returns the
    tiled-GEMM result for ``config``.
    """
    m = n = k = int(matrix_size)
    a = rng.standard_normal((m, k))
    b = rng.standard_normal((k, n))
    c = rng.standard_normal((m, n))
    return tiled_gemm(a, b, c, config, alpha=alpha, beta=beta)
