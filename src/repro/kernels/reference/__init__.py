"""NumPy functional reference implementations of the seven BAT kernels.

The reference implementations serve two purposes:

1. they make the benchmark suite *functional* -- a "kernel handler" is not just a
   runtime model but an actual computation whose answer can be checked;
2. they encode the autotuning invariant the whole field relies on: **every valid
   configuration computes the same result**, only at different speed.  The test suite
   exercises that invariant per kernel (different tile sizes, layouts and algorithm
   selectors must agree to floating-point tolerance).

Each module exposes two layers:

* a plain NumPy implementation of the mathematics (e.g. :func:`gemm_reference.gemm`);
* a configuration-aware driver ``run(config, rng, **sizes)`` that re-organises the
  computation the way the tunable kernel would (tiling loops, structure-of-arrays
  layouts, algorithm variants) so that the tunable code paths are genuinely exercised.

The drivers operate on deliberately small default sizes; they are test/demo vehicles,
not performance codes -- simulated performance comes from :mod:`repro.gpus.perfmodel`.
"""

from repro.kernels.reference import (
    convolution_reference,
    dedispersion_reference,
    expdist_reference,
    gemm_reference,
    hotspot_reference,
    nbody_reference,
    pnpoly_reference,
)

__all__ = [
    "gemm_reference",
    "nbody_reference",
    "hotspot_reference",
    "pnpoly_reference",
    "convolution_reference",
    "expdist_reference",
    "dedispersion_reference",
]
