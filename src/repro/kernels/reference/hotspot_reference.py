"""Reference implementation of the Hotspot thermal-simulation kernel.

Hotspot iteratively solves the heat differential equation on a 2D chip grid: each cell's
temperature is updated from its own power dissipation, its four neighbours and the
ambient temperature.  The update below follows the Rodinia formulation (the suite's
kernel is a from-scratch reimplementation with the same mathematics):

``T'[y, x] = T[y, x] + step/cap * (P[y, x]
             + (T[y, x+1] + T[y, x-1] - 2 T[y, x]) / Rx
             + (T[y+1, x] + T[y-1, x] - 2 T[y, x]) / Ry
             + (T_amb - T[y, x]) / Rz)``

with replicated (clamped) boundary cells.  The tunable ``temporal_tiling_factor``
controls how many of the requested iterations are fused into a single "kernel launch";
the fusion changes only the traversal, never the answer.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

__all__ = ["hotspot_step", "hotspot_iterate", "run"]

#: Physical constants used by the Rodinia benchmark (arbitrary but fixed units).
AMBIENT_TEMPERATURE = 80.0
R_X = 0.1
R_Y = 0.1
R_Z = 3.0e-3
STEP_OVER_CAP = 3.0e-4


def hotspot_step(temperature: np.ndarray, power: np.ndarray) -> np.ndarray:
    """One explicit time step of the thermal simulation (clamped boundaries)."""
    t = np.asarray(temperature, dtype=np.float64)
    p = np.asarray(power, dtype=np.float64)
    padded = np.pad(t, 1, mode="edge")
    east = padded[1:-1, 2:]
    west = padded[1:-1, :-2]
    north = padded[:-2, 1:-1]
    south = padded[2:, 1:-1]
    delta = STEP_OVER_CAP * (
        p
        + (east + west - 2.0 * t) / R_X
        + (north + south - 2.0 * t) / R_Y
        + (AMBIENT_TEMPERATURE - t) / R_Z
    )
    return t + delta


def hotspot_iterate(temperature: np.ndarray, power: np.ndarray, iterations: int,
                    config: Mapping[str, Any] | None = None) -> np.ndarray:
    """Run ``iterations`` time steps, fused into launches of ``temporal_tiling_factor``.

    The temporal tiling factor determines how many steps one simulated kernel launch
    advances; the reference merely groups the same sequence of steps, so every
    configuration produces the identical temperature field.
    """
    config = config or {}
    ttf = max(int(config.get("temporal_tiling_factor", 1)), 1)
    t = np.asarray(temperature, dtype=np.float64).copy()
    remaining = int(iterations)
    while remaining > 0:
        steps_this_launch = min(ttf, remaining)
        for _ in range(steps_this_launch):
            t = hotspot_step(t, power)
        remaining -= steps_this_launch
    return t


def run(config: Mapping[str, Any], rng: np.random.Generator, grid_size: int = 64,
        iterations: int = 12) -> np.ndarray:
    """Configuration-aware driver over a reproducible random power map."""
    n = int(grid_size)
    temperature = np.full((n, n), AMBIENT_TEMPERATURE, dtype=np.float64)
    temperature += rng.uniform(0.0, 10.0, size=(n, n))
    power = rng.uniform(0.0, 5.0, size=(n, n))
    return hotspot_iterate(temperature, power, int(iterations), config)
