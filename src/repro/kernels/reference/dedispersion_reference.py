"""Reference implementation of the AMBER dedispersion kernel.

A radio signal travelling through the interstellar medium is dispersed: lower
frequencies arrive later.  Dedispersion reverses this by shifting each frequency
channel by the delay predicted for a trial dispersion measure (DM) and summing over
channels:

``delay(DM, f) ~= 4150 * DM * (1 / f^2 - 1 / f_high^2)``  [seconds, f in MHz]

The kernel takes a (channels x samples) filterbank and produces a (DMs x samples)
dedispersed time series.  The tunable tiling/stride parameters only change the order
in which samples and DMs are processed.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

__all__ = ["dispersion_delays", "dedisperse", "tiled_dedisperse", "run"]

#: Dispersion constant in MHz^2 pc^-1 cm^3 s (the approximation used in the paper).
DISPERSION_CONSTANT = 4150.0


def dispersion_delays(dm_values: np.ndarray, frequencies_mhz: np.ndarray,
                      sampling_rate_hz: float) -> np.ndarray:
    """Per-(DM, channel) delays in integer samples.

    Parameters
    ----------
    dm_values:
        ``(n_dms,)`` trial dispersion measures.
    frequencies_mhz:
        ``(n_channels,)`` channel centre frequencies in MHz, ordered arbitrarily.
    sampling_rate_hz:
        Sampling rate of the time series.
    """
    f_high = float(np.max(frequencies_mhz))
    delay_seconds = DISPERSION_CONSTANT * dm_values[:, None] * (
        1.0 / frequencies_mhz[None, :] ** 2 - 1.0 / f_high ** 2)
    return np.round(delay_seconds * sampling_rate_hz).astype(np.int64)


def dedisperse(data: np.ndarray, dm_values: np.ndarray, frequencies_mhz: np.ndarray,
               sampling_rate_hz: float, num_output_samples: int) -> np.ndarray:
    """Ground-truth shift-and-sum dedispersion.

    Parameters
    ----------
    data:
        ``(n_channels, n_samples)`` filterbank intensities.
    num_output_samples:
        Length of the dedispersed series; must satisfy
        ``num_output_samples + max_delay <= n_samples``.
    """
    n_channels, n_samples = data.shape
    delays = dispersion_delays(np.asarray(dm_values, dtype=np.float64),
                               np.asarray(frequencies_mhz, dtype=np.float64),
                               sampling_rate_hz)
    max_delay = int(delays.max()) if delays.size else 0
    if num_output_samples + max_delay > n_samples:
        raise ValueError(
            f"need {num_output_samples + max_delay} input samples, have {n_samples}")
    out = np.zeros((len(dm_values), num_output_samples), dtype=np.float64)
    for d in range(len(dm_values)):
        for c in range(n_channels):
            shift = delays[d, c]
            out[d] += data[c, shift:shift + num_output_samples]
    return out


def tiled_dedisperse(data: np.ndarray, dm_values: np.ndarray, frequencies_mhz: np.ndarray,
                     sampling_rate_hz: float, num_output_samples: int,
                     config: Mapping[str, Any]) -> np.ndarray:
    """Dedispersion with the tunable kernel's sample/DM tiling applied.

    Samples are processed in chunks of ``block_size_x * tile_size_x`` (consecutive when
    ``tile_stride_x == 0``, strided when 1 -- both cover the same set) and DMs in
    chunks of ``block_size_y * tile_size_y``.  The channel loop may be blocked by
    ``loop_unroll_factor_channel``.  Results equal :func:`dedisperse` exactly.
    """
    bx = max(int(config.get("block_size_x", 32)), 1)
    by = max(int(config.get("block_size_y", 4)), 1)
    tx = max(int(config.get("tile_size_x", 1)), 1)
    ty = max(int(config.get("tile_size_y", 1)), 1)
    unroll_c = int(config.get("loop_unroll_factor_channel", 0))

    n_channels, _ = data.shape
    dm_values = np.asarray(dm_values, dtype=np.float64)
    delays = dispersion_delays(dm_values, np.asarray(frequencies_mhz, dtype=np.float64),
                               sampling_rate_hz)
    channel_block = unroll_c if unroll_c > 0 else n_channels

    out = np.zeros((len(dm_values), num_output_samples), dtype=np.float64)
    dm_chunk = by * ty
    sample_chunk = bx * tx
    for d0 in range(0, len(dm_values), dm_chunk):
        d1 = min(d0 + dm_chunk, len(dm_values))
        for s0 in range(0, num_output_samples, sample_chunk):
            s1 = min(s0 + sample_chunk, num_output_samples)
            for c0 in range(0, n_channels, channel_block):
                c1 = min(c0 + channel_block, n_channels)
                for d in range(d0, d1):
                    for c in range(c0, c1):
                        shift = delays[d, c]
                        out[d, s0:s1] += data[c, shift + s0:shift + s1]
    return out


def run(config: Mapping[str, Any], rng: np.random.Generator, num_channels: int = 32,
        num_dms: int = 16, num_output_samples: int = 64) -> np.ndarray:
    """Configuration-aware driver over a reproducible synthetic filterbank."""
    frequencies = np.linspace(1220.0, 1520.0, int(num_channels))
    dm_values = np.linspace(0.0, 60.0, int(num_dms))
    sampling_rate = 24_400.0
    max_delay = int(dispersion_delays(dm_values, frequencies, sampling_rate).max())
    n_samples = int(num_output_samples) + max_delay
    data = rng.uniform(0.0, 1.0, size=(int(num_channels), n_samples))
    return tiled_dedisperse(data, dm_values, frequencies, sampling_rate,
                            int(num_output_samples), config)
