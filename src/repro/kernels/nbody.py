"""N-body benchmark (paper Sec. IV-B, Table II).

All-pairs gravitational interaction of ``N`` bodies, the KTT tunable version of the
CUDA SDK sample.  Every thread accumulates the force on one or more bodies
(``outer_unroll_factor`` bodies per thread); the inner loop over all other bodies can
be partially unrolled (``inner_unroll_factor1/2``), the bodies can be stored as a
structure of arrays or an array of structures (``use_soa``), a shared-memory software
cache can stage the body tile (``local_mem``), and loads can be vectorised
(``vector_type``).

The kernel is strongly compute-bound (quadratic work over linear data), so most valid
configurations land within a modest factor of the optimum -- which is exactly the
behaviour the paper reports (90% of optimal within ~10 random evaluations) -- except
for a cluster of slow configurations where a small block size combined with no
software cache collapses both occupancy and data reuse (the distinct "poor" cluster in
Fig. 1f).
"""

from __future__ import annotations

import math
from typing import Any, Mapping

from repro.core.constraints import ConstraintSet
from repro.core.parameter import Parameter
from repro.core.searchspace import SearchSpace
from repro.gpus.memory import MemoryTraffic, vector_access_efficiency
from repro.gpus.occupancy import OccupancyResult
from repro.gpus.perfmodel import AnalyticalKernelModel, KernelLaunchConfig, ilp_factor
from repro.gpus.specs import GPUSpec
from repro.kernels.base import KernelBenchmark, Workload
from repro.kernels.reference import nbody_reference

__all__ = ["NbodyModel", "create_benchmark", "PARAMETERS", "CONSTRAINTS"]

#: Tunable parameters exactly as listed in Table II of the paper.
PARAMETERS: tuple[Parameter, ...] = (
    Parameter("block_size", (64, 128, 256, 512), description="threads per block"),
    Parameter("outer_unroll_factor", (1, 2, 4, 8), description="bodies per thread"),
    Parameter("inner_unroll_factor1", (0, 1, 2, 4, 8, 16, 32),
              description="partial unroll of the global-memory inner loop"),
    Parameter("inner_unroll_factor2", (0, 1, 2, 4, 8, 16, 32),
              description="partial unroll of the shared-memory inner loop"),
    Parameter("use_soa", (0, 1), description="structure-of-arrays body layout"),
    Parameter("local_mem", (0, 1), description="shared-memory software cache"),
    Parameter("vector_type", (1, 2, 4), description="elements loaded per memory instruction"),
)

#: Reconstructed validity constraints (the original CUDA sources gate the code paths
#: the same way: the second inner loop only exists when the software cache is used and
#: vectorised body loads require the SoA layout).
CONSTRAINTS = ConstraintSet([
    "local_mem == 1 or inner_unroll_factor2 == 0",
    "local_mem == 0 or inner_unroll_factor1 == 0",
    "use_soa == 1 or vector_type == 1",
    "inner_unroll_factor1 <= block_size",
    "inner_unroll_factor2 <= block_size",
])


class NbodyModel(AnalyticalKernelModel):
    """Analytical performance model of the KTT N-body kernel."""

    #: Floating-point operations per body-body interaction (distance, rsqrt, FMA chain).
    FLOPS_PER_INTERACTION = 20.0

    def __init__(self, n_bodies: int):
        super().__init__("nbody", occupancy_saturation=0.30, noise_sigma=0.012)
        self.n_bodies = int(n_bodies)

    # ---------------------------------------------------------------- launch shape

    def launch_config(self, config: Mapping[str, Any], gpu: GPUSpec) -> KernelLaunchConfig:
        block = int(config["block_size"])
        outer = int(config["outer_unroll_factor"])
        inner1 = int(config["inner_unroll_factor1"])
        inner2 = int(config["inner_unroll_factor2"])
        local_mem = int(config["local_mem"])
        vector = int(config["vector_type"])

        grid = math.ceil(self.n_bodies / (block * outer))
        # Each extra body per thread needs its own position/acceleration registers;
        # unrolling keeps more interaction temporaries alive.
        registers = (26 + 8.0 * outer + 0.45 * max(inner1, 1) + 0.45 * max(inner2, 1)
                     + 2.0 * vector)
        shared_bytes = float(local_mem * block * 4 * 4)  # x, y, z, mass per cached body

        return KernelLaunchConfig(
            threads_per_block=block,
            grid_blocks=grid,
            registers_per_thread=registers,
            shared_mem_bytes=shared_bytes,
            launches=1,
        )

    # -------------------------------------------------------------------- work

    def flops(self, config: Mapping[str, Any], gpu: GPUSpec) -> float:
        return self.FLOPS_PER_INTERACTION * float(self.n_bodies) * float(self.n_bodies)

    def traffic(self, config: Mapping[str, Any], gpu: GPUSpec) -> MemoryTraffic:
        block = int(config["block_size"])
        outer = int(config["outer_unroll_factor"])
        local_mem = int(config["local_mem"])
        use_soa = int(config["use_soa"])
        vector = int(config["vector_type"])

        n = float(self.n_bodies)
        bytes_per_body = 16.0  # float4: x, y, z, mass
        if local_mem:
            # Every block streams all bodies once through its shared-memory tile; the
            # L2 serves most of those streams because concurrently resident blocks
            # walk the same tiles in lockstep, so only a fraction reaches DRAM.
            blocks = math.ceil(n / (block * outer))
            reads = 0.25 * blocks * n * bytes_per_body
        else:
            # Without the software cache the tile reuse happens (imperfectly) in L1/L2:
            # every thread's loop re-reads bodies, the caches absorb reuse within a warp.
            reads = (n / max(outer, 1)) * n * bytes_per_body / gpu.warp_size * 1.8
        writes = n * bytes_per_body

        efficiency = vector_access_efficiency(gpu, vector)
        if not use_soa:
            # Array-of-structures loads of individual components waste part of each
            # transaction unless the full float4 is consumed.
            efficiency *= 0.9
        return MemoryTraffic(read_bytes=reads, write_bytes=writes, efficiency=efficiency)

    # ----------------------------------------------------------- compute efficiency

    def compute_efficiency(self, config: Mapping[str, Any], gpu: GPUSpec,
                           occupancy: OccupancyResult) -> float:
        outer = int(config["outer_unroll_factor"])
        inner1 = int(config["inner_unroll_factor1"])
        inner2 = int(config["inner_unroll_factor2"])
        local_mem = int(config["local_mem"])
        use_soa = int(config["use_soa"])

        # The interaction loop is an FMA/rsqrt mix; base sustained fraction of peak.
        base = 0.62

        # ILP from unrolling whichever inner loop is active; Ampere profits from
        # deeper unrolling than Turing (dual-issue FP32).  The effect is compressed
        # towards 1 because the rsqrt-heavy loop is mostly SFU bound: many
        # configurations land close to the optimum, which is why random search reaches
        # 90% of optimal within about ten evaluations on this benchmark (Fig. 2f).
        best_unroll = 16 if gpu.architecture == "Ampere" else 8
        active_inner = inner2 if local_mem else inner1
        unroll_factor = 0.75 + 0.25 * ilp_factor(active_inner, best_unroll, falloff=0.02)

        # Multiple bodies per thread amortise the loop overhead slightly.
        outer_factor = 1.0 + 0.01 * math.log2(max(outer, 1))

        # Reading the body tile from shared memory instead of L2 keeps the FMA pipes fed.
        cache_factor = 1.04 if local_mem else 0.94

        layout_factor = 1.0 if use_soa else 0.98

        return base * unroll_factor * outer_factor * cache_factor * layout_factor


def _reference(config: Mapping[str, Any], rng, n_bodies: int = 192, **kwargs: Any):
    """Reference driver bound to the benchmark (small default size for tests)."""
    return nbody_reference.run(config, rng, n_bodies=n_bodies, **kwargs)


def create_benchmark(n_bodies: int = 262144) -> KernelBenchmark:
    """Create the N-body benchmark instance (default: 262144 bodies, a problem size
    large enough that every block shape keeps all SMs of the largest GPU busy)."""
    space = SearchSpace(PARAMETERS, CONSTRAINTS, name="nbody")
    workload = Workload(
        name=f"{n_bodies}_bodies",
        sizes={"n_bodies": n_bodies},
        description="All-pairs gravitational N-body step (KTT tunable CUDA SDK sample)",
    )
    model = NbodyModel(n_bodies)
    return KernelBenchmark(
        name="nbody",
        display_name="Nbody",
        space=space,
        model=model,
        workload=workload,
        reference=_reference,
        description="All-pairs gravitational force computation",
        application_domain="astrophysics",
        origin="KTT benchmark set (Petrovic et al., 2019)",
        paper_table="Table II",
    )
