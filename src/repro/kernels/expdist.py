"""Expdist benchmark (paper Sec. IV-F, Table VI).

The Expdist kernel scores the registration of two localization-microscopy particles by
summing a Gaussian kernel over all pairs of localizations, taking per-localization
uncertainties into account.  It is called thousands of times inside the template-free
particle-fusion pipeline of Heydarian et al., so its performance matters despite the
modest data size -- the computation is quadratic in the number of localizations and
thoroughly compute-bound.

Two kernel structures are exposed: the default row-parallel form, and a column-blocked
form (``use_column == 1``) that limits the grid's y extent to ``n_y_blocks`` blocks and
performs a second-stage reduction; ``use_shared_mem`` selects among three staging
strategies for the model particle's localizations.
"""

from __future__ import annotations

import math
from typing import Any, Mapping

from repro.core.constraints import ConstraintSet
from repro.core.parameter import Parameter
from repro.core.searchspace import SearchSpace
from repro.gpus.memory import MemoryTraffic
from repro.gpus.occupancy import OccupancyResult
from repro.gpus.perfmodel import AnalyticalKernelModel, KernelLaunchConfig, ilp_factor
from repro.gpus.specs import GPUSpec
from repro.kernels.base import KernelBenchmark, Workload
from repro.kernels.reference import expdist_reference

__all__ = ["ExpdistModel", "create_benchmark", "PARAMETERS", "CONSTRAINTS"]

#: Tunable parameters exactly as listed in Table VI of the paper.
PARAMETERS: tuple[Parameter, ...] = (
    Parameter("block_size_x", (32, 64, 128, 256, 512, 1024), default=64,
              description="thread block dimension x"),
    Parameter("block_size_y", (1, 2, 4, 8, 16, 32), description="thread block dimension y"),
    Parameter("tile_size_x", tuple(range(1, 9)),
              description="template localizations per thread in x"),
    Parameter("tile_size_y", tuple(range(1, 9)),
              description="model localizations per thread in y"),
    Parameter("use_shared_mem", (0, 1, 2), description="shared-memory staging strategy"),
    Parameter("loop_unroll_factor_x", tuple(range(1, 9)),
              description="partial unroll of the x tile loop"),
    Parameter("loop_unroll_factor_y", tuple(range(1, 9)),
              description="partial unroll of the y tile loop"),
    Parameter("use_column", (0, 1), description="column-blocked kernel structure"),
    Parameter("n_y_blocks", (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024),
              description="fixed number of thread blocks in y (column variant)"),
)

#: Reconstructed validity constraints: the block must fit the CUDA limit, the unroll
#: factors must divide their tile loops, and the column-count parameter only exists in
#: the column-blocked variant.
CONSTRAINTS = ConstraintSet([
    "block_size_x * block_size_y <= 1024",
    "tile_size_x % loop_unroll_factor_x == 0",
    "tile_size_y % loop_unroll_factor_y == 0",
    "use_column == 1 or n_y_blocks == 1",
])


class ExpdistModel(AnalyticalKernelModel):
    """Analytical performance model of the Expdist registration kernel."""

    #: Operations per localization pair (distance, two squares, division, exp, add).
    FLOPS_PER_PAIR = 30.0

    def __init__(self, num_localizations: int):
        super().__init__("expdist", occupancy_saturation=0.40, noise_sigma=0.012)
        self.num_localizations = int(num_localizations)

    # ---------------------------------------------------------------- launch shape

    def launch_config(self, config: Mapping[str, Any], gpu: GPUSpec) -> KernelLaunchConfig:
        bx = int(config["block_size_x"])
        by = int(config["block_size_y"])
        tx = int(config["tile_size_x"])
        ty = int(config["tile_size_y"])
        use_shared = int(config["use_shared_mem"])
        use_column = int(config["use_column"])
        n_y_blocks = int(config["n_y_blocks"])
        ux = int(config["loop_unroll_factor_x"])
        uy = int(config["loop_unroll_factor_y"])

        k = self.num_localizations
        grid_x = math.ceil(k / (bx * tx))
        if use_column:
            grid_y = min(n_y_blocks, max(math.ceil(k / (by * ty)), 1))
        else:
            grid_y = math.ceil(k / (by * ty))
        grid = grid_x * max(grid_y, 1)

        registers = 22 + 2.0 * tx * ty + 1.0 * (ux + uy)
        # Staging strategies: 0 = none, 1 = model points, 2 = model points + sigmas.
        per_point_bytes = {0: 0, 1: 12, 2: 16}[use_shared]
        shared_bytes = float(by * ty * per_point_bytes * 8)
        # The column variant additionally reduces partial sums in shared memory.
        if use_column:
            shared_bytes += bx * by * 8.0

        return KernelLaunchConfig(
            threads_per_block=bx * by,
            grid_blocks=grid,
            registers_per_thread=registers,
            shared_mem_bytes=shared_bytes,
            launches=1 + (1 if use_column else 0),   # second-stage reduction launch
        )

    # -------------------------------------------------------------------- work

    def flops(self, config: Mapping[str, Any], gpu: GPUSpec) -> float:
        k = float(self.num_localizations)
        return self.FLOPS_PER_PAIR * k * k

    def traffic(self, config: Mapping[str, Any], gpu: GPUSpec) -> MemoryTraffic:
        by = int(config["block_size_y"])
        ty = int(config["tile_size_y"])
        use_shared = int(config["use_shared_mem"])
        use_column = int(config["use_column"])
        n_y_blocks = int(config["n_y_blocks"])

        k = float(self.num_localizations)
        bytes_per_loc = 12.0  # x, y coordinates + sigma

        # Template localizations are read once per thread block row; model
        # localizations are streamed once per block row of the pair matrix -- staging
        # them in shared memory lets the whole block share one read, otherwise each
        # warp fetches its own copy and only the L2 limits the damage.
        reuse = max(by * ty, 1.0) * (8.0 if use_shared else 2.0)
        reads = k * bytes_per_loc + (k * k / reuse) * bytes_per_loc / 16.0
        writes = (n_y_blocks if use_column else 1) * 8.0 * max(k / 256.0, 1.0)

        return MemoryTraffic(read_bytes=reads, write_bytes=writes, efficiency=0.9)

    # ----------------------------------------------------------- compute efficiency

    def compute_efficiency(self, config: Mapping[str, Any], gpu: GPUSpec,
                           occupancy: OccupancyResult) -> float:
        tx = int(config["tile_size_x"])
        ty = int(config["tile_size_y"])
        ux = int(config["loop_unroll_factor_x"])
        uy = int(config["loop_unroll_factor_y"])
        use_shared = int(config["use_shared_mem"])
        use_column = int(config["use_column"])

        # exp() goes through the SFU, capping the sustained FMA fraction.  The SFU
        # bottleneck also flattens the landscape: most tiling/unrolling choices end up
        # within a few percent of each other (the paper's Fig. 2g shows random search
        # reaching 90% of optimal in about ten evaluations), so every efficiency
        # factor below is compressed towards 1.
        base = 0.48

        work = tx * ty
        best_work = 8 if gpu.architecture == "Turing" else 16
        work_factor = ilp_factor(work, best_work, falloff=0.03) ** 2
        unroll_factor = 0.75 + 0.125 * (ilp_factor(ux, 4) + ilp_factor(uy, 4))

        staging_factor = {0: 0.96, 1: 1.0, 2: 1.01}[use_shared]
        column_factor = 1.02 if use_column else 1.0

        return base * work_factor * unroll_factor * staging_factor * column_factor


def _reference(config: Mapping[str, Any], rng, num_localizations: int = 192, **kwargs: Any):
    """Reference driver bound to the benchmark (small default size for tests)."""
    return expdist_reference.run(config, rng, num_localizations=num_localizations, **kwargs)


def create_benchmark(num_localizations: int = 32768) -> KernelBenchmark:
    """Create the Expdist benchmark (paper-scale default: 32768 localizations per particle)."""
    space = SearchSpace(PARAMETERS, CONSTRAINTS, name="expdist")
    workload = Workload(
        name=f"{num_localizations}_localizations",
        sizes={"num_localizations": num_localizations},
        description="Gaussian registration score of two super-resolution particles",
    )
    model = ExpdistModel(num_localizations)
    return KernelBenchmark(
        name="expdist",
        display_name="Expdist",
        space=space,
        model=model,
        workload=workload,
        reference=_reference,
        description="Template-free particle fusion registration distance",
        application_domain="localization microscopy",
        origin="Heydarian et al. particle fusion pipeline",
        paper_table="Table VI",
    )
