"""Synthetic tuning scenarios: generated benchmarks beyond the paper's seven kernels.

The paper's suite is seven hand-modelled kernels; campaigns that stress the execution
subsystem (or train/evaluate tuners at scale) want *hundreds* of scenarios.  This
module mints them: :func:`create_benchmark` generates a complete
:class:`~repro.kernels.base.KernelBenchmark` -- discrete parameter table, vectorizable
string constraints, analytical value model with a deterministic failure mode -- from a
handful of JSON-serializable knobs, deterministically per seed.  Because the factory is
a module-level callable with JSON kwargs, a scenario is exactly the *picklable spec*
the open registry (:func:`repro.core.registry.register_benchmark`) and the
:mod:`repro.exec` worker contract require: parent and worker processes rebuild the
identical benchmark from ``("repro.kernels.synthetic:create_benchmark", kwargs)``
alone, so generated scenarios ride the parallel/checkpoint/resume machinery with
byte-identical caches.

Scenario families
-----------------
``"separable"``
    A rastrigin-like surface: per-parameter quadratic bowls plus cosine ripple.
    Parameters contribute independently, so local search climbs it well -- lots of
    shallow local minima, one global basin.
``"coupled"``
    A rosenbrock-like surface: consecutive parameters are coupled through a curved
    valley, so greedy one-parameter moves stall and the scenario is genuinely harder
    for Hamming-neighbourhood optimizers.

Both families place their optimum *per device* (a deterministic shift derived from the
GPU name via :func:`repro.gpus.noise.stable_hash`), so portability analyses see optima
move between architectures just like the real kernels.  The failure model is equally
deterministic: a configurable fraction of configurations raise
:class:`~repro.core.errors.ResourceLimitError` with a stable error string, which is
what keeps serial and parallel campaign caches byte-identical.
"""

from __future__ import annotations

import math
# repro: allow[RPL001] only seeded random.Random(stable_hash(...)) instances are
# built below; the module-level global-state functions are never called
import random
from typing import Any, Mapping, Sequence

from repro.core.constraints import ConstraintSet
from repro.core.errors import ReproError, ResourceLimitError
from repro.core.parameter import Parameter
from repro.core.searchspace import SearchSpace
from repro.gpus.noise import config_noise, stable_hash
from repro.gpus.occupancy import OccupancyResult
from repro.gpus.perfmodel import AnalyticalKernelModel, KernelLaunchConfig, ModelEstimate
from repro.gpus.specs import GPUSpec
from repro.kernels.base import KernelBenchmark, Workload

__all__ = [
    "FAMILIES",
    "FACTORY_SPEC",
    "SyntheticKernelModel",
    "create_benchmark",
    "synthetic_suite",
    "scenario_specs",
]

#: Scenario families (value-surface structure) this module can generate.
FAMILIES: tuple[str, ...] = ("separable", "coupled")

#: The ``"module:factory"`` spec string of :func:`create_benchmark` -- what
#: plan manifests and ``--benchmark-spec`` arguments name.
FACTORY_SPEC = "repro.kernels.synthetic:create_benchmark"

#: Denominator of the deterministic failure draw (see :meth:`_failure_draw`).
_FAILURE_BUCKETS = 2**32


class SyntheticKernelModel(AnalyticalKernelModel):
    """Analytical value model of one generated scenario.

    The model bypasses the roofline combiner: the simulated runtime is an explicit
    function of the configuration's normalized digit coordinates (family-dependent,
    see the module docstring), scaled to ``base_time_ms`` and perturbed by the same
    deterministic lognormal noise the kernel models use.  ``occupancy`` and
    ``estimate`` share one failure draw, so validity checks and measurements can
    never disagree about which configurations fail.

    Parameters
    ----------
    name:
        Scenario name (seeds the noise and failure hashes).
    family:
        ``"separable"`` or ``"coupled"``.
    parameters:
        The generated parameter tuple (defines the digit coordinates).
    weights / ripples / frequencies:
        Per-parameter surface coefficients, generated once per seed.
    failure_rate:
        Fraction of (configuration, device) pairs that raise
        :class:`~repro.core.errors.ResourceLimitError`.
    base_time_ms:
        Runtime scale of the scenario.
    device_shift:
        Amplitude of the per-device optimum shift in normalized coordinates.
    """

    def __init__(self, name: str, family: str, parameters: Sequence[Parameter],
                 weights: Sequence[float], ripples: Sequence[float],
                 frequencies: Sequence[int], failure_rate: float,
                 base_time_ms: float, device_shift: float = 0.35,
                 noise_sigma: float = 0.015):
        super().__init__(name, occupancy_saturation=0.45, noise_sigma=noise_sigma)
        self.family = family
        self.failure_rate = float(failure_rate)
        self.base_time_ms = float(base_time_ms)
        self.device_shift = float(device_shift)
        self._weights = tuple(float(w) for w in weights)
        self._ripples = tuple(float(r) for r in ripples)
        self._frequencies = tuple(int(k) for k in frequencies)
        self._names = tuple(p.name for p in parameters)
        self._positions: tuple[dict[Any, int], ...] = tuple(
            {value: j for j, value in enumerate(p.values)} for p in parameters)
        self._spans = tuple(max(p.cardinality - 1, 1) for p in parameters)

    # ----------------------------------------------------------------- coordinates

    def _coordinates(self, config: Mapping[str, Any]) -> list[float]:
        """Normalized digit coordinates in ``[0, 1]`` per parameter."""
        coords = []
        for name, positions, span in zip(self._names, self._positions, self._spans):
            try:
                digit = positions[config[name]]
            except KeyError:
                raise ReproError(
                    f"configuration value {config.get(name)!r} for {name!r} is not "
                    f"part of scenario {self.name!r}") from None
            coords.append(digit / span)
        return coords

    def _device_center(self, gpu: GPUSpec, j: int) -> float:
        """Optimum location of parameter ``j`` on ``gpu`` (deterministic)."""
        draw = stable_hash("synthetic-center", gpu.name, self.name, j) % _FAILURE_BUCKETS
        offset = (draw / _FAILURE_BUCKETS - 0.5) * 2.0 * self.device_shift
        return min(max(0.5 + offset, 0.0), 1.0)

    # ---------------------------------------------------------------- failure model

    def _failure_draw(self, config: Mapping[str, Any], gpu: GPUSpec) -> bool:
        """Deterministic, process-stable failure verdict for one configuration."""
        if self.failure_rate <= 0.0:
            return False
        draw = stable_hash("synthetic-fail", gpu.name, self.name, config)
        return (draw % _FAILURE_BUCKETS) / _FAILURE_BUCKETS < self.failure_rate

    def _check_launchable(self, config: Mapping[str, Any], gpu: GPUSpec) -> None:
        if self._failure_draw(config, gpu):
            raise ResourceLimitError(
                f"synthetic scenario {self.name!r} rejects this configuration on "
                f"{gpu.name} (deterministic failure model, "
                f"rate {self.failure_rate:g})", resource="synthetic")

    # --------------------------------------------------------------- value surface

    def surface(self, config: Mapping[str, Any], gpu: GPUSpec) -> float:
        """Family value surface over the normalized coordinates (>= 0)."""
        x = self._coordinates(config)
        centers = [self._device_center(gpu, j) for j in range(len(x))]
        if self.family == "separable":
            total = 0.0
            for xj, cj, w, amp, k in zip(x, centers, self._weights,
                                         self._ripples, self._frequencies):
                d = xj - cj
                total += w * (d * d + amp * (1.0 - math.cos(2.0 * math.pi * k * d)))
            return total
        # Coupled (rosenbrock-like): consecutive coordinates share a curved valley
        # whose position shifts per device.
        y = [0.15 + 0.7 * xj + 0.3 * (cj - 0.5) for xj, cj in zip(x, centers)]
        total = 0.0
        for j in range(len(y) - 1):
            w = self._weights[j]
            total += w * (4.0 * (y[j + 1] - y[j] * y[j]) ** 2
                          + 0.25 * (1.0 - y[j]) ** 2)
        if len(y) == 1:  # degenerate single-parameter scenario
            total = self._weights[0] * (1.0 - y[0]) ** 2
        return total

    # ------------------------------------------------------------------ model API

    def occupancy(self, config: Mapping[str, Any], gpu: GPUSpec) -> OccupancyResult:
        """Launch feasibility check; raises for failure-model configurations."""
        self._check_launchable(config, gpu)
        return OccupancyResult(blocks_per_sm=4, active_warps=16, occupancy=0.5,
                               limiting_factor="synthetic", warps_per_block=4)

    def estimate(self, config: Mapping[str, Any], gpu: GPUSpec,
                 with_noise: bool = True) -> ModelEstimate:
        """Simulated measurement of one configuration (see the class docstring)."""
        self._check_launchable(config, gpu)
        occ = OccupancyResult(blocks_per_sm=4, active_warps=16, occupancy=0.5,
                              limiting_factor="synthetic", warps_per_block=4)
        launch = KernelLaunchConfig(threads_per_block=128, grid_blocks=1024,
                                    registers_per_thread=32.0, shared_mem_bytes=0.0)
        surface = self.surface(config, gpu)
        total = self.base_time_ms * (0.2 + surface)
        factors = {"surface": surface}
        if with_noise:
            noise = config_noise(gpu.name, self.name, config, sigma=self.noise_sigma)
            total *= noise
            factors["noise"] = noise
        return ModelEstimate(time_ms=float(total), compute_time_ms=float(total),
                             memory_time_ms=0.0, occupancy=occ, launch=launch,
                             factors=factors)


# ----------------------------------------------------------------- space generation


def _generate_parameters(rng: random.Random, radix_profile: Sequence[int]
                         ) -> tuple[Parameter, ...]:
    """Ordered numeric parameters with seeded value ladders."""
    parameters = []
    for j, radix in enumerate(radix_profile):
        kind = rng.choice(("pow2", "linear", "odd"))
        if kind == "pow2":
            start = rng.choice((1, 2, 4))
            values = tuple(start << i for i in range(radix))
        elif kind == "linear":
            start = rng.randrange(1, 9)
            step = rng.randrange(1, 5)
            values = tuple(start + step * i for i in range(radix))
        else:
            offset = rng.randrange(0, 4)
            values = tuple(2 * (offset + i) + 1 for i in range(radix))
        parameters.append(Parameter(f"p{j}", values,
                                    description=f"synthetic {kind} ladder"))
    return tuple(parameters)


def _quantile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank quantile of a pre-sorted sequence."""
    rank = min(int(q * len(sorted_values)), len(sorted_values) - 1)
    return sorted_values[rank]


def _generate_constraints(rng: random.Random, parameters: Sequence[Parameter],
                          constraint_density: float) -> list[str]:
    """Seeded constraint expressions inside the vectorizable subset.

    Each constraint keeps a known (seeded) fraction of its parameter pair feasible,
    so densities below ~1 cannot accidentally empty the space.
    """
    n_constraints = int(round(constraint_density * len(parameters)))
    expressions: list[str] = []
    for _ in range(n_constraints):
        if len(parameters) >= 2:
            a, b = rng.sample(range(len(parameters)), 2)
        else:
            a = b = 0
        pa, pb = parameters[a], parameters[b]
        template = rng.choice(("product", "sum", "exclude"))
        if template == "product" and a != b:
            products = sorted(float(va) * float(vb)
                              for va in pa.values for vb in pb.values)
            limit = _quantile(products, rng.uniform(0.6, 0.95))
            expressions.append(f"{pa.name} * {pb.name} <= {int(limit)}")
        elif template == "sum" and a != b:
            sums = sorted(float(va) + float(vb)
                          for va in pa.values for vb in pb.values)
            limit = _quantile(sums, rng.uniform(0.6, 0.95))
            expressions.append(f"{pa.name} + {pb.name} <= {int(limit)}")
        else:
            dropped = rng.choice(pa.values[1:]) if pa.cardinality > 1 else None
            if dropped is not None:
                expressions.append(f"{pa.name} != {dropped}")
    return expressions


def create_benchmark(name: str = "synthetic", family: str = "separable",
                     dimensions: int = 5, radix_profile: Sequence[int] | None = None,
                     constraint_density: float = 0.5, failure_rate: float = 0.05,
                     seed: int = 0, base_time_ms: float = 1.0,
                     min_radix: int = 3, max_radix: int = 6) -> KernelBenchmark:
    """Generate one synthetic scenario as a full :class:`KernelBenchmark`.

    Every argument is JSON-serializable, so ``(FACTORY_SPEC, kwargs)`` is a valid
    :class:`~repro.core.registry.BenchmarkSpec` and the scenario can be registered,
    planned, executed in worker processes and resumed from a manifest.  The same
    arguments always generate the same benchmark (space, constraints, surface
    coefficients and failure draws are all pure functions of the arguments).

    Parameters
    ----------
    name:
        Scenario name (also seeds the noise/failure hashes, so two scenarios with
        different names have different landscapes even at the same seed).
    family:
        ``"separable"`` (rastrigin-like) or ``"coupled"`` (rosenbrock-like).
    dimensions:
        Number of tunable parameters.
    radix_profile:
        Explicit per-parameter value counts; default draws each from
        ``[min_radix, max_radix]`` with the scenario's RNG.
    constraint_density:
        Expected constraints per parameter (``round(density * dimensions)`` total),
        generated from feasibility-preserving vectorizable templates.
    failure_rate:
        Fraction of (configuration, device) pairs the failure model rejects.
    seed:
        Generator seed.
    base_time_ms:
        Runtime scale of the simulated measurements.
    """
    if family not in FAMILIES:
        raise ReproError(f"unknown synthetic family {family!r}; choose from {FAMILIES}")
    if dimensions < 1:
        raise ReproError(f"dimensions must be >= 1, got {dimensions}")
    # The space depends on (name, seed) but not on the family, so the two value
    # surfaces can be compared on identical spaces at the same seed.
    rng = random.Random(stable_hash("synthetic-scenario", name, seed))
    if radix_profile is None:
        radix_profile = [rng.randint(min_radix, max_radix) for _ in range(dimensions)]
    else:
        radix_profile = [int(r) for r in radix_profile]
        if len(radix_profile) != dimensions:
            raise ReproError(
                f"radix_profile has {len(radix_profile)} entries, expected "
                f"{dimensions}")
        if any(r < 2 for r in radix_profile):
            raise ReproError("every radix must be >= 2")

    parameters = _generate_parameters(rng, radix_profile)
    expressions = _generate_constraints(rng, parameters, constraint_density)
    # Constraints are generated feasibility-preserving, but compounded templates can
    # still conspire against tiny spaces; dropping from the back keeps the result a
    # pure function of the arguments.  Emptiness is checked exactly (the feasible
    # block stream stops at the first surviving point), never by a sampled count
    # estimate -- an estimate rounding to zero on a sparse-but-feasible space would
    # silently discard valid constraints.
    while True:
        space = SearchSpace(parameters, ConstraintSet(expressions),
                            name=name, memoize_threshold=None)
        if not expressions or next(iter(space._iter_feasible_blocks()), None) is not None:
            break
        expressions = expressions[:-1]

    weights = [rng.uniform(0.5, 2.0) for _ in range(dimensions)]
    ripples = [rng.uniform(0.05, 0.3) for _ in range(dimensions)]
    frequencies = [rng.randint(1, 3) for _ in range(dimensions)]
    model = SyntheticKernelModel(name, family, parameters, weights, ripples,
                                 frequencies, failure_rate, base_time_ms)
    workload = Workload(
        name=f"{family}-d{dimensions}-s{seed}",
        sizes={"family": family, "dimensions": dimensions, "seed": seed,
               "constraint_density": constraint_density,
               "failure_rate": failure_rate, "base_time_ms": base_time_ms,
               "radix_profile": list(radix_profile)},
        description="Generated synthetic tuning scenario (no physical kernel)",
    )
    return KernelBenchmark(
        name=name,
        display_name=name.replace("_", " ").title(),
        space=space,
        model=model,
        workload=workload,
        reference=None,
        description=f"Synthetic {family} scenario generated from seed {seed}",
        application_domain="synthetic benchmarking",
        origin="repro.kernels.synthetic",
        paper_table="generated",
    )


def scenario_specs(count: int = 8, families: Sequence[str] = FAMILIES,
                   base_seed: int = 0, **overrides: Any) -> dict[str, dict[str, Any]]:
    """Spec dictionaries for a sweep of ``count`` scenarios.

    Returns ``{name: {"factory": FACTORY_SPEC, "kwargs": {...}}}`` -- directly
    consumable by :func:`repro.core.registry.register_benchmark`, a
    :class:`~repro.exec.planner.ShardPlanner`, or repeated ``--benchmark-spec``
    CLI arguments.  Families alternate; seeds increment from ``base_seed``.
    """
    specs: dict[str, dict[str, Any]] = {}
    for i in range(count):
        family = families[i % len(families)]
        name = f"syn_{family}_{base_seed + i:03d}"
        kwargs: dict[str, Any] = {"name": name, "family": family,
                                  "seed": base_seed + i}
        kwargs.update(overrides)
        specs[name] = {"factory": FACTORY_SPEC, "kwargs": kwargs}
    return specs


def synthetic_suite(count: int = 8, families: Sequence[str] = FAMILIES,
                    base_seed: int = 0, **overrides: Any) -> dict[str, KernelBenchmark]:
    """Instantiate a sweep of generated scenarios, keyed by name."""
    from repro.core.registry import BenchmarkSpec

    return {name: BenchmarkSpec.from_dict(spec).build()
            for name, spec in scenario_specs(count, families, base_seed,
                                             **overrides).items()}
