"""Single source of truth for the package version."""

__version__ = "2.0.0"
