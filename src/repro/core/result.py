"""Observations and tuning results.

Every kernel launch a tuner requests produces an :class:`Observation`: the configuration
that was tried, the measured objective value (kernel runtime in milliseconds for every
BAT benchmark), and whether the configuration was valid on the target device.  A whole
tuning run is summarised by a :class:`TuningResult`, which keeps the ordered observation
list plus convenience accessors for the convergence analyses of the paper (Fig. 2).

Lazy configurations
-------------------
The index-native tuner runtime (:meth:`repro.core.problem.TuningProblem.evaluate_index`)
identifies configurations by their mixed-radix space index and never touches
dictionaries in its hot loop.  Observations it produces carry a :class:`LazyConfig` --
a read-only mapping that materialises the configuration dictionary from the space's
value columns on first access and caches it.  Convergence traces, budget accounting
and best-so-far tracking read only ``value``/``valid``, so for most observations the
dictionary is never built; serialization, ``best_config`` and equality comparisons see
exactly the dictionary the dict-based path would have produced (same values, same
parameter order).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.core.errors import ReproError
from repro.core.searchspace import config_key

__all__ = ["LazyConfig", "Observation", "TuningResult"]


class LazyConfig(Mapping):
    """Configuration mapping materialised on demand from ``(space, index)``.

    Behaves exactly like the dictionary ``space.config_at(index)`` under every
    :class:`~typing.Mapping` operation (lookup, iteration, ``dict(...)`` conversion,
    equality against plain dictionaries in either direction) but defers building it
    until something actually reads a key.  Instances are read-only and un-hashable,
    like any mapping view; use :func:`~repro.core.searchspace.config_key` (or
    :attr:`space_index`) as a key.
    """

    __slots__ = ("_space", "_index", "_config")

    def __init__(self, space: Any, index: int):
        self._space = space
        self._index = index
        self._config: dict[str, Any] | None = None

    @property
    def space_index(self) -> int:
        """Mixed-radix index of this configuration in its search space."""
        return self._index

    def _materialize(self) -> dict[str, Any]:
        config = self._config
        if config is None:
            config = self._space.config_at(self._index)
            self._config = config
        return config

    def __getitem__(self, key: str) -> Any:
        return self._materialize()[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._materialize())

    def __len__(self) -> int:
        return len(self._space.parameters)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return repr(self._materialize())


@dataclass(frozen=True)
class Observation:
    """A single evaluated configuration.

    Attributes
    ----------
    config:
        The configuration dictionary that was evaluated.
    value:
        The measured objective (kernel time in milliseconds; ``math.inf`` for invalid
        configurations, mirroring how real tuners score failed compilations).
    valid:
        False when the configuration failed constraints or device limits.
    error:
        Optional reason string when ``valid`` is False.
    evaluation_index:
        0-based position of this observation within its tuning run.
    gpu:
        Name of the (simulated) device the measurement was taken on.
    benchmark:
        Name of the benchmark kernel.
    """

    config: Mapping[str, Any]
    value: float
    valid: bool = True
    error: str = ""
    evaluation_index: int = -1
    gpu: str = ""
    benchmark: str = ""

    def __post_init__(self) -> None:
        # Lazy configurations stay lazy (the copy would defeat them); everything
        # else is snapshotted so later caller-side mutation cannot corrupt results.
        if not isinstance(self.config, LazyConfig):
            object.__setattr__(self, "config", dict(self.config))

    @classmethod
    def fast(cls, config: Mapping[str, Any], value: float, valid: bool, error: str,
             evaluation_index: int, gpu: str, benchmark: str) -> "Observation":
        """Allocation fast path for the index-native runtime.

        Field-for-field identical to the dataclass constructor but writes the
        instance dictionary directly, skipping the frozen-field ``__setattr__``
        machinery and ``__post_init__`` -- the caller guarantees ``config`` is
        already a :class:`LazyConfig` or a dictionary it owns.  Millions of
        observations per campaign make this worth the byte of ugliness.
        """
        obs = cls.__new__(cls)
        obs.__dict__.update(config=config, value=value, valid=valid, error=error,
                            evaluation_index=evaluation_index, gpu=gpu,
                            benchmark=benchmark)
        return obs

    @property
    def key(self) -> tuple[tuple[str, Any], ...]:
        """Hashable canonical key of the configuration."""
        return config_key(self.config)

    @property
    def is_failure(self) -> bool:
        """True when the configuration could not be measured."""
        return (not self.valid) or not math.isfinite(self.value)

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form."""
        return {
            "config": dict(self.config),
            "value": None if not math.isfinite(self.value) else self.value,
            "valid": self.valid,
            "error": self.error,
            "evaluation_index": self.evaluation_index,
            "gpu": self.gpu,
            "benchmark": self.benchmark,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Observation":
        """Inverse of :meth:`to_dict`."""
        value = data.get("value")
        return cls(
            config=dict(data["config"]),
            value=math.inf if value is None else float(value),
            valid=bool(data.get("valid", True)),
            error=data.get("error", ""),
            evaluation_index=int(data.get("evaluation_index", -1)),
            gpu=data.get("gpu", ""),
            benchmark=data.get("benchmark", ""),
        )


class TuningResult:
    """Ordered record of one tuning run (one tuner, one problem, one budget).

    The class intentionally exposes the quantities the paper's evaluation needs:

    * :meth:`best_observation` / :attr:`best_value` -- final tuning outcome;
    * :meth:`best_value_trace` -- best-so-far after each evaluation (convergence, Fig. 2);
    * :meth:`relative_performance_trace` -- the same trace normalised by a known optimum.
    """

    def __init__(self, benchmark: str = "", gpu: str = "", tuner: str = "",
                 seed: int | None = None,
                 observations: Iterable[Observation] = ()):
        self.benchmark = benchmark
        self.gpu = gpu
        self.tuner = tuner
        self.seed = seed
        self._observations: list[Observation] = list(observations)
        self.metadata: dict[str, Any] = {}

    # -------------------------------------------------------------------- recording

    def record(self, observation: Observation) -> None:
        """Append one observation."""
        self._observations.append(observation)

    def extend(self, observations: Iterable[Observation]) -> None:
        """Append many observations."""
        self._observations.extend(observations)

    # ---------------------------------------------------------------------- queries

    @property
    def observations(self) -> tuple[Observation, ...]:
        """All observations in evaluation order."""
        return tuple(self._observations)

    def __len__(self) -> int:
        return len(self._observations)

    def __iter__(self) -> Iterator[Observation]:
        return iter(self._observations)

    @property
    def num_evaluations(self) -> int:
        """Total number of evaluations performed (valid and invalid)."""
        return len(self._observations)

    @property
    def num_valid(self) -> int:
        """Number of successful measurements."""
        return sum(1 for o in self._observations if not o.is_failure)

    @property
    def num_failures(self) -> int:
        """Number of failed/invalid configurations encountered."""
        return len(self._observations) - self.num_valid

    @property
    def best_observation(self) -> Observation:
        """The observation with the lowest finite objective value.

        Raises
        ------
        ReproError
            If the run contains no successful measurement.
        """
        valid = [o for o in self._observations if not o.is_failure]
        if not valid:
            raise ReproError("tuning run produced no valid observation")
        return min(valid, key=lambda o: o.value)

    @property
    def best_value(self) -> float:
        """Lowest objective value found (``math.inf`` if nothing succeeded)."""
        try:
            return self.best_observation.value
        except ReproError:
            return math.inf

    @property
    def best_config(self) -> dict[str, Any]:
        """Configuration of :attr:`best_observation`."""
        return dict(self.best_observation.config)

    def unique_configs(self) -> int:
        """Number of distinct configurations evaluated."""
        return len({o.key for o in self._observations})

    # ------------------------------------------------------------------ convergence

    def values(self) -> np.ndarray:
        """Objective values in evaluation order (inf for failures)."""
        return np.array([o.value if not o.is_failure else math.inf
                         for o in self._observations], dtype=float)

    def best_value_trace(self) -> np.ndarray:
        """Best-so-far objective after each evaluation (running minimum)."""
        vals = self.values()
        if vals.size == 0:
            return vals
        return np.minimum.accumulate(vals)

    def relative_performance_trace(self, optimum: float) -> np.ndarray:
        """Best-so-far *relative performance* ``optimum / best_so_far`` in ``[0, 1]``.

        This is the y-axis of the paper's Fig. 2: 1.0 means the known optimum has been
        found.  Entries before the first valid measurement are 0.
        """
        if optimum <= 0 or not math.isfinite(optimum):
            raise ReproError(f"optimum must be a positive finite runtime, got {optimum}")
        trace = self.best_value_trace()
        out = np.zeros_like(trace)
        finite = np.isfinite(trace)
        out[finite] = optimum / trace[finite]
        return out

    def evaluations_to_reach(self, threshold: float, optimum: float) -> int | None:
        """Number of evaluations needed to reach ``threshold`` relative performance.

        Returns None if the run never reaches the threshold.
        """
        rel = self.relative_performance_trace(optimum)
        hits = np.nonzero(rel >= threshold)[0]
        return int(hits[0]) + 1 if hits.size else None

    # ------------------------------------------------------------------ serialization

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form of the whole run."""
        return {
            "benchmark": self.benchmark,
            "gpu": self.gpu,
            "tuner": self.tuner,
            "seed": self.seed,
            "metadata": dict(self.metadata),
            "observations": [o.to_dict() for o in self._observations],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TuningResult":
        """Inverse of :meth:`to_dict`."""
        result = cls(
            benchmark=data.get("benchmark", ""),
            gpu=data.get("gpu", ""),
            tuner=data.get("tuner", ""),
            seed=data.get("seed"),
            observations=(Observation.from_dict(d) for d in data.get("observations", ())),
        )
        result.metadata.update(data.get("metadata", {}))
        return result

    # ------------------------------------------------------------------------- misc

    def summary(self) -> dict[str, Any]:
        """Small dictionary used by reports and example scripts."""
        return {
            "benchmark": self.benchmark,
            "gpu": self.gpu,
            "tuner": self.tuner,
            "evaluations": self.num_evaluations,
            "valid": self.num_valid,
            "failures": self.num_failures,
            "best_value": self.best_value,
            "best_config": (dict(self.best_observation.config)
                            if self.num_valid else None),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"TuningResult(benchmark={self.benchmark!r}, gpu={self.gpu!r}, "
                f"tuner={self.tuner!r}, evaluations={self.num_evaluations}, "
                f"best={self.best_value:.4g})")


def merge_results(results: Sequence[TuningResult]) -> TuningResult:
    """Concatenate several runs of the same (benchmark, gpu) pair into one result.

    Used by portfolio tuners and by the campaign code when observations are gathered
    in chunks.  Tuner name becomes a ``+``-joined list.
    """
    if not results:
        raise ReproError("cannot merge an empty list of results")
    benchmarks = {r.benchmark for r in results}
    gpus = {r.gpu for r in results}
    if len(benchmarks) > 1 or len(gpus) > 1:
        raise ReproError(f"cannot merge results across benchmarks {benchmarks} / gpus {gpus}")
    merged = TuningResult(
        benchmark=results[0].benchmark,
        gpu=results[0].gpu,
        tuner="+".join(dict.fromkeys(r.tuner for r in results if r.tuner)),
        seed=results[0].seed,
    )
    for r in results:
        merged.extend(r.observations)
    return merged
