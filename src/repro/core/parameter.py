"""Tunable parameter definitions.

Every BAT 2.0 benchmark exposes its tuning knobs as *discrete, ordered* parameters --
e.g. a thread-block dimension that may take the values ``{16, 32, 64, 128}`` or a
boolean switch ``{0, 1}``.  The order of the values matters for two reasons:

* local-search neighbourhoods and the fitness-flow graph (Fig. 3 of the paper) are
  defined in terms of "adjacent" values;
* mixed-radix indexing of the Cartesian product (used for exhaustive enumeration and
  reproducible random sampling of enormous spaces such as Dedispersion's 1.2e8
  configurations) requires a stable per-parameter ordering.

The class is deliberately value-type agnostic: GPU tuning parameters are almost always
integers, but strings (e.g. algorithm selectors) and floats are supported as well.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence

import numpy as np

from repro.core.errors import InvalidConfigurationError

__all__ = ["Parameter"]


@dataclass(frozen=True)
class Parameter:
    """A single tunable parameter with a finite, ordered list of allowed values.

    Parameters
    ----------
    name:
        Identifier used as the key in configuration dictionaries (e.g. ``"block_size_x"``).
    values:
        Ordered sequence of allowed values.  Duplicates are rejected.
    default:
        The value used when a configuration does not mention this parameter (for
        reduced-space studies, Table VIII).  Defaults to the first value.
    description:
        Free-form human description, mirrored from the paper's parameter tables.

    Examples
    --------
    >>> p = Parameter("block_size_x", [32, 64, 128, 256])
    >>> p.cardinality
    4
    >>> p.index_of(128)
    2
    >>> p.neighbors(64)
    (32, 128)
    """

    name: str
    values: tuple[Any, ...]
    default: Any = None
    description: str = ""
    _index: dict[Any, int] = field(init=False, repr=False, compare=False, hash=False,
                                   default_factory=dict)

    def __init__(self, name: str, values: Sequence[Any], default: Any = None,
                 description: str = ""):
        if not name or not isinstance(name, str):
            raise InvalidConfigurationError("parameter name must be a non-empty string")
        vals = tuple(values)
        if len(vals) == 0:
            raise InvalidConfigurationError(
                f"parameter {name!r} must have at least one allowed value")
        if len(set(vals)) != len(vals):
            raise InvalidConfigurationError(
                f"parameter {name!r} has duplicate values: {vals}")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "values", vals)
        object.__setattr__(self, "default", vals[0] if default is None else default)
        object.__setattr__(self, "description", description)
        object.__setattr__(self, "_index", {v: i for i, v in enumerate(vals)})
        if self.default not in self._index:
            raise InvalidConfigurationError(
                f"default {self.default!r} of parameter {name!r} is not an allowed value")

    # ------------------------------------------------------------------ basic queries

    @property
    def cardinality(self) -> int:
        """Number of allowed values."""
        return len(self.values)

    @property
    def is_boolean(self) -> bool:
        """True if the parameter is a binary on/off switch."""
        return set(self.values) in ({0, 1}, {False, True})

    @property
    def is_numeric(self) -> bool:
        """True if every allowed value is an int/float (bool counts as numeric).

        Computed once and cached (the value tuple is frozen): the encoded-space
        codecs consult this per parameter on per-candidate hot paths.
        """
        cached = self.__dict__.get("_is_numeric")
        if cached is None:
            cached = all(isinstance(v, (int, float, np.integer, np.floating))
                         for v in self.values)
            object.__setattr__(self, "_is_numeric", cached)
        return cached

    def __contains__(self, value: Any) -> bool:
        return value in self._index

    def __iter__(self) -> Iterator[Any]:
        return iter(self.values)

    def __len__(self) -> int:
        return len(self.values)

    def __hash__(self) -> int:  # frozen dataclass with unhashable dict field
        return hash((self.name, self.values))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Parameter):
            return NotImplemented
        return self.name == other.name and self.values == other.values

    # ------------------------------------------------------------- index <-> value maps

    def index_of(self, value: Any) -> int:
        """Return the position of ``value`` in the ordered value list.

        Raises
        ------
        InvalidConfigurationError
            If ``value`` is not an allowed value of this parameter.
        """
        try:
            return self._index[value]
        except KeyError:
            raise InvalidConfigurationError(
                f"{value!r} is not an allowed value of parameter {self.name!r} "
                f"(allowed: {self.values})") from None

    def value_at(self, index: int) -> Any:
        """Return the value at ``index`` (supports negative indices like a tuple)."""
        try:
            return self.values[index]
        except IndexError:
            raise InvalidConfigurationError(
                f"index {index} out of range for parameter {self.name!r} "
                f"with {self.cardinality} values") from None

    # ------------------------------------------------------------------- neighbourhoods

    def neighbors(self, value: Any) -> tuple[Any, ...]:
        """Values adjacent to ``value`` in the ordered list (one step up/down).

        This is the neighbourhood used by adjacent-value local search.  Endpoints have
        a single neighbour.
        """
        i = self.index_of(value)
        out = []
        if i > 0:
            out.append(self.values[i - 1])
        if i + 1 < len(self.values):
            out.append(self.values[i + 1])
        return tuple(out)

    def all_other_values(self, value: Any) -> tuple[Any, ...]:
        """All allowed values except ``value`` (the Hamming-distance-1 neighbourhood)."""
        i = self.index_of(value)
        return self.values[:i] + self.values[i + 1:]

    # ------------------------------------------------------------------------ sampling

    def sample(self, rng: np.random.Generator) -> Any:
        """Draw one allowed value uniformly at random."""
        return self.values[int(rng.integers(0, len(self.values)))]

    def sample_index(self, rng: np.random.Generator) -> int:
        """Draw the index of an allowed value uniformly at random."""
        return int(rng.integers(0, len(self.values)))

    # ------------------------------------------------------------------ columnar views

    def values_array(self) -> np.ndarray:
        """The allowed values as a NumPy array suitable for batch constraint math.

        Numeric parameters use their natural dtype (``int64``/``float64``) so that
        vectorized constraint expressions compute exactly like the scalar path; all
        other value types fall back to ``object`` arrays, which preserve the original
        Python objects element-wise.  The array is built once and cached (the class is
        frozen, so the value tuple can never change).
        """
        cached = self.__dict__.get("_values_array")
        if cached is None:
            if self.is_numeric:
                cached = np.asarray(self.values)
            else:
                cached = np.empty(len(self.values), dtype=object)
                cached[:] = self.values
            cached.setflags(write=False)
            object.__setattr__(self, "_values_array", cached)
        return cached

    def values_object_array(self) -> np.ndarray:
        """The allowed values as an ``object`` array holding the original objects.

        Indexing this array with a digit vector yields the exact Python values the
        parameter was declared with (no NumPy scalar wrapping), which is what
        configuration dictionaries handed to users and serializers must contain.
        """
        cached = self.__dict__.get("_values_object_array")
        if cached is None:
            cached = np.empty(len(self.values), dtype=object)
            cached[:] = self.values
            cached.setflags(write=False)
            object.__setattr__(self, "_values_object_array", cached)
        return cached

    def digits_of(self, values: Sequence[Any]) -> np.ndarray:
        """Vector form of :meth:`index_of`: map many values to their digit positions."""
        index = self._index
        try:
            return np.fromiter((index[v] for v in values), dtype=np.int64,
                               count=len(values))
        except KeyError as exc:
            raise InvalidConfigurationError(
                f"{exc.args[0]!r} is not an allowed value of parameter {self.name!r} "
                f"(allowed: {self.values})") from None

    # ---------------------------------------------------------------------- encoding

    def numeric_values(self) -> np.ndarray:
        """Return the allowed values as a float array (ordinal positions for strings).

        Used by the ML substrate to encode configurations as feature vectors and
        by the encoded-space codecs of :class:`~repro.core.searchspace.SearchSpace`.
        Built once and cached read-only (the class is frozen), so per-candidate
        decode/encode in the population tuners never re-materialises it.
        """
        cached = self.__dict__.get("_numeric_values")
        if cached is None:
            if self.is_numeric:
                cached = np.asarray(self.values, dtype=float)
            else:
                cached = np.arange(len(self.values), dtype=float)
            cached.setflags(write=False)
            object.__setattr__(self, "_numeric_values", cached)
        return cached

    def encode(self, value: Any) -> float:
        """Encode one value as a float feature (the value itself, or its ordinal)."""
        if self.is_numeric:
            return float(value) if value in self._index else float(self.values[self.index_of(value)])
        return float(self.index_of(value))

    # ------------------------------------------------------------------- serialization

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable description of the parameter."""
        return {
            "name": self.name,
            "values": list(self.values),
            "default": self.default,
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Parameter":
        """Inverse of :meth:`to_dict`."""
        return cls(name=data["name"], values=data["values"],
                   default=data.get("default"), description=data.get("description", ""))

    # -------------------------------------------------------------------------- repr

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        vals = ", ".join(repr(v) for v in self.values[:6])
        if self.cardinality > 6:
            vals += f", ... ({self.cardinality} values)"
        return f"Parameter({self.name!r}, [{vals}])"
