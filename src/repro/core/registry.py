"""Registries of benchmarks, GPUs and tuners.

The paper's suite is valuable because it is *enumerable*: a researcher can ask "give me
all benchmarks" and "give me all devices" and sweep the cross product.  These helpers
provide exactly that, with lazy imports so that ``import repro`` stays cheap.

Open benchmark registry
-----------------------
The benchmark side of the registry is *open*: beyond the seven built-in BAT kernels,
:func:`register_benchmark` admits any factory that mints a
:class:`~repro.kernels.base.KernelBenchmark` -- for example the generated scenarios of
:mod:`repro.kernels.synthetic`.  Registration is **by picklable spec, not by live
object**: a spec is a ``"module:factory"`` string (plus JSON-serializable keyword
arguments), mirroring the worker contract of :mod:`repro.exec` -- shards carry names,
and every worker process rebuilds its registry from specs alone.  That is what lets a
runtime-registered scenario ride the parallel/checkpoint/resume machinery (and,
eventually, a multi-host executor) with caches byte-identical to the serial path:
parent and workers construct the benchmark from the same spec, so spaces, models and
error strings cannot diverge.
"""

from __future__ import annotations

import contextlib
import importlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping

from repro.core.errors import ReproError

__all__ = [
    "BenchmarkSpec",
    "benchmark_suite",
    "gpu_catalog",
    "tuner_catalog",
    "get_benchmark",
    "get_gpu",
    "get_tuner",
    "register_benchmark",
    "unregister_benchmark",
    "registered_benchmarks",
    "benchmark_spec",
    "temporary_benchmark",
]

#: Runtime-registered benchmark specs, keyed by normalized name.  Process-local by
#: design: worker processes receive the specs they need explicitly (see
#: :func:`repro.exec.worker.init_worker`) instead of inheriting mutable state.
_CUSTOM_SPECS: dict[str, "BenchmarkSpec"] = {}


def _normalize_benchmark_name(name: str) -> str:
    """Canonical registry key: lowercase with ``-``/spaces collapsed to ``_``."""
    return name.strip().lower().replace("-", "_").replace(" ", "_")


@dataclass(frozen=True)
class BenchmarkSpec:
    """A picklable description of how to build one benchmark.

    Attributes
    ----------
    factory:
        ``"module.path:attribute"`` string naming a module-level callable that
        returns a :class:`~repro.kernels.base.KernelBenchmark` (the attribute part
        may be dotted for nested access).
    kwargs:
        JSON-serializable keyword arguments passed to the factory.  They are
        canonicalized through a JSON round-trip at construction so that a spec
        that travelled through a plan manifest builds exactly the same benchmark
        as the original.
    """

    factory: str
    kwargs: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.factory, str) or ":" not in self.factory:
            raise ReproError(
                f"benchmark factory spec must be a 'module:callable' string, "
                f"got {self.factory!r}")
        module, _, attr = self.factory.partition(":")
        if not module or not attr:
            raise ReproError(
                f"benchmark factory spec must name both a module and a callable, "
                f"got {self.factory!r}")
        try:
            canonical = json.loads(json.dumps(self.kwargs))
        except (TypeError, ValueError) as exc:
            raise ReproError(
                f"benchmark spec kwargs must be JSON-serializable (they travel "
                f"through plan manifests and worker initializers): {exc}") from None
        object.__setattr__(self, "kwargs", canonical)

    # ------------------------------------------------------------------ construction

    @classmethod
    def parse(cls, spec: "BenchmarkSpec | str | Mapping[str, Any] | Callable[..., Any]",
              **kwargs: Any) -> "BenchmarkSpec":
        """Build a spec from any accepted form.

        Accepted forms: an existing spec, a ``"module:factory"`` string, a mapping
        ``{"factory": ..., "kwargs": {...}}`` (the :meth:`to_dict` form), or a
        module-level callable (converted to its import path and verified to
        resolve back to the same object -- lambdas, closures and bound methods are
        rejected because worker processes could never rebuild them).
        """
        if isinstance(spec, cls):
            if kwargs:
                return cls(spec.factory, {**spec.kwargs, **kwargs})
            return spec
        if isinstance(spec, str):
            return cls(spec, dict(kwargs))
        if isinstance(spec, Mapping):
            merged = dict(spec.get("kwargs", {}))
            merged.update(kwargs)
            return cls(spec["factory"], merged)
        if callable(spec):
            module = getattr(spec, "__module__", None)
            qualname = getattr(spec, "__qualname__", "")
            path = f"{module}:{qualname}"
            if (module is None or "<" in qualname or "." in qualname
                    or module == "__main__"):
                raise ReproError(
                    f"benchmark factories must be picklable specs, not live "
                    f"objects: {spec!r} is not an importable module-level "
                    f"callable; pass a 'module:factory' string (with keyword "
                    f"arguments for parametrization) instead")
            resolved = cls(path, dict(kwargs))
            if resolved.resolve() is not spec:
                raise ReproError(
                    f"benchmark factory {spec!r} does not resolve back from "
                    f"{path!r}; register an importable module-level callable")
            return resolved
        raise ReproError(f"cannot interpret benchmark spec {spec!r}")

    # ------------------------------------------------------------------- resolution

    def resolve(self) -> Callable[..., Any]:
        """Import and return the factory callable."""
        module_name, _, attr = self.factory.partition(":")
        try:
            module = importlib.import_module(module_name)
        except ImportError as exc:
            raise ReproError(
                f"cannot import module {module_name!r} of benchmark spec "
                f"{self.factory!r}: {exc}") from None
        target: Any = module
        for part in attr.split("."):
            try:
                target = getattr(target, part)
            except AttributeError:
                raise ReproError(
                    f"module {module_name!r} has no attribute {attr!r} "
                    f"(benchmark spec {self.factory!r})") from None
        if not callable(target):
            raise ReproError(f"benchmark spec {self.factory!r} is not callable")
        return target

    def build(self) -> Any:
        """Construct a fresh benchmark instance from this spec."""
        benchmark = self.resolve()(**self.kwargs)
        if not hasattr(benchmark, "space") or not hasattr(benchmark, "name"):
            raise ReproError(
                f"benchmark spec {self.factory!r} built {benchmark!r}, which does "
                f"not look like a KernelBenchmark (no 'space'/'name' attributes)")
        return benchmark

    # ---------------------------------------------------------------- serialization

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form (stored in plan manifests)."""
        return {"factory": self.factory, "kwargs": dict(self.kwargs)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BenchmarkSpec":
        return cls(data["factory"], dict(data.get("kwargs", {})))


def _builtin_spec(name: str) -> BenchmarkSpec:
    """The implicit spec of one built-in kernel benchmark."""
    return BenchmarkSpec(f"repro.kernels.{name}:create_benchmark")


def register_benchmark(name: str,
                       factory: BenchmarkSpec | str | Mapping[str, Any] | Callable[..., Any],
                       /, overwrite: bool = False, validate: bool = True,
                       **kwargs: Any) -> BenchmarkSpec:
    """Register a custom benchmark under ``name``.

    Parameters
    ----------
    name:
        Registry key (normalized: lowercase, ``-``/spaces become ``_``).  Built-in
        kernel names cannot be shadowed.
    factory:
        Any form :meth:`BenchmarkSpec.parse` accepts -- a ``"module:factory"``
        string, a spec/spec-dict, or an importable module-level callable.  Live
        benchmark objects are deliberately *not* accepted: the registry stores
        picklable specs so that :mod:`repro.exec` workers (and future multi-host
        executors) can rebuild the benchmark by spec alone.
    overwrite:
        Allow replacing an existing custom registration.
    validate:
        Build the benchmark once now (catching broken factories at registration
        time) and require the built benchmark's ``name`` to match the registry
        key -- caches, plan units and output files all carry that name, so a
        mismatch would mislabel campaign data (and distinct registrations of a
        name-defaulting factory would silently share one noise/failure identity).
    **kwargs:
        JSON-serializable keyword arguments stored in the spec and passed to the
        factory on every build.  A factory whose own keywords collide with
        ``overwrite``/``validate`` can always be registered through the explicit
        spec form instead: ``register_benchmark(name, {"factory": ...,
        "kwargs": {...}})``.

    Returns
    -------
    BenchmarkSpec
        The stored spec (useful for plan manifests and worker initializers).
    """
    from repro.kernels import BENCHMARK_NAMES

    key = _normalize_benchmark_name(name)
    if not key:
        raise ReproError("benchmark name must be a non-empty string")
    if key in BENCHMARK_NAMES:
        raise ReproError(
            f"cannot register benchmark {name!r}: it would shadow the built-in "
            f"{key!r} kernel")
    if key in _CUSTOM_SPECS and not overwrite:
        raise ReproError(
            f"benchmark {name!r} is already registered "
            f"(pass overwrite=True to replace it)")
    spec = BenchmarkSpec.parse(factory, **kwargs)
    if validate:
        _require_matching_name(key, spec.build())
    _CUSTOM_SPECS[key] = spec
    return spec


def _require_matching_name(key: str, benchmark: Any) -> Any:
    """Refuse a built benchmark whose ``name`` disagrees with its registry key."""
    built_name = str(getattr(benchmark, "name", ""))
    if _normalize_benchmark_name(built_name) != key:
        raise ReproError(
            f"benchmark spec registered as {key!r} builds a benchmark named "
            f"{built_name!r}; pass the matching name to the factory (e.g. a "
            f"name={key!r} kwarg) so caches and plan units carry one identity")
    return benchmark


def unregister_benchmark(name: str) -> None:
    """Remove a custom benchmark registration."""
    key = _normalize_benchmark_name(name)
    if key not in _CUSTOM_SPECS:
        raise ReproError(
            f"benchmark {name!r} is not registered; registered custom benchmarks: "
            f"{sorted(_CUSTOM_SPECS)}")
    del _CUSTOM_SPECS[key]


@contextlib.contextmanager
def temporary_benchmark(name: str,
                        factory: BenchmarkSpec | str | Mapping[str, Any] | Callable[..., Any],
                        /, **kwargs: Any) -> Iterator[BenchmarkSpec]:
    """Context manager registering a benchmark for the enclosed block only.

    An existing registration under the same name is shadowed for the duration of
    the block and restored on exit.
    """
    key = _normalize_benchmark_name(name)
    displaced = _CUSTOM_SPECS.get(key)
    spec = register_benchmark(name, factory, overwrite=displaced is not None,
                              **kwargs)
    try:
        yield spec
    finally:
        if _CUSTOM_SPECS.get(key) is spec:
            if displaced is not None:
                _CUSTOM_SPECS[key] = displaced
            else:
                del _CUSTOM_SPECS[key]


def registered_benchmarks() -> dict[str, BenchmarkSpec]:
    """Specs of the runtime-registered custom benchmarks, keyed by name."""
    return dict(_CUSTOM_SPECS)


def benchmark_spec(name: str) -> BenchmarkSpec | None:
    """The spec a worker would rebuild ``name`` from, or None if unknown.

    Custom registrations win; built-in kernels answer with their implicit
    ``repro.kernels.<name>:create_benchmark`` spec.
    """
    from repro.kernels import BENCHMARK_NAMES

    key = _normalize_benchmark_name(name)
    if key in _CUSTOM_SPECS:
        return _CUSTOM_SPECS[key]
    if key in BENCHMARK_NAMES:
        return _builtin_spec(key)
    return None


def benchmark_suite() -> dict[str, Any]:
    """The seven BAT 2.0 kernels plus every registered custom benchmark.

    Returns fresh :class:`repro.kernels.base.KernelBenchmark` instances keyed by
    canonical lowercase name (built-ins first, in paper order).
    """
    from repro.kernels import all_benchmarks

    suite = all_benchmarks()
    for name, spec in _CUSTOM_SPECS.items():
        suite[name] = spec.build()
    return suite


def gpu_catalog() -> dict[str, Any]:
    """The four simulated GPUs used in the paper, keyed by name (e.g. ``"RTX_3090"``)."""
    from repro.gpus import all_gpus

    return all_gpus()


def tuner_catalog() -> dict[str, Callable[..., Any]]:
    """Factories for every optimizer shipped with the suite, keyed by name.

    Each value is a callable accepting ``seed=`` plus tuner-specific keyword options
    and returning a fresh tuner instance.
    """
    from repro.tuners import all_tuners

    return all_tuners()


def get_benchmark(name: str) -> Any:
    """Look up one benchmark by name (case-insensitive, ``-``/space tolerant).

    Resolves built-in kernels and runtime-registered custom benchmarks alike,
    with the same normalization :func:`get_gpu` applies to device names.
    """
    spec = benchmark_spec(name)
    if spec is None:
        from repro.kernels import BENCHMARK_NAMES

        available = sorted(set(BENCHMARK_NAMES) | set(_CUSTOM_SPECS))
        custom = (f"; registered custom benchmarks: {sorted(_CUSTOM_SPECS)}"
                  if _CUSTOM_SPECS else "")
        raise ReproError(
            f"unknown benchmark {name!r}; available: {available}{custom}")
    return spec.build()


def get_gpu(name: str) -> Any:
    """Look up one GPU spec by name (case-insensitive, ``-``/space tolerant)."""
    catalog = gpu_catalog()
    normalized = name.replace("-", "_").replace(" ", "_").upper()
    for key, value in catalog.items():
        if key.upper() == normalized:
            return value
    raise ReproError(f"unknown GPU {name!r}; available: {sorted(catalog)}")


def get_tuner(name: str, **kwargs: Any) -> Any:
    """Instantiate one tuner by name, forwarding keyword options to its factory."""
    catalog = tuner_catalog()
    key = name.lower().replace("-", "_")
    if key not in catalog:
        raise ReproError(f"unknown tuner {name!r}; available: {sorted(catalog)}")
    return catalog[key](**kwargs)
