"""Registries of benchmarks, GPUs and tuners.

The paper's suite is valuable because it is *enumerable*: a researcher can ask "give me
all benchmarks" and "give me all devices" and sweep the cross product.  These helpers
provide exactly that, with lazy imports so that ``import repro`` stays cheap.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.errors import ReproError

__all__ = [
    "benchmark_suite",
    "gpu_catalog",
    "tuner_catalog",
    "get_benchmark",
    "get_gpu",
    "get_tuner",
]


def benchmark_suite() -> dict[str, Any]:
    """All seven BAT 2.0 kernel benchmarks, keyed by canonical lowercase name.

    Returns fresh :class:`repro.kernels.base.KernelBenchmark` instances.
    """
    from repro.kernels import all_benchmarks

    return all_benchmarks()


def gpu_catalog() -> dict[str, Any]:
    """The four simulated GPUs used in the paper, keyed by name (e.g. ``"RTX_3090"``)."""
    from repro.gpus import all_gpus

    return all_gpus()


def tuner_catalog() -> dict[str, Callable[..., Any]]:
    """Factories for every optimizer shipped with the suite, keyed by name.

    Each value is a callable accepting ``seed=`` plus tuner-specific keyword options
    and returning a fresh tuner instance.
    """
    from repro.tuners import all_tuners

    return all_tuners()


def get_benchmark(name: str) -> Any:
    """Look up one benchmark by (case-insensitive) name."""
    suite = benchmark_suite()
    key = name.lower()
    if key not in suite:
        raise ReproError(f"unknown benchmark {name!r}; available: {sorted(suite)}")
    return suite[key]


def get_gpu(name: str) -> Any:
    """Look up one GPU spec by name (case-insensitive, ``-``/space tolerant)."""
    catalog = gpu_catalog()
    normalized = name.replace("-", "_").replace(" ", "_").upper()
    for key, value in catalog.items():
        if key.upper() == normalized:
            return value
    raise ReproError(f"unknown GPU {name!r}; available: {sorted(catalog)}")


def get_tuner(name: str, **kwargs: Any) -> Any:
    """Instantiate one tuner by name, forwarding keyword options to its factory."""
    catalog = tuner_catalog()
    key = name.lower().replace("-", "_")
    if key not in catalog:
        raise ReproError(f"unknown tuner {name!r}; available: {sorted(catalog)}")
    return catalog[key](**kwargs)
