"""Search spaces: ordered parameter collections with constraints.

The :class:`SearchSpace` is the central data structure of the suite.  It is shared by

* the benchmarks, which define their tunable parameters (Tables I--VII of the paper)
  and static constraints,
* the tuners, which ask for random samples, neighbourhoods and index mappings,
* the analysis layer, which needs exhaustive enumeration (Figs. 1--6) and the
  cardinality bookkeeping of Table VIII.

Design notes
------------

*Mixed-radix indexing.*  Every point of the (unconstrained) Cartesian product is
identified by a single integer in ``[0, cardinality)`` using mixed-radix encoding with
the last parameter varying fastest.  This makes exhaustive enumeration, reproducible
sampling of gigantic spaces (Dedispersion has 1.2e8 points) and cache keys cheap and
deterministic, without ever materialising the product.

*Neighbourhoods.*  Two neighbourhood structures are provided, matching the two used in
the literature the paper builds on:

* ``"adjacent"`` -- one step up/down in each parameter's ordered value list (what most
  local-search tuners use);
* ``"hamming"`` -- all configurations that differ in exactly one parameter, regardless
  of distance in the value list (what Schoonhoven et al.'s fitness-flow graph uses).

*Vectorised encoding.*  :meth:`SearchSpace.encode_batch` converts a list of
configurations into a dense ``float64`` feature matrix in one NumPy pass per parameter;
this is the hot path feeding the ML substrate, so it avoids per-element Python work
where it can (see the HPC guide: vectorise the inner loop, not the outer API).
"""

from __future__ import annotations

import itertools
import math
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.core.constraints import Constraint, ConstraintSet
from repro.core.errors import (
    EmptySearchSpaceError,
    InvalidConfigurationError,
)
from repro.core.parameter import Parameter

__all__ = ["SearchSpace", "config_key"]

Config = dict[str, Any]


def config_key(config: Mapping[str, Any]) -> tuple[tuple[str, Any], ...]:
    """Canonical hashable key for a configuration (sorted by parameter name)."""
    return tuple(sorted(config.items()))


class SearchSpace:
    """A finite, constrained, discrete search space.

    Parameters
    ----------
    parameters:
        Ordered sequence of :class:`~repro.core.parameter.Parameter` objects.  Order is
        significant: it defines the mixed-radix indexing and the column order of
        encoded feature matrices.
    constraints:
        Optional constraints restricting the valid subset of the Cartesian product.
    name:
        Optional label used in reports.
    """

    def __init__(self, parameters: Sequence[Parameter],
                 constraints: ConstraintSet | Iterable[Constraint | str | Callable] | None = None,
                 name: str = ""):
        params = list(parameters)
        if not params:
            raise EmptySearchSpaceError("a search space needs at least one parameter")
        names = [p.name for p in params]
        if len(set(names)) != len(names):
            raise InvalidConfigurationError(f"duplicate parameter names: {names}")
        self._parameters: tuple[Parameter, ...] = tuple(params)
        self._by_name: dict[str, Parameter] = {p.name: p for p in params}
        if constraints is None:
            self._constraints = ConstraintSet()
        elif isinstance(constraints, ConstraintSet):
            self._constraints = constraints
        else:
            self._constraints = ConstraintSet(constraints)
        self.name = name
        # Mixed-radix place values: radix of the last parameter varies fastest.
        cards = [p.cardinality for p in self._parameters]
        place = [1] * len(cards)
        for i in range(len(cards) - 2, -1, -1):
            place[i] = place[i + 1] * cards[i + 1]
        self._place_values: tuple[int, ...] = tuple(place)
        self._cardinality: int = int(np.prod([1])) if not cards else math.prod(cards)

    # ------------------------------------------------------------------ basic queries

    @property
    def parameters(self) -> tuple[Parameter, ...]:
        """The ordered parameter tuple."""
        return self._parameters

    @property
    def parameter_names(self) -> tuple[str, ...]:
        """Names of all parameters in order."""
        return tuple(p.name for p in self._parameters)

    @property
    def constraints(self) -> ConstraintSet:
        """The static constraints of this space."""
        return self._constraints

    @property
    def cardinality(self) -> int:
        """Size of the unconstrained Cartesian product (Table VIII 'Cardinality')."""
        return self._cardinality

    @property
    def dimensions(self) -> int:
        """Number of tunable parameters."""
        return len(self._parameters)

    def __len__(self) -> int:
        return self._cardinality

    def __contains__(self, config: Mapping[str, Any]) -> bool:
        # ``config in space`` means "the tuner may evaluate this": membership in the
        # Cartesian product AND satisfaction of the static constraints.
        return self.is_valid(config)

    def parameter(self, name: str) -> Parameter:
        """Look up a parameter by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise InvalidConfigurationError(
                f"unknown parameter {name!r}; known: {self.parameter_names}") from None

    # --------------------------------------------------------------------- validation

    def validate_membership(self, config: Mapping[str, Any]) -> None:
        """Check that ``config`` names every parameter with an allowed value.

        Membership validation is independent of constraints: a configuration can be a
        member of the Cartesian product yet violate constraints.
        """
        missing = set(self._by_name) - set(config)
        if missing:
            raise InvalidConfigurationError(f"configuration missing parameters {sorted(missing)}")
        extra = set(config) - set(self._by_name)
        if extra:
            raise InvalidConfigurationError(f"configuration has unknown parameters {sorted(extra)}")
        for p in self._parameters:
            if config[p.name] not in p:
                raise InvalidConfigurationError(
                    f"value {config[p.name]!r} not allowed for parameter {p.name!r}")

    def is_valid(self, config: Mapping[str, Any]) -> bool:
        """True iff ``config`` is a member of the product *and* satisfies constraints."""
        try:
            self.validate_membership(config)
        except InvalidConfigurationError:
            return False
        return self._constraints.is_satisfied(config)

    # -------------------------------------------------------------- index <-> config

    def index_of(self, config: Mapping[str, Any]) -> int:
        """Mixed-radix index of a configuration in the unconstrained product."""
        self.validate_membership(config)
        idx = 0
        for p, place in zip(self._parameters, self._place_values):
            idx += p.index_of(config[p.name]) * place
        return idx

    def config_at(self, index: int) -> Config:
        """Configuration at a mixed-radix index (inverse of :meth:`index_of`)."""
        if not (0 <= index < self._cardinality):
            raise InvalidConfigurationError(
                f"index {index} out of range [0, {self._cardinality})")
        config: Config = {}
        rem = int(index)
        for p, place in zip(self._parameters, self._place_values):
            digit, rem = divmod(rem, place)
            config[p.name] = p.value_at(digit)
        return config

    def indices_to_configs(self, indices: Iterable[int]) -> list[Config]:
        """Vector form of :meth:`config_at` over many indices."""
        return [self.config_at(int(i)) for i in indices]

    # -------------------------------------------------------------------- enumeration

    def enumerate(self, valid_only: bool = True) -> Iterator[Config]:
        """Yield configurations in mixed-radix order.

        Parameters
        ----------
        valid_only:
            If True (default) only configurations satisfying the constraints are
            yielded.  Enumeration of the full product of very large spaces (Hotspot,
            Dedispersion, Expdist) is possible but typically undesirable; use
            :meth:`sample` instead, as the paper does.
        """
        value_lists = [p.values for p in self._parameters]
        names = self.parameter_names
        for combo in itertools.product(*value_lists):
            config = dict(zip(names, combo))
            if not valid_only or self._constraints.is_satisfied(config):
                yield config

    def enumerate_all(self) -> Iterator[Config]:
        """Yield every point of the Cartesian product, ignoring constraints."""
        return self.enumerate(valid_only=False)

    def count_constrained(self, limit: int | None = None) -> int:
        """Number of configurations satisfying the constraints (Table VIII 'Constrained').

        Parameters
        ----------
        limit:
            If given and the raw cardinality exceeds ``limit``, the count is estimated
            from a reproducible random sample of ``limit`` points instead of a full
            enumeration, and rounded to the nearest integer.  The paper itself only
            reports exact constrained counts for spaces it could enumerate.
        """
        if not len(self._constraints):
            return self._cardinality
        if limit is not None and self._cardinality > limit:
            rng = np.random.default_rng(1234567)
            idx = rng.integers(0, self._cardinality, size=limit)
            hits = sum(1 for i in idx if self._constraints.is_satisfied(self.config_at(int(i))))
            return int(round(self._cardinality * hits / limit))
        return sum(1 for _ in self.enumerate(valid_only=True))

    # ----------------------------------------------------------------------- sampling

    def sample(self, n: int, rng: np.random.Generator | int | None = None,
               valid_only: bool = True, unique: bool = True,
               max_attempts_factor: int = 200) -> list[Config]:
        """Draw ``n`` random configurations.

        Sampling is performed through the mixed-radix index so it is O(1) in the size
        of the space and reproducible given a seed.  With ``unique=True`` the result
        contains no duplicate configurations (the paper's 10 000-sample campaigns are
        without replacement).

        Raises
        ------
        EmptySearchSpaceError
            If not enough (unique, valid) configurations can be found within
            ``max_attempts_factor * n`` draws.
        """
        rng = np.random.default_rng(rng) if not isinstance(rng, np.random.Generator) else rng
        if n < 0:
            raise InvalidConfigurationError("sample size must be non-negative")
        if n == 0:
            return []
        out: list[Config] = []
        seen: set[int] = set()
        attempts = 0
        max_attempts = max(max_attempts_factor * n, 1000)
        while len(out) < n:
            attempts += 1
            if attempts > max_attempts:
                raise EmptySearchSpaceError(
                    f"could not draw {n} {'unique ' if unique else ''}valid configurations "
                    f"from space of cardinality {self._cardinality} "
                    f"after {attempts - 1} attempts (found {len(out)})")
            idx = int(rng.integers(0, self._cardinality))
            if unique and idx in seen:
                continue
            config = self.config_at(idx)
            if valid_only and not self._constraints.is_satisfied(config):
                continue
            seen.add(idx)
            out.append(config)
        return out

    def sample_one(self, rng: np.random.Generator | int | None = None,
                   valid_only: bool = True) -> Config:
        """Draw a single random (valid) configuration."""
        return self.sample(1, rng=rng, valid_only=valid_only, unique=False)[0]

    def default_configuration(self) -> Config:
        """Configuration made of every parameter's default value."""
        return {p.name: p.default for p in self._parameters}

    # ----------------------------------------------------------------- neighbourhoods

    def neighbors(self, config: Mapping[str, Any], strategy: str = "hamming",
                  valid_only: bool = True) -> list[Config]:
        """Configurations reachable from ``config`` by changing exactly one parameter.

        Parameters
        ----------
        config:
            Base configuration (must be a member of the product).
        strategy:
            ``"hamming"`` -- every other value of each parameter (Schoonhoven-style
            fitness-flow-graph neighbourhood).  ``"adjacent"`` -- only the next
            smaller/larger value of each parameter.
        valid_only:
            Drop neighbours that violate the constraints.
        """
        self.validate_membership(config)
        if strategy not in ("hamming", "adjacent"):
            raise InvalidConfigurationError(
                f"unknown neighbourhood strategy {strategy!r} (use 'hamming' or 'adjacent')")
        out: list[Config] = []
        for p in self._parameters:
            current = config[p.name]
            if strategy == "hamming":
                candidates = p.all_other_values(current)
            else:
                candidates = p.neighbors(current)
            for v in candidates:
                neighbor = dict(config)
                neighbor[p.name] = v
                if not valid_only or self._constraints.is_satisfied(neighbor):
                    out.append(neighbor)
        return out

    def random_neighbor(self, config: Mapping[str, Any], rng: np.random.Generator,
                        strategy: str = "hamming", valid_only: bool = True) -> Config | None:
        """A single uniformly-random neighbour, or None if there are none."""
        options = self.neighbors(config, strategy=strategy, valid_only=valid_only)
        if not options:
            return None
        return options[int(rng.integers(0, len(options)))]

    # ------------------------------------------------------------------- reduction

    def reduced(self, keep: Sequence[str], fixed: Mapping[str, Any] | None = None,
                name: str | None = None) -> "SearchSpace":
        """Reduced space keeping only the parameters in ``keep`` (Table VIII 'Reduced').

        The remaining parameters are frozen to the values in ``fixed`` (default: their
        declared defaults) and folded into the constraint evaluation, so the
        reduce-constrained count of Table VIII can be computed on the reduced space.
        """
        keep_set = set(keep)
        unknown = keep_set - set(self._by_name)
        if unknown:
            raise InvalidConfigurationError(f"cannot keep unknown parameters {sorted(unknown)}")
        if not keep_set:
            raise EmptySearchSpaceError("reduced space must keep at least one parameter")
        fixed_values: dict[str, Any] = {}
        for p in self._parameters:
            if p.name not in keep_set:
                value = (fixed or {}).get(p.name, p.default)
                if value not in p:
                    raise InvalidConfigurationError(
                        f"fixed value {value!r} not allowed for parameter {p.name!r}")
                fixed_values[p.name] = value
        kept_params = [p for p in self._parameters if p.name in keep_set]

        def _wrap(constraint: Constraint) -> Constraint:
            def check(config: Mapping[str, Any], _c=constraint) -> bool:
                full = dict(fixed_values)
                full.update(config)
                return _c.is_satisfied(full)
            wrapped = Constraint(check, description=constraint.description)
            wrapped.expression = constraint.expression
            return wrapped

        reduced_constraints = ConstraintSet(_wrap(c) for c in self._constraints)
        return SearchSpace(kept_params, reduced_constraints,
                           name=name or (self.name + "_reduced" if self.name else "reduced"))

    # --------------------------------------------------------------------- encoding

    def encode(self, config: Mapping[str, Any]) -> np.ndarray:
        """Encode one configuration as a float feature vector (column per parameter)."""
        self.validate_membership(config)
        return np.array([p.encode(config[p.name]) for p in self._parameters], dtype=float)

    def encode_batch(self, configs: Sequence[Mapping[str, Any]]) -> np.ndarray:
        """Encode many configurations as an ``(n, dimensions)`` float matrix.

        The loop runs once per parameter (not once per configuration per parameter in
        Python) so large campaigns encode quickly.
        """
        n = len(configs)
        out = np.empty((n, self.dimensions), dtype=float)
        for j, p in enumerate(self._parameters):
            if p.is_numeric:
                out[:, j] = [float(c[p.name]) for c in configs]
            else:
                out[:, j] = [float(p.index_of(c[p.name])) for c in configs]
        return out

    def decode(self, vector: Sequence[float]) -> Config:
        """Map a feature vector back to the nearest member configuration."""
        if len(vector) != self.dimensions:
            raise InvalidConfigurationError(
                f"vector has {len(vector)} entries, expected {self.dimensions}")
        config: Config = {}
        for p, x in zip(self._parameters, vector):
            grid = p.numeric_values()
            nearest = int(np.argmin(np.abs(grid - float(x))))
            config[p.name] = p.value_at(nearest)
        return config

    # ------------------------------------------------------------------ serialization

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable description of the search space."""
        return {
            "name": self.name,
            "parameters": [p.to_dict() for p in self._parameters],
            "constraints": self._constraints.to_list(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SearchSpace":
        """Inverse of :meth:`to_dict` (only string-expression constraints round-trip)."""
        params = [Parameter.from_dict(d) for d in data["parameters"]]
        constraints = ConstraintSet.from_list(data.get("constraints", []))
        return cls(params, constraints, name=data.get("name", ""))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"SearchSpace(name={self.name!r}, dimensions={self.dimensions}, "
                f"cardinality={self.cardinality})")
