"""Search spaces: ordered parameter collections with constraints.

The :class:`SearchSpace` is the central data structure of the suite.  It is shared by

* the benchmarks, which define their tunable parameters (Tables I--VII of the paper)
  and static constraints,
* the tuners, which ask for random samples, neighbourhoods and index mappings,
* the analysis layer, which needs exhaustive enumeration (Figs. 1--6) and the
  cardinality bookkeeping of Table VIII.

Design notes
------------

*Columnar index engine.*  Every point of the (unconstrained) Cartesian product is
identified by a single integer in ``[0, cardinality)`` using mixed-radix encoding with
the last parameter varying fastest.  The codec is *batch-first*:
:meth:`SearchSpace.indices_to_digits` turns an index vector into an ``(n, d)`` digit
matrix with two array operations, :meth:`SearchSpace.digits_to_indices` inverts it with
one matrix--vector product, and per-parameter *value columns* (cached NumPy arrays of
each parameter's allowed values) turn digit columns into value columns without touching
Python objects.  The scalar :meth:`config_at`/:meth:`index_of` remain as the one-point
convenience wrappers; every hot path (sampling, enumeration, counting, graph
construction) runs on index blocks.

*Constraint compilation contract.*  String constraint expressions are compiled once,
at :class:`~repro.core.constraints.Constraint` construction, into both a scalar code
object and -- where the expression stays inside the vectorizable subset of
:mod:`repro.core.vectorize` -- a batch evaluator over named value columns.
:meth:`SearchSpace.satisfied_mask` applies the batch evaluators to a whole index block
at once and falls back to scalar evaluation only for opaque callables (and only on
rows the vectorized constraints did not already reject).  The two paths are
element-wise equivalent by contract: an expression that raises marks the row violated,
exactly like the scalar evaluator.

*Feasible-set memoization.*  For spaces whose raw cardinality is at most
:attr:`SearchSpace.memoize_threshold` (default :data:`MEMOIZE_THRESHOLD_DEFAULT`), the
sorted array of constraint-satisfying indices is computed once on demand and cached.
The memo makes exact ``count_constrained`` free, turns enumeration into array slicing,
lets :meth:`sample` detect infeasible requests up front, and guarantees sampling
success whenever enough feasible points exist.  Spaces above the threshold (Hotspot,
Dedispersion, Expdist) stream index blocks through the mask instead of materialising
anything.

*Reproducibility.*  Batched rejection sampling draws index blocks sized exactly to the
number of configurations still needed, which makes the consumed random stream -- and
therefore every sampled configuration and everything downstream of a shared generator
-- identical to drawing one index at a time.

*Neighbourhoods.*  Two neighbourhood structures are provided, matching the two used in
the literature the paper builds on: ``"adjacent"`` (one step up/down in each
parameter's ordered value list) and ``"hamming"`` (all configurations differing in
exactly one parameter, the fitness-flow-graph neighbourhood of Schoonhoven et al.).
Neighbour validity is checked as one mask over the candidate index block.

*Index-native neighbourhood kernels.*  The tuner runtime never builds configuration
dictionaries inside its hot loop: :meth:`SearchSpace.hamming_neighbors` and
:meth:`SearchSpace.adjacent_neighbors` compute the whole neighbourhood of a point by
digit arithmetic (``index + (digit' - digit) * place``) from precomputed per-parameter
offset tables, filter it through :meth:`satisfied_mask`, and return a raw index array.
Candidate order is identical to the dictionary-based :meth:`neighbors` (parameters in
declaration order, digits ascending, current digit skipped), which is what keeps
index-native local search byte-identical to the seed implementation.
:meth:`encode_indices`/:meth:`decode_digits` are the matching index-native forms of
the ML feature codec.
"""

from __future__ import annotations

import math
from collections.abc import Mapping as _MappingABC
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.core.constraints import Constraint, ConstraintSet
from repro.core.errors import (
    EmptySearchSpaceError,
    InvalidConfigurationError,
)
from repro.core.parameter import Parameter

__all__ = ["SearchSpace", "config_key", "MEMOIZE_THRESHOLD_DEFAULT"]

Config = dict[str, Any]

#: Default ceiling on the raw cardinality below which the feasible-index array is
#: memoized (int64 indices: 1e6 points cost at most ~8 MB).  Covers every space the
#: paper enumerates exhaustively (GEMM's 82 944 is the largest) with ample headroom,
#: while the sampled spaces (1e7--1.2e8 points) stay streaming-only.
MEMOIZE_THRESHOLD_DEFAULT: int = 1_000_000

#: Index-block length used by chunked enumeration, counting and masking.
_CHUNK: int = 1 << 17

#: Largest rejection-sampling block checked through the scalar constraint path.
#: Below this row count the per-row scalar code objects are cheaper than spinning up
#: the batch evaluators (crossover sits around a dozen rows on the kernel spaces).
_SCALAR_CHECK_MAX: int = 8


def config_key(config: Mapping[str, Any]) -> tuple[tuple[str, Any], ...]:
    """Canonical hashable key for a configuration (sorted by parameter name)."""
    return tuple(sorted(config.items()))


class SearchSpace:
    """A finite, constrained, discrete search space.

    Parameters
    ----------
    parameters:
        Ordered sequence of :class:`~repro.core.parameter.Parameter` objects.  Order is
        significant: it defines the mixed-radix indexing and the column order of
        encoded feature matrices.
    constraints:
        Optional constraints restricting the valid subset of the Cartesian product.
    name:
        Optional label used in reports.
    memoize_threshold:
        Cardinality ceiling for feasible-set memoization
        (default :data:`MEMOIZE_THRESHOLD_DEFAULT`).
    """

    def __init__(self, parameters: Sequence[Parameter],
                 constraints: ConstraintSet | Iterable[Constraint | str | Callable] | None = None,
                 name: str = "", memoize_threshold: int | None = None):
        params = list(parameters)
        if not params:
            raise EmptySearchSpaceError("a search space needs at least one parameter")
        names = [p.name for p in params]
        if len(set(names)) != len(names):
            raise InvalidConfigurationError(f"duplicate parameter names: {names}")
        self._parameters: tuple[Parameter, ...] = tuple(params)
        self._by_name: dict[str, Parameter] = {p.name: p for p in params}
        if constraints is None:
            self._constraints = ConstraintSet()
        elif isinstance(constraints, ConstraintSet):
            self._constraints = constraints
        else:
            self._constraints = ConstraintSet(constraints)
        self.name = name
        # Mixed-radix place values: radix of the last parameter varies fastest.
        cards = [p.cardinality for p in self._parameters]
        place = [1] * len(cards)
        for i in range(len(cards) - 2, -1, -1):
            place[i] = place[i + 1] * cards[i + 1]
        self._place_values: tuple[int, ...] = tuple(place)
        self._cardinality: int = math.prod(cards)
        # Columnar engine state: radix/place vectors and per-parameter value columns.
        self._radices = np.asarray(cards, dtype=np.int64)
        self._places = np.asarray(place, dtype=np.int64)
        self._value_columns: tuple[np.ndarray, ...] = tuple(
            p.values_array() for p in self._parameters)
        self._value_objects: tuple[np.ndarray, ...] = tuple(
            p.values_object_array() for p in self._parameters)
        self._column_of: dict[str, int] = {p.name: j
                                           for j, p in enumerate(self._parameters)}
        # Flat (name, values, place) rows for the scalar decoder: tuple indexing
        # beats one method call per parameter on the config_at hot path.
        self._decode_table: tuple[tuple[str, tuple, int], ...] = tuple(
            (p.name, p.values, place)
            for p, place in zip(self._parameters, self._place_values))
        self.memoize_threshold = (MEMOIZE_THRESHOLD_DEFAULT if memoize_threshold is None
                                  else int(memoize_threshold))
        self._feasible: np.ndarray | None = None
        # Flattened per-parameter digit tables for the index-native neighbourhood
        # kernels: for every (parameter, digit) pair, the digit's index offset
        # (digit * place), its parameter column and the digit itself, concatenated in
        # parameter order.  sum(radices) entries; built once, tiny.
        self._nb_offsets = np.concatenate(
            [np.arange(r, dtype=np.int64) * p for r, p in zip(cards, place)])
        self._nb_param = np.repeat(np.arange(len(cards), dtype=np.int64),
                                   self._radices)
        self._nb_digit = np.concatenate(
            [np.arange(r, dtype=np.int64) for r in cards])

    # ------------------------------------------------------------------ basic queries

    @property
    def parameters(self) -> tuple[Parameter, ...]:
        """The ordered parameter tuple."""
        return self._parameters

    @property
    def parameter_names(self) -> tuple[str, ...]:
        """Names of all parameters in order."""
        return tuple(p.name for p in self._parameters)

    @property
    def constraints(self) -> ConstraintSet:
        """The static constraints of this space."""
        return self._constraints

    @property
    def cardinality(self) -> int:
        """Size of the unconstrained Cartesian product (Table VIII 'Cardinality')."""
        return self._cardinality

    @property
    def dimensions(self) -> int:
        """Number of tunable parameters."""
        return len(self._parameters)

    @property
    def place_values(self) -> tuple[int, ...]:
        """Mixed-radix place value of each parameter (last parameter fastest)."""
        return self._place_values

    def __len__(self) -> int:
        return self._cardinality

    def __contains__(self, config: Mapping[str, Any]) -> bool:
        # ``config in space`` means "the tuner may evaluate this": membership in the
        # Cartesian product AND satisfaction of the static constraints.
        return self.is_valid(config)

    def parameter(self, name: str) -> Parameter:
        """Look up a parameter by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise InvalidConfigurationError(
                f"unknown parameter {name!r}; known: {self.parameter_names}") from None

    # --------------------------------------------------------------------- validation

    def validate_membership(self, config: Mapping[str, Any]) -> None:
        """Check that ``config`` names every parameter with an allowed value.

        Membership validation is independent of constraints: a configuration can be a
        member of the Cartesian product yet violate constraints.
        """
        missing = set(self._by_name) - set(config)
        if missing:
            raise InvalidConfigurationError(f"configuration missing parameters {sorted(missing)}")
        extra = set(config) - set(self._by_name)
        if extra:
            raise InvalidConfigurationError(f"configuration has unknown parameters {sorted(extra)}")
        for p in self._parameters:
            if config[p.name] not in p:
                raise InvalidConfigurationError(
                    f"value {config[p.name]!r} not allowed for parameter {p.name!r}")

    def is_valid(self, config: Mapping[str, Any]) -> bool:
        """True iff ``config`` is a member of the product *and* satisfies constraints."""
        try:
            self.validate_membership(config)
        except InvalidConfigurationError:
            return False
        return self._constraints.is_satisfied(config)

    # -------------------------------------------------------------- index <-> config

    def index_of(self, config: Mapping[str, Any]) -> int:
        """Mixed-radix index of a configuration in the unconstrained product."""
        self.validate_membership(config)
        idx = 0
        for p, place in zip(self._parameters, self._place_values):
            idx += p.index_of(config[p.name]) * place
        return idx

    def config_at(self, index: int) -> Config:
        """Configuration at a mixed-radix index (inverse of :meth:`index_of`)."""
        if not (0 <= index < self._cardinality):
            raise InvalidConfigurationError(
                f"index {index} out of range [0, {self._cardinality})")
        config: Config = {}
        rem = int(index)
        for name, values, place in self._decode_table:
            digit, rem = divmod(rem, place)
            config[name] = values[digit]
        return config

    # ----------------------------------------------------------------- batch codecs

    def indices_to_digits(self, indices: np.ndarray | Sequence[int]) -> np.ndarray:
        """Mixed-radix digit matrix ``(n, d)`` of an index vector (batch codec)."""
        idx = np.asarray(indices, dtype=np.int64)
        if idx.ndim != 1:
            idx = idx.ravel()
        if idx.size and (idx.min() < 0 or idx.max() >= self._cardinality):
            raise InvalidConfigurationError(
                f"indices out of range [0, {self._cardinality})")
        return (idx[:, None] // self._places) % self._radices

    def digits_to_indices(self, digits: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`indices_to_digits` (one matrix--vector product)."""
        d = np.asarray(digits, dtype=np.int64)
        return d @ self._places

    def digits_of_configs(self, configs: Sequence[Mapping[str, Any]]) -> np.ndarray:
        """Digit matrix of configuration mappings (vector form of per-value lookup)."""
        n = len(configs)
        out = np.empty((n, self.dimensions), dtype=np.int64)
        for j, p in enumerate(self._parameters):
            name = p.name
            try:
                out[:, j] = p.digits_of([c[name] for c in configs])
            except KeyError:
                raise InvalidConfigurationError(
                    f"configuration missing parameter {name!r}") from None
        return out

    def indices_of_configs(self, configs: Sequence[Mapping[str, Any]]) -> np.ndarray:
        """Mixed-radix indices of many configurations at once."""
        return self.digits_to_indices(self.digits_of_configs(configs))

    def columns_at(self, indices: np.ndarray | Sequence[int], *,
                   digits: np.ndarray | None = None) -> dict[str, np.ndarray]:
        """Named value columns of an index block (the constraint-evaluation view)."""
        if digits is None:
            digits = self.indices_to_digits(indices)
        return {p.name: col[digits[:, j]]
                for j, (p, col) in enumerate(zip(self._parameters, self._value_columns))}

    def configs_at(self, indices: np.ndarray | Sequence[int], *,
                   digits: np.ndarray | None = None) -> list[Config]:
        """Configuration dictionaries of an index block (original Python values)."""
        if digits is None:
            digits = self.indices_to_digits(indices)
        names = self.parameter_names
        cols = [col[digits[:, j]] for j, col in enumerate(self._value_objects)]
        return [dict(zip(names, row)) for row in zip(*cols)]

    def indices_to_configs(self, indices: Iterable[int]) -> list[Config]:
        """Vector form of :meth:`config_at` over many indices."""
        idx = np.fromiter((int(i) for i in indices), dtype=np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= self._cardinality):
            raise InvalidConfigurationError(
                f"indices out of range [0, {self._cardinality})")
        return self.configs_at(idx)

    # ----------------------------------------------------------------- feasibility

    def satisfied_mask(self, indices: np.ndarray | Sequence[int] | None = None, *,
                       digits: np.ndarray | None = None) -> np.ndarray:
        """Constraint mask of an index block: ``mask[i]`` iff point ``i`` is feasible.

        Element-wise equivalent to calling ``constraints.is_satisfied(config_at(i))``
        per index, evaluated in one NumPy pass per vectorized constraint.  Value
        columns are gathered lazily, so parameters no constraint mentions never pay
        the digit->value gather.
        """
        if digits is None:
            digits = self.indices_to_digits(indices)
        n = digits.shape[0]
        if not len(self._constraints):
            return np.ones(n, dtype=bool)
        return self._constraints.satisfied_mask(
            _LazyColumns(self, digits), n, configs=_LazyConfigs(self, digits))

    def feasible_indices(self, force: bool = False) -> np.ndarray | None:
        """Sorted array of all constraint-satisfying indices, memoized.

        Returns None (without computing anything) when the raw cardinality exceeds
        :attr:`memoize_threshold` and ``force`` is False.  The memo is what makes
        exact constrained counts free and sampling failure-proof on small spaces.
        """
        if self._feasible is not None:
            return self._feasible
        if self._cardinality > self.memoize_threshold and not force:
            return None
        blocks = [block for block in self._iter_feasible_blocks()]
        feasible = (np.concatenate(blocks) if blocks
                    else np.empty(0, dtype=np.int64))
        if self._cardinality <= self.memoize_threshold or force:
            self._feasible = feasible
        return feasible

    def release_feasible_memo(self) -> None:
        """Drop the memoized feasible-index array (e.g. after a forced computation
        on a space larger than :attr:`memoize_threshold`)."""
        self._feasible = None
        self.__dict__.pop("_feas_bits", None)
        self.__dict__.pop("_feas_bits_src", None)

    def _feasible_bitmap(self) -> bytes:
        """Packed feasibility bits of the memoized feasible set (1 = feasible).

        ``bits[index >> 3] >> (index & 7) & 1`` answers scalar membership in
        pure Python integer arithmetic -- an order of magnitude cheaper than a
        bisection per probe, which is what the population tuners' repair
        rejection loops hammer.  One bit per raw index (cardinality / 8 bytes;
        a few hundred KB at the memoize threshold), built on first demand and
        invalidated with the memo it mirrors.
        """
        bits = self.__dict__.get("_feas_bits")
        if bits is None or self.__dict__.get("_feas_bits_src") is not self._feasible:
            flags = np.zeros(self._cardinality, dtype=bool)
            flags[self._feasible] = True
            bits = np.packbits(flags, bitorder="little").tobytes()
            self._feas_bits = bits
            self._feas_bits_src = self._feasible
        return bits

    def _digits_for_range(self, start: int, stop: int) -> np.ndarray:
        """Digit matrix of the contiguous index range ``[start, stop)``.

        Digit columns of consecutive indices are periodic (period = radix x place),
        so most columns are assembled by tile/repeat instead of integer division --
        measurably faster than the general codec on full-space sweeps.  Columns whose
        period dwarfs the range fall back to the division codec to bound memory.
        """
        n = stop - start
        out = np.empty((n, self.dimensions), dtype=np.int64)
        base = None
        for j, (radix, place) in enumerate(zip(self._radices.tolist(),
                                               self._places.tolist())):
            period = radix * place
            if period <= 4 * n:
                offset = start % period
                reps = -(-(offset + n) // period)
                pattern = np.repeat(np.arange(radix, dtype=np.int64), place)
                out[:, j] = np.tile(pattern, reps)[offset:offset + n]
            else:
                if base is None:
                    base = np.arange(start, stop, dtype=np.int64)
                out[:, j] = (base // place) % radix
        return out

    def _columns_for_range(self, start: int, stop: int,
                           names: frozenset[str] | None = None) -> dict[str, np.ndarray]:
        """Named value columns of the contiguous index range ``[start, stop)``.

        Value columns of consecutive indices are periodic exactly like their digit
        columns (period = radix x place), so they are assembled by tile/repeat of the
        per-parameter value arrays directly -- skipping both the digit matrix and the
        digit->value gather of :meth:`columns_at`.  Columns whose period dwarfs the
        range fall back to the division codec plus gather to bound memory.  With
        ``names`` given, only those columns are materialised (the constraint-sweep
        case: parameters no constraint reads never cost anything).
        """
        n = stop - start
        out: dict[str, np.ndarray] = {}
        base = None
        for p, values, radix, place in zip(self._parameters, self._value_columns,
                                           self._radices.tolist(),
                                           self._places.tolist()):
            if names is not None and p.name not in names:
                continue
            period = radix * place
            if period <= 4 * n:
                offset = start % period
                reps = -(-(offset + n) // period)
                pattern = np.repeat(values, place)
                out[p.name] = np.tile(pattern, reps)[offset:offset + n]
            else:
                if base is None:
                    base = np.arange(start, stop, dtype=np.int64)
                out[p.name] = values[(base // place) % radix]
        return out

    def _feasible_mask_range(self, start: int, stop: int) -> np.ndarray:
        """Constraint mask of a contiguous index range.

        When every constraint has a batch evaluator the value columns are built by
        tiling (:meth:`_columns_for_range`) -- and only the columns the constraint
        expressions actually reference -- with no digit matrix at all; a single
        opaque callable forces the general digit path, whose scalar fallback needs
        digits to materialise row configurations.
        """
        if self._constraints.all_vectorized:
            return self._constraints.satisfied_mask(
                self._columns_for_range(start, stop,
                                        names=self._constraints.referenced_parameters()),
                stop - start)
        return self.satisfied_mask(None, digits=self._digits_for_range(start, stop))

    def _iter_feasible_blocks(self, chunk_size: int = _CHUNK) -> Iterator[np.ndarray]:
        """Stream ascending blocks of feasible indices without memoization."""
        if not len(self._constraints):
            for start in range(0, self._cardinality, chunk_size):
                yield np.arange(start, min(start + chunk_size, self._cardinality),
                                dtype=np.int64)
            return
        for start in range(0, self._cardinality, chunk_size):
            stop = min(start + chunk_size, self._cardinality)
            mask = self._feasible_mask_range(start, stop)
            if mask.any():
                yield np.arange(start, stop, dtype=np.int64)[mask]

    # -------------------------------------------------------------------- enumeration

    def enumerate_chunked(self, valid_only: bool = True,
                          chunk_size: int = _CHUNK) -> Iterator[np.ndarray]:
        """Stream index blocks in ascending mixed-radix order.

        With ``valid_only`` (default) only feasible indices are yielded; a memoized
        feasible set is sliced directly instead of re-masking.
        """
        if not valid_only or not len(self._constraints):
            for start in range(0, self._cardinality, chunk_size):
                yield np.arange(start, min(start + chunk_size, self._cardinality),
                                dtype=np.int64)
            return
        feasible = self.feasible_indices()
        if feasible is not None:
            for start in range(0, feasible.size, chunk_size):
                yield feasible[start:start + chunk_size]
            return
        yield from self._iter_feasible_blocks(chunk_size)

    def enumerate(self, valid_only: bool = True) -> Iterator[Config]:
        """Yield configurations in mixed-radix order.

        Parameters
        ----------
        valid_only:
            If True (default) only configurations satisfying the constraints are
            yielded.  Enumeration of the full product of very large spaces (Hotspot,
            Dedispersion, Expdist) is possible but typically undesirable; use
            :meth:`sample` instead, as the paper does.
        """
        for block in self.enumerate_chunked(valid_only=valid_only):
            yield from self.configs_at(block)

    def enumerate_all(self) -> Iterator[Config]:
        """Yield every point of the Cartesian product, ignoring constraints."""
        return self.enumerate(valid_only=False)

    def count_constrained(self, limit: int | None = None) -> int:
        """Number of configurations satisfying the constraints (Table VIII 'Constrained').

        Parameters
        ----------
        limit:
            If given and the raw cardinality exceeds ``limit``, the count is estimated
            from a reproducible random sample of ``limit`` points instead of a full
            enumeration, and rounded to the nearest integer.  The paper itself only
            reports exact constrained counts for spaces it could enumerate.
        """
        if not len(self._constraints):
            return self._cardinality
        if limit is not None and self._cardinality > limit:
            rng = np.random.default_rng(1234567)
            idx = rng.integers(0, self._cardinality, size=limit)
            hits = int(self.satisfied_mask(idx).sum())
            return int(round(self._cardinality * hits / limit))
        feasible = self.feasible_indices()
        if feasible is not None:
            return int(feasible.size)
        return sum(int(block.size) for block in self._iter_feasible_blocks())

    # ----------------------------------------------------------------------- sampling

    def _scalar_draw_exhausted(self, max_attempts: int) -> EmptySearchSpaceError:
        """The failure of a single-draw rejection loop whose every attempt
        missed (a success returns immediately, so the observed feasible
        fraction is exactly zero) -- shared by the bitmap and constraint-eval
        restart paths so their messages cannot drift apart."""
        return EmptySearchSpaceError(
            f"could not draw 1 valid configurations "
            f"from space of cardinality {self._cardinality} "
            f"after {max_attempts} attempts (found 0); observed feasible "
            f"fraction 0.000% over {max_attempts} draws")

    def sample_indices(self, n: int, rng: np.random.Generator | int | None = None,
                       valid_only: bool = True, unique: bool = True,
                       max_attempts_factor: int = 200) -> np.ndarray:
        """Draw ``n`` random mixed-radix indices (the batch form of :meth:`sample`).

        Rejection sampling proceeds in blocks sized exactly to the number of indices
        still needed, so the random stream consumed is identical to drawing one index
        at a time: the same seed yields the same sample the scalar implementation
        produced, and a generator shared with the caller stays in sync.

        When the memoized feasible-index array exists, an impossible request
        (``n`` greater than the number of feasible points) fails immediately, and a
        request that merely exhausts its rejection patience is completed exactly from
        the remaining feasible indices -- no spurious
        :class:`~repro.core.errors.EmptySearchSpaceError` is possible.
        """
        rng = np.random.default_rng(rng) if not isinstance(rng, np.random.Generator) else rng
        if n < 0:
            raise InvalidConfigurationError("sample size must be non-negative")
        if n == 0:
            return np.empty(0, dtype=np.int64)
        feasible = self._feasible if valid_only else None
        if n == 1 and not unique and valid_only and feasible is not None \
                and feasible.size:
            # The memoized twin of the scalar restart draw below: one scalar
            # ``integers`` call per attempt (stream-identical to a size-1 block)
            # and one packed-bitmap probe instead of a constraint evaluation.
            # The population tuners' repair draws live here.
            integers = rng.integers
            cardinality = self._cardinality
            bits = self._feasible_bitmap()
            max_attempts = max(max_attempts_factor, 1000)
            for _ in range(max_attempts):
                index = int(integers(0, cardinality))
                if bits[index >> 3] >> (index & 7) & 1:
                    return np.asarray([index], dtype=np.int64)
            raise self._scalar_draw_exhausted(max_attempts)
        if (n == 1 and not unique and valid_only and feasible is None
                and len(self._constraints)):
            # The tuner runtime's restart draw: a tight scalar rejection loop.  One
            # scalar ``integers`` call consumes the same random stream as a size-1
            # block, and the scalar constraint check agrees with the mask by the
            # compilation contract, so the drawn index is bit-identical to the
            # general path below at a fraction of its per-iteration overhead.
            rows = self._feasibility_rows()
            if rows is None:
                satisfied = self._constraints.is_satisfied
                namespace_at = self.config_at
            else:
                satisfied = self._constraints.is_satisfied_fast
                def namespace_at(index: int, _rows=rows) -> dict:
                    return {name: values[(index // place) % radix]
                            for name, values, place, radix in _rows}
            integers = rng.integers
            cardinality = self._cardinality
            max_attempts = max(max_attempts_factor, 1000)
            for _ in range(max_attempts):
                index = int(integers(0, cardinality))
                if satisfied(namespace_at(index)):
                    return np.asarray([index], dtype=np.int64)
            self.feasible_indices()  # memoize (small spaces) for the next attempt
            raise self._scalar_draw_exhausted(max_attempts)
        if feasible is not None and unique and n > feasible.size:
            raise EmptySearchSpaceError(
                f"cannot draw {n} unique valid configurations from a space with only "
                f"{feasible.size} feasible points "
                f"(feasible fraction {feasible.size / self._cardinality:.3%} of "
                f"cardinality {self._cardinality})")
        max_attempts = max(max_attempts_factor * n, 1000)
        out: list[int] = []
        seen: set[int] = set()
        attempts = 0
        checked = 0
        passed = 0
        while len(out) < n:
            need = min(n - len(out), max_attempts - attempts)
            if need <= 0:
                if valid_only and feasible is None:
                    # Compute the memo now if the space is small enough: patience has
                    # already run out, so the one-off sweep is cheaper than failing,
                    # and it turns the error below into a guaranteed completion.
                    feasible = self.feasible_indices()
                if feasible is not None and unique:
                    if n > feasible.size:
                        raise EmptySearchSpaceError(
                            f"cannot draw {n} unique valid configurations from a "
                            f"space with only {feasible.size} feasible points "
                            f"(feasible fraction "
                            f"{feasible.size / self._cardinality:.3%} of "
                            f"cardinality {self._cardinality})")
                    # Patience exhausted but success is guaranteed: finish the draw
                    # exactly from the not-yet-taken feasible indices.
                    remaining = feasible[~np.isin(feasible,
                                                  np.fromiter(seen, dtype=np.int64,
                                                              count=len(seen)))]
                    extra = rng.permutation(remaining)[: n - len(out)]
                    out.extend(int(i) for i in extra)
                    break
                observed = (f"; observed feasible fraction {passed / checked:.3%} "
                            f"over {checked} draws" if checked else "")
                raise EmptySearchSpaceError(
                    f"could not draw {n} {'unique ' if unique else ''}valid configurations "
                    f"from space of cardinality {self._cardinality} "
                    f"after {attempts} attempts (found {len(out)}){observed}")
            draws = rng.integers(0, self._cardinality, size=need)
            attempts += need
            if valid_only:
                if feasible is not None:
                    if feasible.size:
                        pos = np.searchsorted(feasible, draws)
                        pos[pos == feasible.size] = 0
                        ok = feasible[pos] == draws
                        good_list = ok.tolist()
                    else:
                        good_list = [False] * need
                elif need <= _SCALAR_CHECK_MAX and len(self._constraints):
                    # Tiny blocks (the tail of a draw, or the single-restart draws
                    # of the tuner runtime) check through the scalar constraint
                    # code objects: for a handful of rows they beat the batch
                    # evaluators by an order of magnitude, and the compilation
                    # contract keeps the verdicts identical.
                    good_list = [self.index_is_feasible(i) for i in draws.tolist()]
                else:
                    good_list = self.satisfied_mask(draws).tolist()
                checked += need
                passed += sum(good_list)
            else:
                good_list = None
            for k, idx in enumerate(draws.tolist()):
                if good_list is not None and not good_list[k]:
                    continue
                if unique:
                    if idx in seen:
                        continue
                    seen.add(idx)
                out.append(idx)
        return np.asarray(out[:n], dtype=np.int64)

    def sample(self, n: int, rng: np.random.Generator | int | None = None,
               valid_only: bool = True, unique: bool = True,
               max_attempts_factor: int = 200) -> list[Config]:
        """Draw ``n`` random configurations.

        Sampling is performed through the mixed-radix index so it is O(1) in the size
        of the space and reproducible given a seed.  With ``unique=True`` the result
        contains no duplicate configurations (the paper's 10 000-sample campaigns are
        without replacement).

        Raises
        ------
        EmptySearchSpaceError
            If not enough (unique, valid) configurations can be found within
            ``max_attempts_factor * n`` draws and the feasible set is not memoized
            (with a memoized feasible set the draw either fails immediately --
            ``n`` exceeds the number of feasible points -- or always succeeds).
        """
        indices = self.sample_indices(n, rng=rng, valid_only=valid_only, unique=unique,
                                      max_attempts_factor=max_attempts_factor)
        return self.configs_at(indices)

    def sample_one(self, rng: np.random.Generator | int | None = None,
                   valid_only: bool = True) -> Config:
        """Draw a single random (valid) configuration."""
        return self.sample(1, rng=rng, valid_only=valid_only, unique=False)[0]

    def sample_one_index(self, rng: np.random.Generator | int | None = None,
                         valid_only: bool = True) -> int:
        """Index form of :meth:`sample_one`: same rejection loop, same random
        stream, no configuration dictionary."""
        return int(self.sample_indices(1, rng=rng, valid_only=valid_only,
                                       unique=False)[0])

    def default_configuration(self) -> Config:
        """Configuration made of every parameter's default value."""
        return {p.name: p.default for p in self._parameters}

    # ----------------------------------------------------------------- neighbourhoods

    def neighbors(self, config: Mapping[str, Any], strategy: str = "hamming",
                  valid_only: bool = True) -> list[Config]:
        """Configurations reachable from ``config`` by changing exactly one parameter.

        Parameters
        ----------
        config:
            Base configuration (must be a member of the product).
        strategy:
            ``"hamming"`` -- every other value of each parameter (Schoonhoven-style
            fitness-flow-graph neighbourhood).  ``"adjacent"`` -- only the next
            smaller/larger value of each parameter.
        valid_only:
            Drop neighbours that violate the constraints (checked as one mask over
            the whole candidate block).
        """
        self.validate_membership(config)
        if strategy not in ("hamming", "adjacent"):
            raise InvalidConfigurationError(
                f"unknown neighbourhood strategy {strategy!r} (use 'hamming' or 'adjacent')")
        candidates: list[tuple[str, Any]] = []
        for p in self._parameters:
            current = config[p.name]
            if strategy == "hamming":
                others = p.all_other_values(current)
            else:
                others = p.neighbors(current)
            candidates.extend((p.name, v) for v in others)
        if not candidates:
            return []
        if valid_only and len(self._constraints):
            base = self.indices_to_digits([self.index_of(config)])
            digits = np.repeat(base, len(candidates), axis=0)
            col_of = {p.name: j for j, p in enumerate(self._parameters)}
            for row, (name, value) in enumerate(candidates):
                digits[row, col_of[name]] = self._by_name[name].index_of(value)
            keep = self.satisfied_mask(None, digits=digits)
        else:
            keep = np.ones(len(candidates), dtype=bool)
        out: list[Config] = []
        for ok, (name, value) in zip(keep.tolist(), candidates):
            if ok:
                neighbor = dict(config)
                neighbor[name] = value
                out.append(neighbor)
        return out

    def random_neighbor(self, config: Mapping[str, Any], rng: np.random.Generator,
                        strategy: str = "hamming", valid_only: bool = True) -> Config | None:
        """A single uniformly-random neighbour, or None if there are none."""
        options = self.neighbors(config, strategy=strategy, valid_only=valid_only)
        if not options:
            return None
        return options[int(rng.integers(0, len(options)))]

    # -------------------------------------------------- index-native neighbourhoods

    def digits_of_index(self, index: int) -> np.ndarray:
        """Digit vector of one index (the scalar row of :meth:`indices_to_digits`).

        The scalar workhorse of the index-native operators: population tuners
        mutate candidates as digit vectors, and perturbation/crossover re-derive
        them from the incumbent's integer index through this one arithmetic row.
        """
        if not (0 <= index < self._cardinality):
            raise InvalidConfigurationError(
                f"index {index} out of range [0, {self._cardinality})")
        return (index // self._places) % self._radices

    # Pre-publication spelling; the tuners now use the public name.
    _digits_of_index = digits_of_index

    def _filter_neighbor_candidates(self, base_digits: np.ndarray,
                                    candidates: np.ndarray, params: np.ndarray,
                                    new_digits: np.ndarray,
                                    valid_only: bool) -> np.ndarray:
        """Apply the constraint mask to a one-parameter-changed candidate block.

        Candidate digit rows are the base row with a single column replaced, so the
        digit matrix is assembled by repeat + scatter instead of the general codec.
        """
        if not valid_only or not len(self._constraints):
            return candidates
        digits = np.repeat(base_digits[None, :], candidates.size, axis=0)
        digits[np.arange(candidates.size), params] = new_digits
        return candidates[self.satisfied_mask(None, digits=digits)]

    def hamming_neighbors(self, index: int, valid_only: bool = True) -> np.ndarray:
        """Indices of all configurations differing from ``index`` in exactly one
        parameter (the fitness-flow-graph neighbourhood), by digit arithmetic.

        Candidate order matches :meth:`neighbors`: parameters in declaration order,
        replacement digits ascending, the current digit skipped --
        ``configs_at(hamming_neighbors(i))`` equals ``neighbors(config_at(i))``.
        No configuration dictionary is ever constructed.
        """
        digits = self._digits_of_index(index)
        keep = self._nb_digit != digits[self._nb_param]
        params = self._nb_param[keep]
        candidates = index + self._nb_offsets[keep] - digits[params] * self._places[params]
        return self._filter_neighbor_candidates(
            digits, candidates, params, self._nb_digit[keep], valid_only)

    def adjacent_neighbors(self, index: int, valid_only: bool = True) -> np.ndarray:
        """Indices one ordered-value step away in each parameter (digit +- 1).

        Candidate order matches :meth:`neighbors` with ``strategy="adjacent"``: per
        parameter, the smaller value first, then the larger (where they exist).
        """
        digits = self._digits_of_index(index)
        down = index - self._places
        up = index + self._places
        candidates = np.stack([down, up], axis=1).ravel()
        params = np.repeat(np.arange(self.dimensions, dtype=np.int64), 2)
        new_digits = np.stack([digits - 1, digits + 1], axis=1).ravel()
        keep = (new_digits >= 0) & (new_digits < self._radices[params])
        return self._filter_neighbor_candidates(
            digits, candidates[keep], params[keep], new_digits[keep], valid_only)

    #: Entry cap of the per-space neighbourhood memo (arrays of ~sum(radices)
    #: int64 each; 4096 entries stay well under a few MB on every kernel space).
    _NEIGHBOR_MEMO_MAX: int = 4096

    def neighbor_indices(self, index: int, strategy: str = "hamming",
                         valid_only: bool = True) -> np.ndarray:
        """Index-native form of :meth:`neighbors` (dispatches on ``strategy``).

        Valid-only neighbourhoods are pure functions of the index, so they memoize
        (bounded, reset when the memo fills): iterated local search repeatedly
        re-climbs the same basins after perturbation, and the revisit then costs a
        dictionary probe instead of a constraint mask.
        """
        memo = self.__dict__.get("_nb_memo")
        if memo is None:
            memo = self._nb_memo = {}
        key = (strategy, index, len(self._constraints)) if valid_only else None
        if key is not None:
            cached = memo.get(key)
            if cached is not None:
                return cached
        if strategy == "hamming":
            out = self.hamming_neighbors(index, valid_only=valid_only)
        elif strategy == "adjacent":
            out = self.adjacent_neighbors(index, valid_only=valid_only)
        else:
            raise InvalidConfigurationError(
                f"unknown neighbourhood strategy {strategy!r} (use 'hamming' or 'adjacent')")
        if key is not None:
            if len(memo) >= self._NEIGHBOR_MEMO_MAX:
                memo.clear()
            out.setflags(write=False)
            memo[key] = out
        return out

    def _feasibility_rows(self) -> tuple[tuple[str, tuple, int, int], ...] | None:
        """Decode rows ``(name, values, place, radix)`` for the parameters the
        constraint expressions reference, or None when any constraint is opaque
        (callables may read parameters the expressions never name)."""
        if self.__dict__.get("_feas_rows_n") != len(self._constraints):
            self.__dict__.pop("_feas_rows", None)
            self._feas_rows_n = len(self._constraints)
        rows = self.__dict__.get("_feas_rows", False)
        if rows is False:
            referenced = self._constraints.referenced_parameters()
            if referenced is None or any(c.is_callable for c in self._constraints):
                rows = None
            else:
                rows = tuple(
                    (p.name, p.values, place, radix)
                    for p, place, radix in zip(self._parameters, self._place_values,
                                               self._radices.tolist())
                    if p.name in referenced)
            self._feas_rows = rows
        return rows

    def index_is_feasible(self, index: int) -> bool:
        """Constraint satisfaction of one index (no configuration dictionary).

        Element-wise equivalent to ``is_valid(config_at(index))`` for in-range
        indices (range membership is what dictionary membership checks establish).
        A single point evaluates through the scalar constraint code objects over a
        namespace holding only the referenced parameters -- for one row that is an
        order of magnitude cheaper than spinning up the batch evaluators, and the
        compilation contract makes the paths agree.
        """
        if not (0 <= index < self._cardinality):
            raise InvalidConfigurationError(
                f"index {index} out of range [0, {self._cardinality})")
        if not len(self._constraints):
            return True
        if self._feasible is not None:
            # The memoized feasible set answers membership from its packed
            # bitmap -- the verdict is identical by construction (the memo
            # holds exactly the constraint-satisfying indices).
            index = int(index)
            return bool(self._feasible_bitmap()[index >> 3] >> (index & 7) & 1)
        rows = self._feasibility_rows()
        if rows is None:
            return self._constraints.is_satisfied(self.config_at(index))
        return self._constraints.is_satisfied_fast(
            {name: values[(index // place) % radix]
             for name, values, place, radix in rows})

    # ------------------------------------------------------------------- reduction

    def reduced(self, keep: Sequence[str], fixed: Mapping[str, Any] | None = None,
                name: str | None = None) -> "SearchSpace":
        """Reduced space keeping only the parameters in ``keep`` (Table VIII 'Reduced').

        The remaining parameters are frozen to the values in ``fixed`` (default: their
        declared defaults) and folded into the constraint evaluation, so the
        reduce-constrained count of Table VIII can be computed on the reduced space.
        Frozen parameters enter the vectorized constraint evaluators as broadcast
        scalar columns, so reduced spaces count and sample as fast as full ones.
        """
        keep_set = set(keep)
        unknown = keep_set - set(self._by_name)
        if unknown:
            raise InvalidConfigurationError(f"cannot keep unknown parameters {sorted(unknown)}")
        if not keep_set:
            raise EmptySearchSpaceError("reduced space must keep at least one parameter")
        fixed_values: dict[str, Any] = {}
        for p in self._parameters:
            if p.name not in keep_set:
                value = (fixed or {}).get(p.name, p.default)
                if value not in p:
                    raise InvalidConfigurationError(
                        f"fixed value {value!r} not allowed for parameter {p.name!r}")
                fixed_values[p.name] = value
        kept_params = [p for p in self._parameters if p.name in keep_set]

        def _wrap(constraint: Constraint) -> Constraint:
            def check(config: Mapping[str, Any], _c=constraint) -> bool:
                full = dict(fixed_values)
                full.update(config)
                return _c.is_satisfied(full)
            wrapped = Constraint(check, description=constraint.description)
            wrapped.expression = constraint.expression
            base_vec = constraint._vectorized
            if base_vec is not None:
                def vectorized(columns: Mapping[str, Any], n: int,
                               _bv=base_vec, _fx=fixed_values):
                    full_columns = dict(_fx)
                    full_columns.update(columns)
                    return _bv(full_columns, n)
                wrapped._vectorized = vectorized
            return wrapped

        reduced_constraints = ConstraintSet(_wrap(c) for c in self._constraints)
        return SearchSpace(kept_params, reduced_constraints,
                           name=name or (self.name + "_reduced" if self.name else "reduced"),
                           memoize_threshold=self.memoize_threshold)

    # --------------------------------------------------------------------- encoding

    def encode(self, config: Mapping[str, Any]) -> np.ndarray:
        """Encode one configuration as a float feature vector (column per parameter)."""
        self.validate_membership(config)
        return np.array([p.encode(config[p.name]) for p in self._parameters], dtype=float)

    def encode_batch(self, configs: Sequence[Mapping[str, Any]]) -> np.ndarray:
        """Encode many configurations as an ``(n, dimensions)`` float matrix.

        The loop runs once per parameter (not once per configuration per parameter in
        Python) so large campaigns encode quickly.
        """
        n = len(configs)
        out = np.empty((n, self.dimensions), dtype=float)
        for j, p in enumerate(self._parameters):
            if p.is_numeric:
                out[:, j] = [float(c[p.name]) for c in configs]
            else:
                out[:, j] = [float(p.index_of(c[p.name])) for c in configs]
        return out

    def encode_indices(self, indices: np.ndarray | Sequence[int], *,
                       digits: np.ndarray | None = None) -> np.ndarray:
        """Index-native form of :meth:`encode_batch`: feature rows straight from the
        value columns, no configuration dictionaries.

        Numeric parameters contribute their value, all others their ordinal digit --
        element-wise identical to encoding the materialised configurations.
        """
        if digits is None:
            digits = self.indices_to_digits(indices)
        out = np.empty((digits.shape[0], self.dimensions), dtype=float)
        for j, (p, col) in enumerate(zip(self._parameters, self._value_columns)):
            if p.is_numeric:
                out[:, j] = col[digits[:, j]].astype(float)
            else:
                out[:, j] = digits[:, j].astype(float)
        return out

    def encode_index(self, index: int) -> np.ndarray:
        """Scalar form of :meth:`encode_indices`: the feature row of one index.

        One digit-arithmetic row plus one gather from the encoded-value grid --
        element-wise identical to ``encode_indices([index])[0]`` without the
        batch scaffolding, which is what the population tuners' per-candidate
        selections (DE replacement, PSO repair) pay.
        """
        if not (0 <= index < self._cardinality):
            raise InvalidConfigurationError(
                f"index {index} out of range [0, {self._cardinality})")
        grid, _pad, _buffer = self._decode_state()
        rows = self.__dict__.get("_dim_range")
        if rows is None:
            rows = self._dim_range = np.arange(self.dimensions)
        return grid[rows, (index // self._places) % self._radices]

    def _encoded_grid(self) -> tuple[np.ndarray, np.ndarray | None]:
        """The ``(dimensions, max_radix)`` encoded-value grid, built once.

        Row ``j`` holds parameter ``j``'s numeric values (ordinals for
        non-numeric parameters) -- exactly what :meth:`encode` produces per
        coordinate -- padded to the widest radix.  The companion boolean mask
        flags the padded cells (None when every radix is equal), so decode can
        force their distance to ``inf`` and a padded cell can never win the
        nearest-value argmin, whatever the query vector contains.
        """
        cached = self.__dict__.get("_enc_grid")
        if cached is None:
            radices = self._radices.tolist()
            width = max(radices)
            grid = np.zeros((self.dimensions, width), dtype=float)
            for j, p in enumerate(self._parameters):
                grid[j, : radices[j]] = p.numeric_values()
            pad = np.arange(width) >= self._radices[:, None]
            grid.setflags(write=False)
            cached = self._enc_grid = (grid, pad if pad.any() else None)
        return cached

    def decode_digits(self, vector: Sequence[float]) -> np.ndarray:
        """Digit vector of the member configuration nearest to a feature vector.

        The per-parameter nearest-value rule (first minimum of ``|grid - x|``) is
        exactly the one :meth:`decode` applies, so
        ``config_at(digits_to_indices(decode_digits(v)[None, :])[0])`` equals
        ``decode(v)``.  All parameters are resolved in one vectorized pass over
        the padded encoded-value grid (padded cells are forced to infinite
        distance), element-wise identical to the per-parameter scan.
        """
        if len(vector) != self.dimensions:
            raise InvalidConfigurationError(
                f"vector has {len(vector)} entries, expected {self.dimensions}")
        return self._decode_digits_fast(vector)

    def _decode_state(self) -> tuple[np.ndarray, np.ndarray | None, np.ndarray]:
        """``(grid, pad, buffer)`` of the scalar decoder, one dictionary probe.

        The buffer is the reusable distance workspace: the scalar decoder sits
        inside the population tuners' per-candidate loop, where the two
        temporaries of the naive spelling dominate the arithmetic.  (Like the
        neighbourhood memo, this makes spaces non-thread-safe; the execution
        subsystem parallelises across processes.)
        """
        cached = self.__dict__.get("_dec_state")
        if cached is None:
            grid, pad = self._encoded_grid()
            cached = self._dec_state = (grid, pad, np.empty(grid.shape))
        return cached

    def _decode_digits_fast(self, vector: Sequence[float]) -> np.ndarray:
        grid, pad, buffer = self._decode_state()
        np.subtract(grid, np.asarray(vector, dtype=float)[:, None], out=buffer)
        np.abs(buffer, out=buffer)
        if pad is not None:
            buffer[pad] = np.inf
        return buffer.argmin(axis=1)

    def decode_digits_batch(self, vectors: np.ndarray) -> np.ndarray:
        """Batch form of :meth:`decode_digits`: ``(n, dimensions)`` feature rows
        to an ``(n, dimensions)`` digit matrix in one broadcast pass, row-wise
        identical to the scalar decoder (same first-minimum tie rule)."""
        vectors = np.asarray(vectors, dtype=float)
        if vectors.ndim != 2 or vectors.shape[1] != self.dimensions:
            raise InvalidConfigurationError(
                f"expected an (n, {self.dimensions}) matrix, got shape "
                f"{vectors.shape}")
        grid, pad = self._encoded_grid()
        distance = np.abs(grid[None, :, :] - vectors[:, :, None])
        if pad is not None:
            distance[:, pad] = np.inf
        return np.argmin(distance, axis=2)

    def decode_index(self, vector: Sequence[float]) -> int:
        """Mixed-radix index of the member configuration nearest to ``vector``."""
        if len(vector) != self.dimensions:
            raise InvalidConfigurationError(
                f"vector has {len(vector)} entries, expected {self.dimensions}")
        return int(self._decode_digits_fast(vector) @ self._places)

    def decode_indices(self, vectors: np.ndarray) -> np.ndarray:
        """Batch form of :meth:`decode_index`: nearest-member indices of many
        feature vectors (one broadcast decode, one mixed-radix assembly)."""
        return self.decode_digits_batch(vectors) @ self._places

    def decode(self, vector: Sequence[float]) -> Config:
        """Map a feature vector back to the nearest member configuration."""
        digits = self.decode_digits(vector)
        return {p.name: p.value_at(int(d))
                for p, d in zip(self._parameters, digits)}

    # ------------------------------------------------------------------ serialization

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable description of the search space."""
        return {
            "name": self.name,
            "parameters": [p.to_dict() for p in self._parameters],
            "constraints": self._constraints.to_list(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SearchSpace":
        """Inverse of :meth:`to_dict` (only string-expression constraints round-trip).

        Constraints referencing names that are neither parameters nor whitelisted
        builtins are dropped with a
        :class:`~repro.core.constraints.ConstraintSerializationWarning`: the typical
        culprit is a legacy serialization of a *named* callable constraint (e.g.
        ``"power_of_two"``), which parses as an expression but could only ever raise
        on evaluation.
        """
        import warnings

        from repro.core.constraints import ConstraintSerializationWarning

        params = [Parameter.from_dict(d) for d in data["parameters"]]
        names = {p.name for p in params}
        constraints = ConstraintSet()
        for constraint in ConstraintSet.from_list(data.get("constraints", [])):
            unknown = (constraint.referenced_names() or frozenset()) - names
            if unknown:
                warnings.warn(
                    f"dropping constraint {constraint.expression!r}: it references "
                    f"{sorted(unknown)} which are not parameters of this space "
                    f"(legacy serialization of a callable constraint?)",
                    ConstraintSerializationWarning, stacklevel=2)
                continue
            constraints.add(constraint)
        return cls(params, constraints, name=data.get("name", ""))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"SearchSpace(name={self.name!r}, dimensions={self.dimensions}, "
                f"cardinality={self.cardinality})")


class _LazyColumns(_MappingABC):
    """Name-indexable view of a digit matrix that gathers value columns on demand.

    Handed to :meth:`ConstraintSet.satisfied_mask` so each batch evaluator only pays
    the digit->value gather for the parameters its expression actually references;
    iterating lists every parameter name, so dict-style consumers (e.g. the
    reduced-space constraint wrappers, which ``update`` a real dict from this view)
    see the complete column set.
    """

    __slots__ = ("_space", "_digits", "_cache")

    def __init__(self, space: "SearchSpace", digits: np.ndarray):
        self._space = space
        self._digits = digits
        self._cache: dict[str, np.ndarray] = {}

    def __getitem__(self, name: str) -> np.ndarray:
        column = self._cache.get(name)
        if column is None:
            space = self._space
            j = space._column_of[name]  # KeyError -> missing-parameter semantics
            column = space._value_columns[j][self._digits[:, j]]
            self._cache[name] = column
        return column

    def __iter__(self) -> Iterator[str]:
        return iter(self._space.parameter_names)

    def __len__(self) -> int:
        return len(self._space._parameters)


class _LazyConfigs:
    """Row-indexable view of a digit matrix that builds config dicts on demand.

    Handed to :meth:`ConstraintSet.satisfied_mask` so the scalar fallback for opaque
    callables sees original Python values without the batch path ever materialising
    configuration dictionaries for rows it never touches.
    """

    __slots__ = ("_space", "_digits")

    def __init__(self, space: SearchSpace, digits: np.ndarray):
        self._space = space
        self._digits = digits

    def __len__(self) -> int:
        return self._digits.shape[0]

    def __getitem__(self, i: int) -> Config:
        row = self._digits[i]
        return {p.name: values[row[j]]
                for j, (p, values) in enumerate(zip(self._space._parameters,
                                                    self._space._value_objects))}
