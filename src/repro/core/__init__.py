"""Core problem interface shared by all benchmarks and all tuners.

This subpackage implements what the paper calls the "standardized problem interface":
general configuration-space and kernel-handler classes that both the benchmarks and the
autotuners program against, so that a new tuner or a new benchmark only has to implement
one small contract to participate in the suite.
"""

from repro.core.parameter import Parameter
from repro.core.constraints import Constraint, ConstraintSet
from repro.core.searchspace import SearchSpace
from repro.core.problem import TuningProblem, ObjectiveDirection
from repro.core.result import Observation, TuningResult
from repro.core.budget import Budget
from repro.core.cache import EvaluationCache

__all__ = [
    "Parameter",
    "Constraint",
    "ConstraintSet",
    "SearchSpace",
    "TuningProblem",
    "ObjectiveDirection",
    "Observation",
    "TuningResult",
    "Budget",
    "EvaluationCache",
]
