"""Tuning budgets.

The paper's convergence study (Fig. 2) plots tuner progress against the number of
*function evaluations*, because on real hardware each evaluation costs a kernel
compilation plus several timed launches.  :class:`Budget` models that resource: a
maximum number of evaluations, optionally a maximum number of *unique* configurations
and a simulated wall-clock allowance (the sum of simulated kernel times plus a fixed
per-evaluation compilation overhead).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

from repro.core.errors import BudgetExhaustedError

__all__ = ["Budget"]


@dataclass
class Budget:
    """Evaluation budget for a tuning run.

    Attributes
    ----------
    max_evaluations:
        Hard limit on the number of objective evaluations (None = unlimited).
    max_unique_configs:
        Limit on the number of *distinct* configurations (None = unlimited).  Useful
        when comparing tuners that may re-evaluate points.
    max_simulated_seconds:
        Limit on accumulated simulated time: kernel runtimes plus
        ``compile_overhead_seconds`` per new configuration (None = unlimited).
    compile_overhead_seconds:
        Fixed simulated cost charged per evaluation (default 1 ms).
    """

    max_evaluations: int | None = None
    max_unique_configs: int | None = None
    max_simulated_seconds: float | None = None
    compile_overhead_seconds: float = 1e-3

    evaluations_used: int = field(default=0, init=False)
    unique_used: int = field(default=0, init=False)
    simulated_seconds_used: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        if self.max_evaluations is not None and self.max_evaluations < 0:
            raise ValueError("max_evaluations must be non-negative")
        if self.max_unique_configs is not None and self.max_unique_configs < 0:
            raise ValueError("max_unique_configs must be non-negative")
        if self.max_simulated_seconds is not None and self.max_simulated_seconds < 0:
            raise ValueError("max_simulated_seconds must be non-negative")

    # ---------------------------------------------------------------------- queries

    @property
    def exhausted(self) -> bool:
        """True when any configured limit has been reached."""
        if self.max_evaluations is not None and self.evaluations_used >= self.max_evaluations:
            return True
        if self.max_unique_configs is not None and self.unique_used >= self.max_unique_configs:
            return True
        if (self.max_simulated_seconds is not None
                and self.simulated_seconds_used >= self.max_simulated_seconds):
            return True
        return False

    @property
    def remaining_evaluations(self) -> int | float:
        """Evaluations still allowed (``math.inf`` when unlimited)."""
        if self.max_evaluations is None:
            return math.inf
        return max(0, self.max_evaluations - self.evaluations_used)

    def affordable_evaluations(self) -> int | float | None:
        """How many evaluations can certainly be charged right now, or None.

        This is the capability probe of the bulk-accounting protocol: a caller
        holding ``n`` candidates may evaluate ``min(n, affordable_evaluations())``
        of them and settle with one :meth:`charge_bulk`, no matter what the
        individual evaluations turn out to cost.  That prefix is only computable
        when affordability does not depend on per-evaluation outcomes, so the
        base class answers ``None`` as soon as a unique-configuration or
        simulated-seconds limit is configured (those narrow with every charge),
        and :attr:`remaining_evaluations` (``math.inf`` when unlimited)
        otherwise.

        Subclasses that narrow :attr:`exhausted` (e.g. the portfolio tuner's
        per-member slice) MUST override this to reflect their own cap -- the
        tuner runtime trusts the answer instead of inspecting budget types.
        """
        if self.max_unique_configs is not None or self.max_simulated_seconds is not None:
            return None
        return self.remaining_evaluations

    # -------------------------------------------------------------------- accounting

    def charge(self, simulated_seconds: float = 0.0, new_config: bool = False) -> None:
        """Record one evaluation against the budget.

        Raises
        ------
        BudgetExhaustedError
            If the budget was already exhausted before this charge.
        """
        if self.exhausted:
            raise BudgetExhaustedError(
                f"budget exhausted after {self.evaluations_used} evaluations")
        self.evaluations_used += 1
        if new_config:
            self.unique_used += 1
        if math.isfinite(simulated_seconds):
            self.simulated_seconds_used += simulated_seconds + self.compile_overhead_seconds
        else:
            self.simulated_seconds_used += self.compile_overhead_seconds

    def charge_bulk(self, count: int,
                    simulated_seconds: "float | list[float]" = 0.0,
                    new_configs: int = 0) -> None:
        """Record ``count`` evaluations in one call (the batch twin of :meth:`charge`).

        End-state identical to ``count`` sequential :meth:`charge` calls with the
        same per-evaluation costs; pass ``simulated_seconds`` as the per-evaluation
        list to reproduce the sequential floating-point accumulation order bit for
        bit (a scalar total is accepted where that precision is irrelevant).  The
        caller must have pre-computed that all ``count`` evaluations are affordable
        (:meth:`affordable_evaluations` is that probe, and answers only under a
        pure evaluation-count limit, which is exactly when the index-native batch
        paths use it).  Raises like :meth:`charge` when the budget is already
        exhausted, and also when ``count`` overshoots a finite
        :attr:`max_evaluations` -- a miscomputed prefix must fail loudly instead
        of silently recording more evaluations than the run was allowed.
        """
        if count <= 0:
            return
        if self.exhausted:
            raise BudgetExhaustedError(
                f"budget exhausted after {self.evaluations_used} evaluations")
        remaining = self.remaining_evaluations
        if count > remaining:
            raise BudgetExhaustedError(
                f"bulk charge of {count} evaluations overshoots the remaining "
                f"allowance of {remaining} (max_evaluations={self.max_evaluations}, "
                f"used={self.evaluations_used})")
        self.evaluations_used += count
        self.unique_used += new_configs
        overhead = self.compile_overhead_seconds
        if isinstance(simulated_seconds, (int, float)):
            self.simulated_seconds_used += simulated_seconds + count * overhead
        else:
            used = self.simulated_seconds_used
            for seconds in simulated_seconds:
                used += seconds + overhead
            self.simulated_seconds_used = used

    def reset(self) -> None:
        """Zero all usage counters (limits are kept)."""
        self.evaluations_used = 0
        self.unique_used = 0
        self.simulated_seconds_used = 0.0

    def copy(self) -> "Budget":
        """A fresh, unused budget with the same limits."""
        return Budget(max_evaluations=self.max_evaluations,
                      max_unique_configs=self.max_unique_configs,
                      max_simulated_seconds=self.max_simulated_seconds,
                      compile_overhead_seconds=self.compile_overhead_seconds)

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form (limits and usage)."""
        return {
            "max_evaluations": self.max_evaluations,
            "max_unique_configs": self.max_unique_configs,
            "max_simulated_seconds": self.max_simulated_seconds,
            "compile_overhead_seconds": self.compile_overhead_seconds,
            "evaluations_used": self.evaluations_used,
            "unique_used": self.unique_used,
            "simulated_seconds_used": self.simulated_seconds_used,
        }
