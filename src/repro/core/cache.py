"""Evaluation caches: the campaign data behind every figure of the paper.

The paper's methodology is cache-centric: for each (benchmark, GPU) pair the authors
either exhaustively evaluate the whole valid search space (Pnpoly, Nbody, GEMM,
Convolution) or evaluate 10 000 random configurations (Hotspot, Dedispersion, Expdist),
and *all* analyses -- distributions, random-search convergence, centrality, speedups,
portability, feature importance -- are then computed from those stored measurements.

:class:`EvaluationCache` is that store.  It maps configurations to measured runtimes,
remembers which configurations were invalid, knows summary statistics, can be encoded
into ML feature matrices, and can be replayed as a :class:`~repro.core.problem.TuningProblem`
so that tuners can be benchmarked against cached data without re-running the device
model (exactly how BAT replays its own caches).
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.core.errors import CacheMissError, ReproError
from repro.core.problem import TuningProblem
from repro.core.result import Observation
from repro.core.searchspace import SearchSpace, config_key

__all__ = ["EvaluationCache"]


class EvaluationCache:
    """Measured runtimes for one benchmark on one (simulated) GPU.

    Parameters
    ----------
    benchmark:
        Benchmark name (e.g. ``"hotspot"``).
    gpu:
        Device name (e.g. ``"RTX_3090"``).
    space:
        The search space the configurations belong to.
    exhaustive:
        True when the cache covers every valid configuration of the space (affects how
        analyses interpret the data; the paper marks Hotspot/Dedisp/Expdist caches as
        sampled).
    """

    def __init__(self, benchmark: str, gpu: str, space: SearchSpace,
                 exhaustive: bool = False):
        self.benchmark = benchmark
        self.gpu = gpu
        self.space = space
        self.exhaustive = exhaustive
        self._entries: dict[tuple, Observation] = {}
        self.metadata: dict[str, Any] = {}

    # --------------------------------------------------------------------- mutation

    def add(self, config: Mapping[str, Any], value: float, valid: bool = True,
            error: str = "") -> None:
        """Store one measurement (overwrites an existing entry for the same config)."""
        obs = Observation(config=dict(config), value=value if valid else math.inf,
                          valid=valid, error=error,
                          evaluation_index=len(self._entries),
                          gpu=self.gpu, benchmark=self.benchmark)
        self._entries[config_key(config)] = obs

    def add_observation(self, observation: Observation) -> None:
        """Store an existing observation object."""
        self._entries[observation.key] = observation

    def update(self, observations: Iterable[Observation]) -> None:
        """Store many observations."""
        for obs in observations:
            self.add_observation(obs)

    # ---------------------------------------------------------------------- queries

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, config: Mapping[str, Any]) -> bool:
        return config_key(config) in self._entries

    def __iter__(self) -> Iterator[Observation]:
        return iter(self._entries.values())

    def get(self, config: Mapping[str, Any]) -> Observation | None:
        """The stored observation for ``config`` or None."""
        return self._entries.get(config_key(config))

    def lookup(self, config: Mapping[str, Any]) -> Observation:
        """Like :meth:`get` but raises :class:`CacheMissError` when absent."""
        obs = self.get(config)
        if obs is None:
            raise CacheMissError(
                f"configuration not in {self.benchmark}/{self.gpu} cache: {dict(config)}")
        return obs

    @property
    def observations(self) -> tuple[Observation, ...]:
        """All stored observations (insertion order)."""
        return tuple(self._entries.values())

    def valid_observations(self) -> list[Observation]:
        """Only the successfully measured configurations."""
        return [o for o in self._entries.values() if not o.is_failure]

    def valid_arrays(self) -> tuple[list[dict[str, Any]], np.ndarray]:
        """Configurations and runtimes of the valid entries, in one pass.

        This is the array-native export the graph layer builds on: the configuration
        list is aligned with the float runtime vector, ready to be turned into a digit
        matrix by :meth:`~repro.core.searchspace.SearchSpace.digits_of_configs`.
        """
        configs: list[dict[str, Any]] = []
        values: list[float] = []
        for o in self._entries.values():
            if not o.is_failure:
                configs.append(dict(o.config))
                values.append(o.value)
        return configs, np.asarray(values, dtype=float)

    @property
    def num_valid(self) -> int:
        """Number of successful measurements."""
        return sum(1 for o in self._entries.values() if not o.is_failure)

    @property
    def num_invalid(self) -> int:
        """Number of failed configurations stored."""
        return len(self._entries) - self.num_valid

    # ------------------------------------------------------------------- statistics

    def values(self, valid_only: bool = True) -> np.ndarray:
        """Measured runtimes as a float array (valid entries only by default)."""
        if valid_only:
            return np.array([o.value for o in self._entries.values() if not o.is_failure],
                            dtype=float)
        return np.array([o.value for o in self._entries.values()], dtype=float)

    def configs(self, valid_only: bool = True) -> list[dict[str, Any]]:
        """Stored configurations, aligned with :meth:`values`."""
        if valid_only:
            return [dict(o.config) for o in self._entries.values() if not o.is_failure]
        return [dict(o.config) for o in self._entries.values()]

    def best(self) -> Observation:
        """The fastest configuration in the cache."""
        valid = self.valid_observations()
        if not valid:
            raise ReproError(f"cache {self.benchmark}/{self.gpu} has no valid entries")
        return min(valid, key=lambda o: o.value)

    def worst(self) -> Observation:
        """The slowest valid configuration in the cache."""
        valid = self.valid_observations()
        if not valid:
            raise ReproError(f"cache {self.benchmark}/{self.gpu} has no valid entries")
        return max(valid, key=lambda o: o.value)

    def optimum(self) -> float:
        """Runtime of the best configuration (the paper's reference optimum)."""
        return self.best().value

    def median(self) -> float:
        """Median runtime of the valid configurations (Fig. 1 centring, Fig. 4 baseline)."""
        vals = self.values()
        if vals.size == 0:
            raise ReproError(f"cache {self.benchmark}/{self.gpu} has no valid entries")
        return float(np.median(vals))

    def statistics(self) -> dict[str, float]:
        """Summary statistics used by reports."""
        vals = self.values()
        if vals.size == 0:
            raise ReproError(f"cache {self.benchmark}/{self.gpu} has no valid entries")
        return {
            "count": float(len(self._entries)),
            "valid": float(vals.size),
            "best": float(vals.min()),
            "worst": float(vals.max()),
            "median": float(np.median(vals)),
            "mean": float(vals.mean()),
            "std": float(vals.std()),
        }

    # -------------------------------------------------------------------- ML export

    def to_feature_matrix(self, valid_only: bool = True) -> tuple[np.ndarray, np.ndarray]:
        """Encode the cache as ``(X, y)`` for the ML substrate.

        ``X`` has one column per parameter (in search-space order), ``y`` holds the
        measured runtimes.
        """
        configs = self.configs(valid_only=valid_only)
        if not configs:
            raise ReproError(f"cache {self.benchmark}/{self.gpu} has no entries to encode")
        X = self.space.encode_batch(configs)
        if valid_only:
            y = self.values(valid_only=True)
        else:
            y = np.array([o.value for o in self._entries.values()], dtype=float)
        return X, y

    # ------------------------------------------------------------------ replay

    def to_problem(self, strict: bool = True, memoize: bool = True) -> TuningProblem:
        """A :class:`TuningProblem` that answers evaluations from this cache.

        Parameters
        ----------
        strict:
            If True (default), configurations missing from the cache raise
            :class:`CacheMissError` (and therefore appear as invalid observations).
            If False, missing configurations are treated as invalid silently.
        """
        def _evaluate(config: Mapping[str, Any]) -> float:
            obs = self.get(config)
            if obs is None:
                if strict:
                    raise CacheMissError(
                        f"configuration not present in {self.benchmark}/{self.gpu} cache")
                return math.inf
            if obs.is_failure:
                return math.inf
            return obs.value

        return TuningProblem(name=self.benchmark, space=self.space, evaluate_fn=_evaluate,
                             gpu=self.gpu, memoize=memoize)

    # ------------------------------------------------------------------ serialization

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form including the search-space description."""
        return {
            "benchmark": self.benchmark,
            "gpu": self.gpu,
            "exhaustive": self.exhaustive,
            "metadata": dict(self.metadata),
            "space": self.space.to_dict(),
            "observations": [o.to_dict() for o in self._entries.values()],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any],
                  space: SearchSpace | None = None) -> "EvaluationCache":
        """Inverse of :meth:`to_dict`.

        ``space`` may be supplied to reuse an existing space object (e.g. one that
        carries callable constraints which do not survive JSON round-trips).
        """
        if space is None:
            space = SearchSpace.from_dict(data["space"])
        cache = cls(benchmark=data["benchmark"], gpu=data["gpu"], space=space,
                    exhaustive=bool(data.get("exhaustive", False)))
        cache.metadata.update(data.get("metadata", {}))
        for od in data.get("observations", ()):
            cache.add_observation(Observation.from_dict(od))
        return cache

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"EvaluationCache(benchmark={self.benchmark!r}, gpu={self.gpu!r}, "
                f"entries={len(self)}, exhaustive={self.exhaustive})")
