"""Evaluation caches: the campaign data behind every figure of the paper.

The paper's methodology is cache-centric: for each (benchmark, GPU) pair the authors
either exhaustively evaluate the whole valid search space (Pnpoly, Nbody, GEMM,
Convolution) or evaluate 10 000 random configurations (Hotspot, Dedispersion, Expdist),
and *all* analyses -- distributions, random-search convergence, centrality, speedups,
portability, feature importance -- are then computed from those stored measurements.

:class:`EvaluationCache` is that store.  It maps configurations to measured runtimes,
remembers which configurations were invalid, knows summary statistics, can be encoded
into ML feature matrices, and can be replayed as a :class:`~repro.core.problem.TuningProblem`
so that tuners can be benchmarked against cached data without re-running the device
model (exactly how BAT replays its own caches).

Columnar index table
--------------------
Replayed tuning campaigns perform millions of cache lookups, and keying them by
configuration dictionary (sort, tuple-ify, hash) is what made the seed's simulation
loop Python-bound.  :meth:`EvaluationCache.index_table` exposes the store as a
columnar table keyed by mixed-radix *space index* instead: dense ``row_of`` array for
small spaces, an int->row hash for the huge sampled ones, with aligned float/bool
``values``/``failure`` columns.  The table is built lazily in one batch from the dict
store and kept in sync by :meth:`add`/:meth:`add_observation` (mutations queue and
flush on the next table access), so both views always answer identically.

Cache formats
-------------
Two on-disk formats carry a cache, with one compatibility guarantee between them:

* **JSON** (:mod:`repro.io.cachefile`) is the *interchange* format -- self-describing,
  diffable, byte-deterministic, and frozen: nothing in this module changes a single
  byte of it.
* **Columnar** (:mod:`repro.io.columnar`, :meth:`EvaluationCache.to_columnar` /
  :meth:`~EvaluationCache.from_columnar`) is the *performance* format: fixed-width
  little-endian index/value/failure-code columns behind a checksummed header.
  ``from_columnar(mmap=True)`` opens without rehydrating the observation dictionary
  -- the :class:`CacheIndexTable` is built straight off the memory-mapped columns and
  the dict store materialises lazily only when a dictionary-keyed accessor is
  actually used -- so replay opens are cheap and concurrent readers share pages.

A cache round-tripped through the columnar store serializes back to byte-identical
JSON (same observations, same ``evaluation_index`` assignment, same error strings),
which is what lets the two formats coexist under the byte-identity contracts.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.core.errors import (CacheMissError, FragmentIntegrityError, ReproError,
                               SerializationError)
from repro.core.problem import TuningProblem
from repro.core.result import LazyConfig, Observation
from repro.core.searchspace import SearchSpace, config_key

__all__ = ["EvaluationCache", "CacheIndexTable"]

#: Cardinality ceiling for the dense ``index -> row`` array of the columnar table
#: (int32 rows: 4 MB per million points).  Above it, lookups go through a hash map.
_DENSE_LOOKUP_MAX = 2_000_000


class CacheIndexTable:
    """Columnar ``space index -> (value, failure)`` view of an evaluation cache.

    ``lookup_one`` answers a single integer-index probe without building any
    configuration dictionary; ``lookup`` is the batch form.  Rows overwrite in
    place when the same index is stored again, mirroring the dict store.  Batch
    lookups against hashed (above-dense-ceiling) tables run through a lazily
    sorted key array and one :func:`numpy.searchsorted` instead of a Python
    ``dict.get`` per probe; scalar probes keep the O(1) hash.
    """

    __slots__ = ("_cardinality", "_dense", "_row_of", "_values", "_failure", "_size",
                 "_sorted_keys", "_sorted_rows")

    def __init__(self, cardinality: int):
        self._cardinality = cardinality
        self._dense = cardinality <= _DENSE_LOOKUP_MAX
        self._row_of: Any = (np.full(cardinality, -1, dtype=np.int32)
                             if self._dense else {})
        self._values = np.empty(0, dtype=float)
        self._failure = np.empty(0, dtype=bool)
        self._size = 0
        # Hashed-path batch index: sorted key/row arrays for searchsorted lookups,
        # rebuilt lazily after any store that introduced new keys.
        self._sorted_keys: np.ndarray | None = None
        self._sorted_rows: np.ndarray | None = None

    @classmethod
    def from_columns(cls, cardinality: int, indices: np.ndarray,
                     values: np.ndarray, failure: np.ndarray) -> "CacheIndexTable":
        """Build a table directly over existing columns (no per-row staging).

        This is how a memory-mapped columnar cache backs its index table: the
        ``values``/``failure`` arrays are adopted by reference (they may be
        read-only mmap views -- :meth:`store` copies on first write), and only
        the ``index -> row`` structure is materialised here.  ``indices`` must
        be duplicate-free, which insertion-ordered cache columns are by
        construction.
        """
        table = cls.__new__(cls)
        indices = np.asarray(indices, dtype=np.int64)
        n = indices.size
        table._cardinality = cardinality
        table._dense = cardinality <= _DENSE_LOOKUP_MAX
        if table._dense:
            row_of = np.full(cardinality, -1, dtype=np.int32)
            row_of[indices] = np.arange(n, dtype=np.int32)
            table._row_of = row_of
        else:
            table._row_of = dict(zip(indices.tolist(), range(n)))
        table._values = np.asarray(values, dtype=float)
        table._failure = np.asarray(failure, dtype=bool)
        table._size = n
        table._sorted_keys = table._sorted_rows = None
        return table

    def __len__(self) -> int:
        return self._size

    def _grow(self, extra: int) -> None:
        need = self._size + extra
        if need <= self._values.size:
            return
        capacity = max(need, 2 * self._values.size, 256)
        self._values = np.resize(self._values, capacity)
        self._failure = np.resize(self._failure, capacity)

    def store(self, indices: np.ndarray, values: np.ndarray,
              failure: np.ndarray) -> None:
        """Insert/overwrite many rows at once (aligned arrays, last write wins)."""
        if indices.size and not self._values.flags.writeable:
            # Tables built over memory-mapped columns adopt read-only views; the
            # first mutation promotes them to private writable copies.
            self._values = self._values.copy()
            self._failure = self._failure.copy()
        if self._dense and indices.size:
            # Collapse duplicate indices within the batch to their last occurrence
            # before allocating rows, or each duplicate would leak a fresh row.
            unique, inverse = np.unique(indices, return_inverse=True)
            if unique.size != indices.size:
                last = np.empty(unique.size, dtype=np.int64)
                last[inverse] = np.arange(indices.size)
                indices, values, failure = unique, values[last], failure[last]
        self._grow(indices.size)
        if self._dense:
            rows = self._row_of[indices]
            fresh = rows < 0
            n_fresh = int(fresh.sum())
            rows[fresh] = self._size + np.arange(n_fresh, dtype=np.int32)
            self._row_of[indices] = rows
            self._size += n_fresh
            self._values[rows] = values
            self._failure[rows] = failure
            return
        row_of = self._row_of
        size = self._size
        for k, index in enumerate(indices.tolist()):
            row = row_of.get(index)
            if row is None:
                row_of[index] = row = size
                size += 1
            self._values[row] = values[k]
            self._failure[row] = failure[k]
        if size != self._size:
            # New keys invalidate the sorted batch index; pure overwrites keep it
            # (rows are stable, and values/failure are read through the row arrays).
            self._sorted_keys = self._sorted_rows = None
        self._size = size

    def _sorted_index(self) -> tuple[np.ndarray, np.ndarray]:
        """Sorted ``(keys, rows)`` arrays of the hashed store, built on demand.

        One O(n log n) sort per mutation burst replaces the per-probe Python
        ``dict.get`` loop of batch lookups with a single :func:`numpy.searchsorted`
        -- the ROADMAP's "searchsorted batch lookup for hashed cache tables".
        """
        if self._sorted_keys is None:
            keys = np.fromiter(self._row_of.keys(), dtype=np.int64,
                               count=len(self._row_of))
            rows = np.fromiter(self._row_of.values(), dtype=np.int64,
                               count=len(self._row_of))
            order = np.argsort(keys)
            self._sorted_keys = keys[order]
            self._sorted_rows = rows[order]
        return self._sorted_keys, self._sorted_rows

    def lookup_one(self, index: int) -> tuple[float, bool, bool]:
        """``(value, failure, found)`` of one space index.

        Out-of-range indices are misses, exactly like unknown in-range ones (the
        dense path must not let NumPy's negative-index wrapping alias a row).
        """
        if self._dense:
            row = (int(self._row_of[index])
                   if 0 <= index < self._cardinality else -1)
        else:
            row = self._row_of.get(index, -1)
        if row < 0:
            return math.inf, True, False
        return float(self._values[row]), bool(self._failure[row]), True

    def lookup(self, indices: np.ndarray | Sequence[int]
               ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batch ``(values, failure, found)`` arrays for an index block.

        Out-of-range indices are misses (see :meth:`lookup_one`).
        """
        idx = np.asarray(indices, dtype=np.int64)
        if self._dense:
            in_range = (idx >= 0) & (idx < self._cardinality)
            rows = np.full(idx.size, -1, dtype=np.int64)
            rows[in_range] = self._row_of[idx[in_range]]
        else:
            rows = np.full(idx.size, -1, dtype=np.int64)
            keys, key_rows = self._sorted_index()
            if keys.size:
                pos = np.searchsorted(keys, idx)
                pos[pos == keys.size] = 0
                hit = keys[pos] == idx
                rows[hit] = key_rows[pos[hit]]
        found = rows >= 0
        values = np.full(idx.size, math.inf, dtype=float)
        failure = np.ones(idx.size, dtype=bool)
        values[found] = self._values[rows[found]]
        failure[found] = self._failure[rows[found]]
        return values, failure, found


class _LazyColumns:
    """Columnar rows adopted by a cache but not yet materialised as Observations.

    Holds the (possibly memory-mapped, read-only) index/value/code arrays plus
    the interned error table of one columnar cache file.  The owning
    :class:`EvaluationCache` answers ``len``/counters/index-table queries straight
    off these arrays and only decodes them into :class:`Observation` objects when
    a dictionary-keyed accessor is actually used.
    """

    __slots__ = ("indices", "values", "codes", "errors")

    def __init__(self, indices: np.ndarray, values: np.ndarray,
                 codes: np.ndarray, errors: Sequence[str]):
        self.indices = indices
        self.values = values
        self.codes = codes
        self.errors = list(errors)

    @property
    def failure(self) -> np.ndarray:
        """Per-row ``Observation.is_failure`` flags, straight from the columns."""
        return (self.codes >= 0) | ~np.isfinite(self.values)


class EvaluationCache:
    """Measured runtimes for one benchmark on one (simulated) GPU.

    Parameters
    ----------
    benchmark:
        Benchmark name (e.g. ``"hotspot"``).
    gpu:
        Device name (e.g. ``"RTX_3090"``).
    space:
        The search space the configurations belong to.
    exhaustive:
        True when the cache covers every valid configuration of the space (affects how
        analyses interpret the data; the paper marks Hotspot/Dedisp/Expdist caches as
        sampled).
    """

    def __init__(self, benchmark: str, gpu: str, space: SearchSpace,
                 exhaustive: bool = False):
        self.benchmark = benchmark
        self.gpu = gpu
        self.space = space
        self.exhaustive = exhaustive
        self._store: dict[tuple, Observation] = {}
        self._lazy: _LazyColumns | None = None
        self._num_failures = 0
        self.metadata: dict[str, Any] = {}
        self._index_table: CacheIndexTable | None = None
        self._index_pending: list[Observation] = []

    # ------------------------------------------------------------- lazy dict store

    @property
    def _entries(self) -> dict[tuple, Observation]:
        """The dictionary store, materialising adopted columns on first touch."""
        if self._lazy is not None:
            self._materialize()
        return self._store

    def _materialize(self) -> None:
        from repro.io.columnar import decode_failure_strings

        lazy, self._lazy = self._lazy, None
        valid, errors = decode_failure_strings(lazy.codes, lazy.errors)
        space, gpu, benchmark = self.space, self.gpu, self.benchmark
        store = self._store
        fast = Observation.fast
        values = lazy.values.tolist()
        for row, index in enumerate(lazy.indices.tolist()):
            obs = fast(LazyConfig(space, index), values[row], bool(valid[row]),
                       errors[row], row, gpu, benchmark)
            store[obs.key] = obs
        # The index table (if already built from these columns) covers every
        # materialised row, so nothing is queued on ``_index_pending`` here.

    # --------------------------------------------------------------------- mutation

    def add(self, config: Mapping[str, Any], value: float, valid: bool = True,
            error: str = "") -> None:
        """Store one measurement (overwrites an existing entry for the same config)."""
        entries = self._entries
        obs = Observation(config=dict(config), value=value if valid else math.inf,
                          valid=valid, error=error,
                          evaluation_index=len(entries),
                          gpu=self.gpu, benchmark=self.benchmark)
        key = config_key(config)
        previous = entries.get(key)
        if previous is not None:
            self._num_failures -= previous.is_failure
        self._num_failures += obs.is_failure
        entries[key] = obs
        if self._index_table is not None:
            self._index_pending.append(obs)

    def add_observation(self, observation: Observation) -> None:
        """Store an existing observation object."""
        entries = self._entries
        key = observation.key
        previous = entries.get(key)
        if previous is not None:
            self._num_failures -= previous.is_failure
        self._num_failures += observation.is_failure
        entries[key] = observation
        if self._index_table is not None:
            self._index_pending.append(observation)

    def update(self, observations: Iterable[Observation]) -> None:
        """Store many observations."""
        for obs in observations:
            self.add_observation(obs)

    # ------------------------------------------------------------- columnar lookups

    def _flush_index_pending(self) -> None:
        pending = self._index_pending
        self._index_pending = []
        indices = self.space.indices_of_configs([o.config for o in pending])
        self._index_table.store(
            indices,
            np.asarray([o.value for o in pending], dtype=float),
            np.asarray([o.is_failure for o in pending], dtype=bool))

    def index_table(self) -> CacheIndexTable:
        """The columnar ``space index -> (value, failure)`` view of this cache.

        Built in one batch on first use and kept in sync with the dict store:
        mutations after the build queue up and flush on the next call, so the two
        views can never answer differently.  Call this per lookup burst (it is just
        an attribute check once built) rather than caching the table elsewhere.
        """
        if self._index_table is None:
            if self._lazy is not None:
                # Columnar-backed cache: build the table straight off the mapped
                # columns.  No observation objects, no dict, no per-row Python.
                lazy = self._lazy
                self._index_table = CacheIndexTable.from_columns(
                    self.space.cardinality, lazy.indices, lazy.values, lazy.failure)
                self._index_pending = []
            else:
                self._index_table = CacheIndexTable(self.space.cardinality)
                self._index_pending = list(self._store.values())
        if self._index_pending:
            self._flush_index_pending()
        return self._index_table

    # ---------------------------------------------------------------------- queries

    def __len__(self) -> int:
        if self._lazy is not None:
            return int(self._lazy.indices.size)
        return len(self._store)

    def __contains__(self, config: Mapping[str, Any]) -> bool:
        return config_key(config) in self._entries

    def __iter__(self) -> Iterator[Observation]:
        return iter(self._entries.values())

    def get(self, config: Mapping[str, Any]) -> Observation | None:
        """The stored observation for ``config`` or None."""
        return self._entries.get(config_key(config))

    def lookup(self, config: Mapping[str, Any]) -> Observation:
        """Like :meth:`get` but raises :class:`CacheMissError` when absent."""
        obs = self.get(config)
        if obs is None:
            raise CacheMissError(
                f"configuration not in {self.benchmark}/{self.gpu} cache: {dict(config)}")
        return obs

    @property
    def observations(self) -> tuple[Observation, ...]:
        """All stored observations (insertion order)."""
        return tuple(self._entries.values())

    def valid_observations(self) -> list[Observation]:
        """Only the successfully measured configurations."""
        return [o for o in self._entries.values() if not o.is_failure]

    def valid_arrays(self) -> tuple[list[dict[str, Any]], np.ndarray]:
        """Configurations and runtimes of the valid entries, in one pass.

        This is the array-native export the graph layer builds on: the configuration
        list is aligned with the float runtime vector, ready to be turned into a digit
        matrix by :meth:`~repro.core.searchspace.SearchSpace.digits_of_configs`.
        """
        configs: list[dict[str, Any]] = []
        values: list[float] = []
        for o in self._entries.values():
            if not o.is_failure:
                configs.append(dict(o.config))
                values.append(o.value)
        return configs, np.asarray(values, dtype=float)

    @property
    def num_valid(self) -> int:
        """Number of successful measurements.

        O(1): a running counter maintained by :meth:`add`/:meth:`add_observation`
        (overwrite-aware), not a scan -- progress and status paths poll these
        properties once per shard.
        """
        return len(self) - self._num_failures

    @property
    def num_invalid(self) -> int:
        """Number of failed configurations stored (O(1), see :attr:`num_valid`)."""
        return self._num_failures

    # ------------------------------------------------------------------- statistics

    def values(self, valid_only: bool = True) -> np.ndarray:
        """Measured runtimes as a float array (valid entries only by default)."""
        if valid_only:
            return np.array([o.value for o in self._entries.values() if not o.is_failure],
                            dtype=float)
        return np.array([o.value for o in self._entries.values()], dtype=float)

    def configs(self, valid_only: bool = True) -> list[dict[str, Any]]:
        """Stored configurations, aligned with :meth:`values`."""
        if valid_only:
            return [dict(o.config) for o in self._entries.values() if not o.is_failure]
        return [dict(o.config) for o in self._entries.values()]

    def best(self) -> Observation:
        """The fastest configuration in the cache."""
        valid = self.valid_observations()
        if not valid:
            raise ReproError(f"cache {self.benchmark}/{self.gpu} has no valid entries")
        return min(valid, key=lambda o: o.value)

    def worst(self) -> Observation:
        """The slowest valid configuration in the cache."""
        valid = self.valid_observations()
        if not valid:
            raise ReproError(f"cache {self.benchmark}/{self.gpu} has no valid entries")
        return max(valid, key=lambda o: o.value)

    def optimum(self) -> float:
        """Runtime of the best configuration (the paper's reference optimum)."""
        return self.best().value

    def median(self) -> float:
        """Median runtime of the valid configurations (Fig. 1 centring, Fig. 4 baseline)."""
        vals = self.values()
        if vals.size == 0:
            raise ReproError(f"cache {self.benchmark}/{self.gpu} has no valid entries")
        return float(np.median(vals))

    def statistics(self) -> dict[str, float]:
        """Summary statistics used by reports."""
        vals = self.values()
        if vals.size == 0:
            raise ReproError(f"cache {self.benchmark}/{self.gpu} has no valid entries")
        return {
            "count": float(len(self._entries)),
            "valid": float(vals.size),
            "best": float(vals.min()),
            "worst": float(vals.max()),
            "median": float(np.median(vals)),
            "mean": float(vals.mean()),
            "std": float(vals.std()),
        }

    # -------------------------------------------------------------------- ML export

    def to_feature_matrix(self, valid_only: bool = True) -> tuple[np.ndarray, np.ndarray]:
        """Encode the cache as ``(X, y)`` for the ML substrate.

        ``X`` has one column per parameter (in search-space order), ``y`` holds the
        measured runtimes.
        """
        configs = self.configs(valid_only=valid_only)
        if not configs:
            raise ReproError(f"cache {self.benchmark}/{self.gpu} has no entries to encode")
        X = self.space.encode_batch(configs)
        if valid_only:
            y = self.values(valid_only=True)
        else:
            y = np.array([o.value for o in self._entries.values()], dtype=float)
        return X, y

    # ------------------------------------------------------------------ replay

    def to_problem(self, strict: bool = True, memoize: bool = True) -> TuningProblem:
        """A :class:`TuningProblem` that answers evaluations from this cache.

        The problem carries both objective forms: the dictionary ``evaluate_fn``
        (key the dict store) and the index-native ``evaluate_index_fn`` (one probe of
        :meth:`index_table`, no dictionary, no hashing of sorted item tuples).  The
        two are element-wise equivalent by construction -- same values, same
        miss/failure semantics, same :class:`CacheMissError` message -- so a tuner
        may drive either path and record identical observations.

        Parameters
        ----------
        strict:
            If True (default), configurations missing from the cache raise
            :class:`CacheMissError` (and therefore appear as invalid observations).
            If False, missing configurations are treated as invalid silently.
        """
        def _evaluate(config: Mapping[str, Any]) -> float:
            obs = self.get(config)
            if obs is None:
                if strict:
                    raise CacheMissError(
                        f"configuration not present in {self.benchmark}/{self.gpu} cache")
                return math.inf
            if obs.is_failure:
                return math.inf
            return obs.value

        def _evaluate_index(index: int) -> float:
            value, failure, found = self.index_table().lookup_one(index)
            if not found:
                if strict:
                    raise CacheMissError(
                        f"configuration not present in {self.benchmark}/{self.gpu} cache")
                return math.inf
            if failure:
                return math.inf
            return value

        def _peek_indices(indices: np.ndarray
                          ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
            # Pure lookup, so peeking is free of side effects.  ``values`` is
            # normalised to what ``_evaluate_index`` returns (inf for misses and
            # stored failures), stored non-positive values are flagged exactly
            # like the scalar evaluation path would invalidate them, and only
            # strict misses raise (their error string is not value-derived).
            values, failure, found = self.index_table().lookup(indices)
            values = np.where(failure, math.inf, values)
            raises = (~found if strict
                      else np.zeros(indices.size, dtype=bool))
            return values, failure | (values <= 0), raises

        def _peek_one(index: int) -> tuple[float, bool, bool]:
            # Scalar twin of ``_peek_indices`` (same normalisation, one hash
            # probe): what generation-batched population tuners call per
            # candidate while simulating a generation ahead of its bulk
            # evaluation.
            value, failure, found = self.index_table().lookup_one(index)
            if not found:
                return math.inf, True, strict
            if failure:
                return math.inf, True, False
            return value, value <= 0, False

        return TuningProblem(name=self.benchmark, space=self.space, evaluate_fn=_evaluate,
                             gpu=self.gpu, memoize=memoize,
                             evaluate_index_fn=_evaluate_index,
                             peek_index_fn=_peek_indices,
                             peek_one_fn=_peek_one)

    # ------------------------------------------------------------------ serialization

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form including the search-space description."""
        return {
            "benchmark": self.benchmark,
            "gpu": self.gpu,
            "exhaustive": self.exhaustive,
            "metadata": dict(self.metadata),
            "space": self.space.to_dict(),
            "observations": [o.to_dict() for o in self._entries.values()],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any],
                  space: SearchSpace | None = None) -> "EvaluationCache":
        """Inverse of :meth:`to_dict`.

        ``space`` may be supplied to reuse an existing space object (e.g. one that
        carries callable constraints which do not survive JSON round-trips).
        """
        if space is None:
            space = SearchSpace.from_dict(data["space"])
        cache = cls(benchmark=data["benchmark"], gpu=data["gpu"], space=space,
                    exhaustive=bool(data.get("exhaustive", False)))
        cache.metadata.update(data.get("metadata", {}))
        for od in data.get("observations", ()):
            cache.add_observation(Observation.from_dict(od))
        return cache

    # ------------------------------------------------------- columnar serialization

    def to_columnar(self, path: str | Path) -> Path:
        """Write this cache as a columnar file (see :mod:`repro.io.columnar`).

        Requires campaign shape -- every observation's ``evaluation_index`` equal
        to its insertion position and carrying this cache's benchmark/gpu --
        which is what executors, :meth:`from_dict` on executor output and
        :meth:`from_columnar` all produce.  A cache assembled by hand from
        foreign observations cannot round-trip through three columns and is
        refused with :class:`~repro.core.errors.SerializationError`; use the
        JSON writer for it.
        """
        from repro.io import columnar

        path = Path(path)
        meta = {
            "benchmark": self.benchmark,
            "gpu": self.gpu,
            "exhaustive": self.exhaustive,
            "metadata": dict(self.metadata),
            "space": self.space.to_dict(),
        }
        meta["digest"] = columnar.cache_digest(self.benchmark, self.gpu,
                                               meta["space"])
        if self._lazy is not None:
            # Adopted columns re-emit verbatim: a load -> save round trip is
            # byte-identical without materialising a single observation.
            lazy = self._lazy
            columnar.write_columnar(path, "cache", meta,
                                    {"index": lazy.indices, "value": lazy.values,
                                     "code": lazy.codes}, lazy.errors)
            return path
        observations = list(self._store.values())
        indices = np.empty(len(observations), dtype=np.int64)
        plain_rows: list[int] = []
        plain_configs: list[Mapping[str, Any]] = []
        for row, obs in enumerate(observations):
            if (obs.evaluation_index != row or obs.gpu != self.gpu
                    or obs.benchmark != self.benchmark):
                raise SerializationError(
                    f"cache {self.benchmark}/{self.gpu} is not campaign-shaped "
                    f"(observation {row} carries evaluation_index="
                    f"{obs.evaluation_index}, gpu={obs.gpu!r}, benchmark="
                    f"{obs.benchmark!r}); columnar files cannot represent it -- "
                    f"use the JSON writer")
            config = obs.config
            if isinstance(config, LazyConfig):
                indices[row] = config.space_index
            else:
                plain_rows.append(row)
                plain_configs.append(config)
        if plain_rows:
            indices[plain_rows] = self.space.indices_of_configs(plain_configs)
        codes, errors = columnar.encode_failure_codes(
            [o.valid for o in observations], [o.error for o in observations])
        columnar.write_columnar(
            path, "cache", meta,
            {"index": indices,
             "value": np.asarray([o.value for o in observations], dtype=float),
             "code": codes},
            errors)
        return path

    @classmethod
    def from_columnar(cls, path: str | Path, space: SearchSpace | None = None,
                      mmap: bool = True, verify: bool = True) -> "EvaluationCache":
        """Open a columnar cache file; the inverse of :meth:`to_columnar`.

        With ``mmap=True`` (default) the index/value/code columns stay read-only
        views of the memory-mapped file: the :class:`CacheIndexTable` is built
        straight off them and the observation dictionary materialises only when a
        dictionary-keyed accessor is used, so opening for index-native replay
        costs one header parse -- not one Python object per row.  ``space`` may
        be supplied to reuse an existing space object, like :meth:`from_dict`.
        """
        from repro.io import columnar

        payload = columnar.read_columnar(path, mmap=mmap, verify=verify)
        if payload.kind != "cache":
            raise SerializationError(
                f"{path} is a columnar {payload.kind} file, not a cache")
        header = payload.header
        if space is None:
            space = SearchSpace.from_dict(header["space"])
        cache = cls(benchmark=header["benchmark"], gpu=header["gpu"], space=space,
                    exhaustive=bool(header.get("exhaustive", False)))
        cache.metadata.update(header.get("metadata", {}))
        cache.attach_columns(payload.columns["index"], payload.columns["value"],
                              payload.columns["code"], payload.errors)
        return cache

    @classmethod
    def from_columns(cls, benchmark: str, gpu: str, space: SearchSpace,
                     indices: np.ndarray, values: np.ndarray, codes: np.ndarray,
                     errors: Sequence[str],
                     exhaustive: bool = False) -> "EvaluationCache":
        """Build a cache directly over in-memory columns (no per-row inserts).

        The no-decode merge path: executors concatenate shard fragment columns
        (:func:`repro.io.columnar.concat_fragment_columns`) and adopt the result
        here, paired with the shard-order space indices of the plan.
        """
        cache = cls(benchmark=benchmark, gpu=gpu, space=space,
                    exhaustive=exhaustive)
        cache.attach_columns(indices, values, codes, errors)
        return cache

    def attach_columns(self, indices: np.ndarray, values: np.ndarray,
                        codes: np.ndarray, errors: Sequence[str]) -> None:
        if self._store or self._lazy is not None or self._index_table is not None:
            raise ReproError("columns can only be attached to an empty cache")
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size:
            lo, hi = int(indices.min()), int(indices.max())
            if lo < 0 or hi >= self.space.cardinality:
                raise FragmentIntegrityError(
                    f"columnar cache {self.benchmark}/{self.gpu} carries space "
                    f"index {lo if lo < 0 else hi} outside the space's "
                    f"{self.space.cardinality} configurations")
        lazy = _LazyColumns(indices, np.asarray(values, dtype=float),
                            np.asarray(codes, dtype=np.int32), errors)
        self._lazy = lazy
        self._num_failures = int(np.count_nonzero(lazy.failure))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"EvaluationCache(benchmark={self.benchmark!r}, gpu={self.gpu!r}, "
                f"entries={len(self)}, exhaustive={self.exhaustive})")
