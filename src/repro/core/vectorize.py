"""Compilation of constraint expression strings into NumPy batch evaluators.

The scalar path in :mod:`repro.core.constraints` evaluates one Python expression per
configuration, which is what makes ``count_constrained`` and rejection sampling on the
paper's huge spaces (Dedispersion: 1.2e8 points, Table VIII) painfully slow.  This
module compiles the same expression *once* into a callable over named value columns
(one NumPy array per parameter), so a whole block of candidate configurations is
checked in a handful of array operations.

Semantics contract
------------------

The compiled evaluator must agree element-wise with the scalar evaluator:

* an expression that *raises* for a configuration (division by zero, ``0 ** -1``)
  marks that configuration as violated, exactly like
  :meth:`repro.core.constraints.Constraint.is_satisfied`;
* ``and`` / ``or`` short-circuit per element: a failing right operand only poisons
  rows whose left operand did not already decide the result;
* ternaries (``a if cond else b``) evaluate both branches over the whole block but a
  failing branch only poisons the rows that actually take it, mirroring the scalar
  path which never evaluates the untaken branch;
* a reference to a name that is not a column raises (missing parameter), it does not
  silently evaluate to False.

Expressions using syntax outside the supported subset (attribute access, subscripts,
comprehensions, single-argument ``min``/``max``, ...) are rejected at compile time by
returning ``None``; callers fall back to the scalar path.  Likewise a compiled
evaluator that hits an unexpected runtime error (e.g. exotic dtypes) returns ``None``
from :func:`evaluate` so the caller can fall back, never a wrong mask.

Arithmetic is performed in NumPy dtypes (``int64`` for integer parameters); the suite's
constraint expressions operate on small launch-configuration integers, far below the
``int64`` overflow range this contract assumes.
"""

from __future__ import annotations

import ast
import operator
from typing import Any, Callable, Mapping

import numpy as np

__all__ = ["compile_vectorized"]

#: Calls allowed inside vectorizable expressions (mirrors the scalar whitelist where a
#: NumPy equivalent with identical semantics exists).
_MIN_MAX = {"min", "max"}


class _NotVectorizable(Exception):
    """Raised at compile time when an expression leaves the supported subset."""


class _EvalContext:
    """Per-evaluation state: the value columns and the per-row failure mask."""

    __slots__ = ("columns", "n", "fail")

    def __init__(self, columns: Mapping[str, Any], n: int):
        self.columns = columns
        self.n = n
        self.fail: np.ndarray | None = None

    def mark_failed(self, where: Any) -> None:
        """Record rows whose (sub)expression would have raised in the scalar path."""
        if self.fail is None:
            self.fail = np.zeros(self.n, dtype=bool)
        self.fail |= np.broadcast_to(np.asarray(where, dtype=bool), (self.n,))


def _as_bool(value: Any, n: int) -> np.ndarray:
    """Truthiness of a (possibly scalar) operand, broadcast to row length."""
    arr = np.asarray(value)
    if arr.dtype != np.bool_:
        arr = arr.astype(bool)
    return np.broadcast_to(arr, (n,))


# --------------------------------------------------------------- guarded arithmetic
#
# Python raises ZeroDivisionError where NumPy would warn and emit 0/inf/nan; to keep
# the "raises means violated" contract the division family substitutes a safe divisor
# and records the offending rows in the context's failure mask instead.


def _guard_zero(ctx: _EvalContext, divisor: Any) -> Any:
    arr = np.asarray(divisor)
    zero = arr == 0
    if np.any(zero):
        ctx.mark_failed(zero)
        return np.where(zero, arr.dtype.type(1) if arr.dtype != object else 1, arr)
    return divisor


def _safe_div(ctx: _EvalContext, a: Any, b: Any) -> Any:
    return operator.truediv(a, _guard_zero(ctx, b))


def _safe_floordiv(ctx: _EvalContext, a: Any, b: Any) -> Any:
    return operator.floordiv(a, _guard_zero(ctx, b))


def _safe_mod(ctx: _EvalContext, a: Any, b: Any) -> Any:
    return operator.mod(a, _guard_zero(ctx, b))


def _safe_pow(ctx: _EvalContext, a: Any, b: Any) -> Any:
    base = np.asarray(a)
    exp = np.asarray(b)
    bad = (base == 0) & (exp < 0)
    if np.any(bad):
        ctx.mark_failed(bad)
        base = np.where(bad, 1, base)
    return operator.pow(base, exp)


_BINOPS: dict[type, Callable[..., Any]] = {
    ast.Add: operator.add,
    ast.Sub: operator.sub,
    ast.Mult: operator.mul,
    ast.LShift: operator.lshift,
    ast.RShift: operator.rshift,
    ast.BitOr: operator.or_,
    ast.BitXor: operator.xor,
    ast.BitAnd: operator.and_,
}

_GUARDED_BINOPS: dict[type, Callable[..., Any]] = {
    ast.Div: _safe_div,
    ast.FloorDiv: _safe_floordiv,
    ast.Mod: _safe_mod,
    ast.Pow: _safe_pow,
}

_CMPOPS: dict[type, Callable[..., Any]] = {
    ast.Eq: operator.eq,
    ast.NotEq: operator.ne,
    ast.Lt: operator.lt,
    ast.LtE: operator.le,
    ast.Gt: operator.gt,
    ast.GtE: operator.ge,
}


def _literal_container(node: ast.AST) -> tuple[Any, ...] | None:
    """The element tuple of a literal tuple/list/set of constants, else None."""
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        if all(isinstance(elt, ast.Constant) for elt in node.elts):
            return tuple(elt.value for elt in node.elts)
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, (tuple, frozenset)):
        return tuple(node.value)
    return None


def _membership_mask(value: Any, elements: tuple[Any, ...], n: int) -> np.ndarray:
    """Element-wise ``value in elements`` (Python ``in`` uses ``==`` per element)."""
    mask = np.zeros(n, dtype=bool)
    for elt in elements:
        mask |= _as_bool(np.asarray(value) == elt, n)
    return mask


# ------------------------------------------------------------------- node compilers

_NodeFn = Callable[[_EvalContext], Any]


def _compile_node(node: ast.AST) -> _NodeFn:
    if isinstance(node, ast.Constant):
        value = node.value
        return lambda ctx: value

    if isinstance(node, ast.Name):
        name = node.id
        return lambda ctx: ctx.columns[name]

    if isinstance(node, ast.UnaryOp):
        inner = _compile_node(node.operand)
        if isinstance(node.op, ast.Not):
            return lambda ctx: ~_as_bool(inner(ctx), ctx.n)
        if isinstance(node.op, ast.USub):
            return lambda ctx: operator.neg(inner(ctx))
        if isinstance(node.op, ast.UAdd):
            return lambda ctx: operator.pos(inner(ctx))
        raise _NotVectorizable(f"unary op {type(node.op).__name__}")

    if isinstance(node, ast.BinOp):
        left = _compile_node(node.left)
        right = _compile_node(node.right)
        op_type = type(node.op)
        if op_type in _BINOPS:
            op = _BINOPS[op_type]
            return lambda ctx: op(left(ctx), right(ctx))
        if op_type in _GUARDED_BINOPS:
            op = _GUARDED_BINOPS[op_type]
            return lambda ctx: op(ctx, left(ctx), right(ctx))
        raise _NotVectorizable(f"binary op {op_type.__name__}")

    if isinstance(node, ast.Compare):
        # Each link of the chain compiles to a term over (left operand, right node);
        # In/NotIn links require a literal container of constants on the right and
        # expand membership into an equality-OR, exactly Python's ``in`` semantics.
        terms: list[Callable[[_EvalContext, Any], np.ndarray | Any]] = []
        compiled: list[_NodeFn | None] = [_compile_node(node.left)]
        for op_node, right_node in zip(node.ops, node.comparators):
            op_type = type(op_node)
            if op_type in (ast.In, ast.NotIn):
                elements = _literal_container(right_node)
                if elements is None:
                    raise _NotVectorizable(
                        f"{op_type.__name__} over a non-literal container")
                if len(node.ops) > 1:
                    # A membership link inside a longer chain would feed the literal
                    # container into the next comparison; nobody writes that, and the
                    # scalar path is the safe place for it.
                    raise _NotVectorizable("membership inside a comparison chain")
                compiled.append(None)  # membership needs no compiled right operand
                negate = op_type is ast.NotIn

                def term(ctx: _EvalContext, left_value: Any,
                         _elements=elements, _negate=negate) -> np.ndarray:
                    mask = _membership_mask(left_value, _elements, ctx.n)
                    return ~mask if _negate else mask

                terms.append(term)
            elif op_type in _CMPOPS:
                right = _compile_node(right_node)
                compiled.append(right)
                op = _CMPOPS[op_type]

                def term(ctx: _EvalContext, left_value: Any,
                         _op=op, _right=right) -> Any:
                    return _op(left_value, _right(ctx))

                terms.append(term)
            else:
                raise _NotVectorizable(f"comparison {op_type.__name__}")

        if len(terms) == 1:
            left = compiled[0]
            only = terms[0]
            return lambda ctx: only(ctx, left(ctx))

        def compare_chain(ctx: _EvalContext) -> np.ndarray:
            # a < b < c  ==  (a < b) & (b < c); all operands are side-effect free in
            # this subset, so evaluating the tail eagerly matches scalar semantics
            # except through the failure mask, which _gated_fold handles for BoolOp --
            # chained comparisons over guarded arithmetic are folded conservatively.
            result = None
            left_value = compiled[0](ctx)
            for term, right in zip(terms, compiled[1:]):
                mask = _as_bool(term(ctx, left_value), ctx.n)
                result = mask if result is None else result & mask
                left_value = right(ctx) if right is not None else None
            return result

        return compare_chain

    if isinstance(node, ast.BoolOp):
        parts = [_compile_node(v) for v in node.values]
        is_or = isinstance(node.op, ast.Or)

        def boolop(ctx: _EvalContext) -> np.ndarray:
            # Element-wise short circuit: rows decided by an earlier operand ignore
            # later operands entirely, including any failures they record.
            decided_value = np.zeros(ctx.n, dtype=bool)
            active = np.ones(ctx.n, dtype=bool)
            outer_fail = ctx.fail
            for part in parts:
                ctx.fail = None
                value = _as_bool(part(ctx), ctx.n)
                part_fail = ctx.fail
                ctx.fail = outer_fail
                if part_fail is not None:
                    newly_failed = active & part_fail
                    if np.any(newly_failed):
                        self_fail = newly_failed
                        ctx.mark_failed(self_fail)
                        outer_fail = ctx.fail
                        active = active & ~newly_failed
                if is_or:
                    decided_value |= active & value
                    active = active & ~value
                else:
                    active = active & value
            return decided_value if is_or else active

        return boolop

    if isinstance(node, ast.IfExp):
        test = _compile_node(node.test)
        body = _compile_node(node.body)
        orelse = _compile_node(node.orelse)

        def ifexp(ctx: _EvalContext) -> np.ndarray:
            # The scalar path evaluates only the taken branch, so a branch that
            # raises must only poison the rows that take it (same gating as BoolOp).
            taken = _as_bool(test(ctx), ctx.n)
            outer_fail = ctx.fail
            ctx.fail = None
            body_value = np.broadcast_to(np.asarray(body(ctx)), (ctx.n,))
            body_fail = ctx.fail
            ctx.fail = None
            orelse_value = np.broadcast_to(np.asarray(orelse(ctx)), (ctx.n,))
            orelse_fail = ctx.fail
            ctx.fail = outer_fail
            if body_fail is not None and np.any(taken & body_fail):
                ctx.mark_failed(taken & body_fail)
            if orelse_fail is not None and np.any(~taken & orelse_fail):
                ctx.mark_failed(~taken & orelse_fail)
            return np.where(taken, body_value, orelse_value)

        return ifexp

    if isinstance(node, ast.Call):
        if node.keywords or not isinstance(node.func, ast.Name):
            raise _NotVectorizable("call with keywords or non-name callee")
        fname = node.func.id
        args = [_compile_node(a) for a in node.args]
        if fname == "abs" and len(args) == 1:
            inner = args[0]
            return lambda ctx: np.abs(inner(ctx))
        if fname in _MIN_MAX and len(args) >= 2:
            reducer = np.minimum if fname == "min" else np.maximum
            return lambda ctx: _reduce(reducer, [a(ctx) for a in args])
        raise _NotVectorizable(f"call to {fname!r}")

    raise _NotVectorizable(type(node).__name__)


def _reduce(reducer: Any, values: list[Any]) -> Any:
    out = values[0]
    for v in values[1:]:
        out = reducer(out, v)
    return out


# -------------------------------------------------------------------- public entry


def compile_vectorized(
    expression: str,
) -> Callable[[Mapping[str, Any], int], np.ndarray | None] | None:
    """Compile an expression string into a batch evaluator, or None if unsupported.

    The returned callable takes ``(columns, n)`` -- a mapping of parameter name to a
    length-``n`` value array (scalars are broadcast) -- and returns a boolean mask of
    satisfied rows, or ``None`` when evaluation hit an unexpected runtime error and
    the caller must fall back to the scalar path.  A missing column propagates as
    ``KeyError`` (mirroring the scalar path's missing-parameter error).
    """
    try:
        tree = ast.parse(expression, mode="eval")
    except SyntaxError:
        return None
    try:
        root = _compile_node(tree.body)
    except _NotVectorizable:
        return None

    def evaluate(columns: Mapping[str, Any], n: int) -> np.ndarray | None:
        ctx = _EvalContext(columns, n)
        try:
            with np.errstate(all="ignore"):
                result = root(ctx)
                mask = _as_bool(result, n).copy()
        except KeyError:
            raise
        except Exception:
            return None
        if ctx.fail is not None:
            mask &= ~ctx.fail
        return mask

    return evaluate
