"""Search-space constraints.

Real tunable GPU kernels cannot run every point of the Cartesian product of their
parameters: thread-block shapes are capped at 1024 threads, shared-memory tiles must
fit in the SM's shared memory, vector widths must divide tile widths, and so on.  The
paper distinguishes between

* the raw *Cardinality* of a search space (product of parameter counts),
* the *Constrained* size (configurations that satisfy the kernel's static constraints),
* and the *Valid* size (configurations that additionally compile/launch on a specific
  GPU) -- see Table VIII.

This module implements the static constraints.  A :class:`Constraint` is either a
Python expression string evaluated against the configuration (the style used by
Kernel Tuner / BAT ``restrictions`` lists, e.g. ``"MWG % (MDIMC * VWM) == 0"``) or an
arbitrary callable.  Expression strings are the preferred form because they serialize
into cache files and render nicely in reports.
"""

from __future__ import annotations

import ast
import warnings
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.core.errors import ConstraintViolationError, InvalidConfigurationError
from repro.core.vectorize import compile_vectorized

__all__ = ["Constraint", "ConstraintSet", "ConstraintSerializationWarning"]


class ConstraintSerializationWarning(UserWarning):
    """A constraint could not be restored from its serialized form.

    Callable constraints serialize by name only; loading a cache file that contains
    one drops the constraint (the predicate itself is gone) and emits this warning so
    the degradation is explicit.  Pass a live ``space=`` to
    :func:`repro.io.cachefile.load_cache` to keep callable constraints.
    """

# Builtins whitelisted inside constraint expressions.  ``min``/``max``/``abs`` show up
# in real restriction lists; nothing else is needed and nothing else is allowed.
_SAFE_BUILTINS: dict[str, Any] = {
    "min": min,
    "max": max,
    "abs": abs,
    "len": len,
    "int": int,
    "float": float,
    "bool": bool,
    "round": round,
    "sum": sum,
    "any": any,
    "all": all,
}


class Constraint:
    """A single validity predicate over configurations.

    Parameters
    ----------
    expression:
        Either a Python expression string referring to parameter names
        (e.g. ``"block_size_x * block_size_y <= 1024"``) or a callable taking the
        configuration mapping and returning a truthy/falsy value.
    description:
        Optional human-readable explanation (used in reports and error messages).

    Notes
    -----
    Expression strings are compiled exactly once, at construction time, into *two*
    evaluators that are cached on the instance for the constraint's lifetime:

    * a scalar code object evaluated with a restricted namespace (only the
      configuration values and a small whitelist of builtins -- ``min``, ``max``,
      ``abs``, ... -- are visible), and
    * where the expression stays within the vectorizable subset (see
      :mod:`repro.core.vectorize`), a batch evaluator over named NumPy value columns
      used by :meth:`satisfied_mask`.

    Neither compilation ever happens per :meth:`is_satisfied` call.
    """

    def __init__(self, expression: str | Callable[[Mapping[str, Any]], bool],
                 description: str = ""):
        self.description = description
        if callable(expression):
            self._func: Callable[[Mapping[str, Any]], bool] = expression
            self.expression = getattr(expression, "__name__", "<callable>")
            self._compiled = None
            self._vectorized = None
        elif isinstance(expression, str):
            if not expression.strip():
                raise InvalidConfigurationError("constraint expression must be non-empty")
            self.expression = expression
            self._compiled = compile(expression, "<constraint>", "eval")
            self._func = self._eval_expression
            self._vectorized = compile_vectorized(expression)
        else:
            raise InvalidConfigurationError(
                f"constraint must be a string or callable, got {type(expression)!r}")

    # ------------------------------------------------------------------ evaluation

    def _eval_expression(self, config: Mapping[str, Any]) -> bool:
        namespace = dict(config)
        return bool(eval(self._compiled, {"__builtins__": _SAFE_BUILTINS}, namespace))

    def is_satisfied(self, config: Mapping[str, Any]) -> bool:
        """True if the configuration satisfies this constraint.

        A constraint that raises (e.g. division by zero for a degenerate parameter
        combination) is treated as *violated*, mirroring a kernel that fails to
        compile.
        """
        try:
            return bool(self._func(config))
        except (KeyError, NameError) as exc:
            raise InvalidConfigurationError(
                f"constraint {self.expression!r} references missing parameter {exc}"
            ) from None
        except InvalidConfigurationError:
            raise
        except Exception:
            return False

    __call__ = is_satisfied

    @property
    def is_vectorized(self) -> bool:
        """True when a batch evaluator over value columns is available."""
        return self._vectorized is not None

    def satisfied_mask(self, columns: Mapping[str, Any], n: int) -> np.ndarray | None:
        """Batch form of :meth:`is_satisfied` over named value columns.

        Parameters
        ----------
        columns:
            Mapping of parameter name to a length-``n`` value array; scalar entries
            broadcast (used by reduced spaces to pin frozen parameters).
        n:
            Number of rows in the batch.

        Returns
        -------
        np.ndarray | None
            Boolean mask of satisfied rows, element-wise identical to calling
            :meth:`is_satisfied` per row -- or ``None`` when no vectorized evaluator
            applies (opaque callables, unsupported syntax, unexpected runtime error)
            and the caller must use the scalar path.
        """
        if self._vectorized is None:
            return None
        try:
            return self._vectorized(columns, n)
        except KeyError as exc:
            raise InvalidConfigurationError(
                f"constraint {self.expression!r} references missing parameter {exc}"
            ) from None

    # ------------------------------------------------------------------ serialization

    @property
    def is_callable(self) -> bool:
        """True when this constraint wraps an opaque callable (no expression string)."""
        return self._compiled is None

    def referenced_names(self) -> frozenset[str] | None:
        """Names the expression refers to, minus whitelisted builtins (memoized).

        Returns None for callable constraints (their dependencies are opaque).  Used
        by loaders to detect legacy serializations of *named* callables (a function
        name like ``"power_of_two"`` parses as a perfectly valid expression but
        references no parameter), and by the search space's tiled feasibility sweep
        to materialise only the value columns the constraints actually read.
        """
        if self.is_callable:
            return None
        cached = getattr(self, "_referenced_names", None)
        if cached is None:
            tree = ast.parse(self.expression, mode="eval")
            names = {node.id for node in ast.walk(tree) if isinstance(node, ast.Name)}
            cached = frozenset(names - set(_SAFE_BUILTINS))
            self._referenced_names = cached
        return cached

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form.

        Callable constraints serialize by name only and are flagged with
        ``"callable": true`` so loaders can warn instead of silently degrading the
        predicate to a bare name lookup.
        """
        data = {"expression": self.expression, "description": self.description}
        if self.is_callable:
            data["callable"] = True
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Constraint":
        """Reconstruct a string-expression constraint from :meth:`to_dict` output."""
        return cls(data["expression"], description=data.get("description", ""))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Constraint({self.expression!r})"


class ConstraintSet:
    """An ordered collection of constraints evaluated together.

    Provides conjunction semantics: a configuration is valid iff *every* member
    constraint is satisfied.  The class exists (rather than using a bare list) so that
    violation reporting, serialization and the "which constraints prune the most"
    diagnostics live in one place.
    """

    def __init__(self, constraints: Iterable[Constraint | str | Callable] = ()):
        self._constraints: list[Constraint] = []
        for c in constraints:
            self.add(c)

    # ------------------------------------------------------------------- mutation

    def add(self, constraint: Constraint | str | Callable) -> "ConstraintSet":
        """Append a constraint (strings/callables are wrapped automatically)."""
        if not isinstance(constraint, Constraint):
            constraint = Constraint(constraint)
        self._constraints.append(constraint)
        self.__dict__.pop("_conjunction", None)  # recompiled on next fast check
        return self

    # -------------------------------------------------------------------- queries

    def __len__(self) -> int:
        return len(self._constraints)

    def __iter__(self) -> Iterator[Constraint]:
        return iter(self._constraints)

    def __getitem__(self, idx: int) -> Constraint:
        return self._constraints[idx]

    def is_satisfied(self, config: Mapping[str, Any]) -> bool:
        """True iff every constraint holds for ``config``."""
        return all(c.is_satisfied(config) for c in self._constraints)

    __call__ = is_satisfied

    @property
    def all_vectorized(self) -> bool:
        """True when every member constraint has a batch evaluator.

        Callers use this to skip building digit matrices / row configurations
        entirely (e.g. the tiled value-column sweep of
        :meth:`repro.core.searchspace.SearchSpace._feasible_mask_range`): with no
        scalar fallback possible, value columns alone determine the mask.
        """
        return all(c.is_vectorized for c in self._constraints)

    def referenced_parameters(self) -> frozenset[str] | None:
        """Union of names referenced by all member expressions, or None when any
        member is an opaque callable (its reads are unknowable)."""
        out: set[str] = set()
        for c in self._constraints:
            names = c.referenced_names()
            if names is None:
                return None
            out |= names
        return frozenset(out)

    def is_satisfied_fast(self, config: Mapping[str, Any]) -> bool:
        """Single-eval form of :meth:`is_satisfied` for scalar hot loops.

        All expression constraints compile once into one conjunction code object
        (``(c1) and (c2) and ...``); Python's ``and`` short-circuits exactly like
        the ``all()`` loop, and an expression that raises makes the conjunction
        raise, which maps to the same "violated" verdict the per-constraint wrapper
        returns.  Falls back to :meth:`is_satisfied` when any member is an opaque
        callable or for the missing-parameter error path.
        """
        code = self.__dict__.get("_conjunction", False)
        if code is False:
            code = None
            if self._constraints and not any(c.is_callable for c in self._constraints):
                source = " and ".join(f"({c.expression})" for c in self._constraints)
                try:
                    code = compile(source, "<constraint-conjunction>", "eval")
                except SyntaxError:
                    # Valid standalone expressions can break when parenthesized
                    # and joined (e.g. a trailing comment swallows the closing
                    # paren); those sets just keep the per-constraint loop.
                    code = None
            self._conjunction = code
        if code is None:
            return self.is_satisfied(config)
        try:
            return bool(eval(code, {"__builtins__": _SAFE_BUILTINS}, config))
        except (KeyError, NameError):
            return self.is_satisfied(config)  # exact missing-parameter semantics
        except Exception:
            return False  # raises-means-violated, like the per-constraint path

    def satisfied_mask(self, columns: Mapping[str, Any], n: int | None = None,
                       configs: Sequence[Mapping[str, Any]] | None = None) -> np.ndarray:
        """Boolean mask of configurations satisfying *every* constraint.

        Vectorizable constraints evaluate in one NumPy pass over ``columns``;
        the rest (opaque callables) fall back to scalar evaluation, but only on the
        rows that survived the vectorized constraints.

        Parameters
        ----------
        columns:
            Mapping of parameter name to a length-``n`` value array (scalars
            broadcast).
        n:
            Batch size; inferred from the first array-valued column if omitted.
        configs:
            Optional row-indexable source of configuration mappings for the scalar
            fallback; when omitted, per-row dictionaries are assembled from
            ``columns``.
        """
        if n is None:
            n = next(len(v) for v in columns.values()
                     if isinstance(v, np.ndarray) and v.ndim == 1)
        mask = np.ones(n, dtype=bool)
        deferred: list[Constraint] = []
        for constraint in self._constraints:
            vec = constraint.satisfied_mask(columns, n)
            if vec is None:
                deferred.append(constraint)
            else:
                mask &= vec
        if deferred and mask.any():
            rows = np.nonzero(mask)[0]
            if configs is None:
                names = list(columns)
                cols = [columns[k] for k in names]
                def row_config(i: int) -> dict[str, Any]:
                    return {k: (col[i] if isinstance(col, np.ndarray) and col.ndim else col)
                            for k, col in zip(names, cols)}
            else:
                def row_config(i: int) -> Mapping[str, Any]:
                    return configs[i]
            for i in rows.tolist():
                config = row_config(i)
                for constraint in deferred:
                    if not constraint.is_satisfied(config):
                        mask[i] = False
                        break
        return mask

    def violated(self, config: Mapping[str, Any]) -> tuple[str, ...]:
        """Expressions of all constraints violated by ``config`` (empty if valid)."""
        return tuple(c.expression for c in self._constraints if not c.is_satisfied(config))

    def check(self, config: Mapping[str, Any]) -> None:
        """Raise :class:`ConstraintViolationError` if any constraint is violated."""
        bad = self.violated(config)
        if bad:
            raise ConstraintViolationError(
                f"configuration violates {len(bad)} constraint(s): {', '.join(bad)}",
                violated=bad)

    def pruning_report(self, configs: Sequence[Mapping[str, Any]]) -> dict[str, int]:
        """For each constraint, count how many of ``configs`` it rejects.

        Useful when reconstructing the paper's "Constrained" column: it shows which
        constraint is responsible for most of the pruning.
        """
        counts: dict[str, int] = {c.expression: 0 for c in self._constraints}
        for config in configs:
            for c in self._constraints:
                if not c.is_satisfied(config):
                    counts[c.expression] += 1
        return counts

    # ------------------------------------------------------------------ serialization

    def to_list(self) -> list[dict[str, Any]]:
        """JSON-serializable list of constraint dicts."""
        return [c.to_dict() for c in self._constraints]

    @classmethod
    def from_list(cls, data: Iterable[Mapping[str, Any]]) -> "ConstraintSet":
        """Inverse of :meth:`to_list`.

        Entries flagged ``"callable": true`` (and legacy entries whose name does not
        parse as an expression, e.g. ``"<lambda>"``) cannot be restored: the predicate
        itself was never serialized.  They are dropped with an explicit
        :class:`ConstraintSerializationWarning` instead of degrading into a bare name
        lookup that raises on first use.
        """
        out = cls()
        for d in data:
            if d.get("callable"):
                warnings.warn(
                    f"dropping callable constraint {d.get('expression')!r}: only its "
                    f"name was serialized; reattach a live space to keep it",
                    ConstraintSerializationWarning, stacklevel=2)
                continue
            try:
                out.add(Constraint.from_dict(d))
            except SyntaxError:
                warnings.warn(
                    f"dropping unparseable constraint {d.get('expression')!r} "
                    f"(legacy serialization of a callable constraint)",
                    ConstraintSerializationWarning, stacklevel=2)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ConstraintSet({[c.expression for c in self._constraints]})"
