"""Search-space constraints.

Real tunable GPU kernels cannot run every point of the Cartesian product of their
parameters: thread-block shapes are capped at 1024 threads, shared-memory tiles must
fit in the SM's shared memory, vector widths must divide tile widths, and so on.  The
paper distinguishes between

* the raw *Cardinality* of a search space (product of parameter counts),
* the *Constrained* size (configurations that satisfy the kernel's static constraints),
* and the *Valid* size (configurations that additionally compile/launch on a specific
  GPU) -- see Table VIII.

This module implements the static constraints.  A :class:`Constraint` is either a
Python expression string evaluated against the configuration (the style used by
Kernel Tuner / BAT ``restrictions`` lists, e.g. ``"MWG % (MDIMC * VWM) == 0"``) or an
arbitrary callable.  Expression strings are the preferred form because they serialize
into cache files and render nicely in reports.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from repro.core.errors import ConstraintViolationError, InvalidConfigurationError

__all__ = ["Constraint", "ConstraintSet"]

# Builtins whitelisted inside constraint expressions.  ``min``/``max``/``abs`` show up
# in real restriction lists; nothing else is needed and nothing else is allowed.
_SAFE_BUILTINS: dict[str, Any] = {
    "min": min,
    "max": max,
    "abs": abs,
    "len": len,
    "int": int,
    "float": float,
    "bool": bool,
    "round": round,
    "sum": sum,
    "any": any,
    "all": all,
}


class Constraint:
    """A single validity predicate over configurations.

    Parameters
    ----------
    expression:
        Either a Python expression string referring to parameter names
        (e.g. ``"block_size_x * block_size_y <= 1024"``) or a callable taking the
        configuration mapping and returning a truthy/falsy value.
    description:
        Optional human-readable explanation (used in reports and error messages).

    Notes
    -----
    Expression strings are compiled once at construction time and evaluated with a
    restricted namespace: only the configuration values and a small whitelist of
    builtins (``min``, ``max``, ``abs``, ...) are visible.
    """

    def __init__(self, expression: str | Callable[[Mapping[str, Any]], bool],
                 description: str = ""):
        self.description = description
        if callable(expression):
            self._func: Callable[[Mapping[str, Any]], bool] = expression
            self.expression = getattr(expression, "__name__", "<callable>")
            self._compiled = None
        elif isinstance(expression, str):
            if not expression.strip():
                raise InvalidConfigurationError("constraint expression must be non-empty")
            self.expression = expression
            self._compiled = compile(expression, "<constraint>", "eval")
            self._func = self._eval_expression
        else:
            raise InvalidConfigurationError(
                f"constraint must be a string or callable, got {type(expression)!r}")

    # ------------------------------------------------------------------ evaluation

    def _eval_expression(self, config: Mapping[str, Any]) -> bool:
        namespace = dict(config)
        return bool(eval(self._compiled, {"__builtins__": _SAFE_BUILTINS}, namespace))

    def is_satisfied(self, config: Mapping[str, Any]) -> bool:
        """True if the configuration satisfies this constraint.

        A constraint that raises (e.g. division by zero for a degenerate parameter
        combination) is treated as *violated*, mirroring a kernel that fails to
        compile.
        """
        try:
            return bool(self._func(config))
        except (KeyError, NameError) as exc:
            raise InvalidConfigurationError(
                f"constraint {self.expression!r} references missing parameter {exc}"
            ) from None
        except InvalidConfigurationError:
            raise
        except Exception:
            return False

    __call__ = is_satisfied

    # ------------------------------------------------------------------ serialization

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form (callables serialize by name only)."""
        return {"expression": self.expression, "description": self.description}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Constraint":
        """Reconstruct a string-expression constraint from :meth:`to_dict` output."""
        return cls(data["expression"], description=data.get("description", ""))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Constraint({self.expression!r})"


class ConstraintSet:
    """An ordered collection of constraints evaluated together.

    Provides conjunction semantics: a configuration is valid iff *every* member
    constraint is satisfied.  The class exists (rather than using a bare list) so that
    violation reporting, serialization and the "which constraints prune the most"
    diagnostics live in one place.
    """

    def __init__(self, constraints: Iterable[Constraint | str | Callable] = ()):
        self._constraints: list[Constraint] = []
        for c in constraints:
            self.add(c)

    # ------------------------------------------------------------------- mutation

    def add(self, constraint: Constraint | str | Callable) -> "ConstraintSet":
        """Append a constraint (strings/callables are wrapped automatically)."""
        if not isinstance(constraint, Constraint):
            constraint = Constraint(constraint)
        self._constraints.append(constraint)
        return self

    # -------------------------------------------------------------------- queries

    def __len__(self) -> int:
        return len(self._constraints)

    def __iter__(self) -> Iterator[Constraint]:
        return iter(self._constraints)

    def __getitem__(self, idx: int) -> Constraint:
        return self._constraints[idx]

    def is_satisfied(self, config: Mapping[str, Any]) -> bool:
        """True iff every constraint holds for ``config``."""
        return all(c.is_satisfied(config) for c in self._constraints)

    __call__ = is_satisfied

    def violated(self, config: Mapping[str, Any]) -> tuple[str, ...]:
        """Expressions of all constraints violated by ``config`` (empty if valid)."""
        return tuple(c.expression for c in self._constraints if not c.is_satisfied(config))

    def check(self, config: Mapping[str, Any]) -> None:
        """Raise :class:`ConstraintViolationError` if any constraint is violated."""
        bad = self.violated(config)
        if bad:
            raise ConstraintViolationError(
                f"configuration violates {len(bad)} constraint(s): {', '.join(bad)}",
                violated=bad)

    def pruning_report(self, configs: Sequence[Mapping[str, Any]]) -> dict[str, int]:
        """For each constraint, count how many of ``configs`` it rejects.

        Useful when reconstructing the paper's "Constrained" column: it shows which
        constraint is responsible for most of the pruning.
        """
        counts: dict[str, int] = {c.expression: 0 for c in self._constraints}
        for config in configs:
            for c in self._constraints:
                if not c.is_satisfied(config):
                    counts[c.expression] += 1
        return counts

    # ------------------------------------------------------------------ serialization

    def to_list(self) -> list[dict[str, Any]]:
        """JSON-serializable list of constraint dicts."""
        return [c.to_dict() for c in self._constraints]

    @classmethod
    def from_list(cls, data: Iterable[Mapping[str, Any]]) -> "ConstraintSet":
        """Inverse of :meth:`to_list`."""
        return cls(Constraint.from_dict(d) for d in data)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ConstraintSet({[c.expression for c in self._constraints]})"
