"""Exception hierarchy for the benchmarking suite.

All exceptions raised by the library derive from :class:`ReproError`, so callers can
catch a single base class at API boundaries.  The hierarchy distinguishes the three
failure modes a kernel tuner actually encounters in the wild:

* a configuration that is *malformed* (unknown parameter, value outside the allowed
  list) -- :class:`InvalidConfigurationError`;
* a configuration that is well-formed but *cannot be compiled or launched* on the
  target device (violates a constraint or exceeds a hardware resource limit) --
  :class:`ConstraintViolationError` and :class:`ResourceLimitError`;
* a failure of the tuning machinery itself (budget exhausted, empty search space,
  missing cache entry) -- the remaining classes.

The campaign-execution layer (:mod:`repro.exec`) adds a fourth family: *execution*
failures, split into **transient** (a retry is expected to succeed: a crashed worker
process, a hung shard, a flaky transport) and **permanent** (retrying is pointless:
a bug in evaluation code, an unresolvable benchmark).  :func:`is_transient` is the
single classification point the retry machinery consults -- third-party exceptions
can opt in by exposing a truthy ``transient`` attribute.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class InvalidConfigurationError(ReproError):
    """A configuration references unknown parameters or disallowed values."""


class ConstraintViolationError(ReproError):
    """A configuration violates one of the search-space constraints.

    The offending constraint expressions are available in :attr:`violated`.
    """

    def __init__(self, message: str, violated: tuple[str, ...] = ()):
        super().__init__(message)
        self.violated = tuple(violated)


class ResourceLimitError(ReproError):
    """A configuration exceeds a hardware resource limit on the target GPU.

    Mirrors a CUDA launch failure (too many threads per block, too much shared memory
    or register pressure).  The simulated runner converts this into an invalid
    :class:`~repro.core.result.Observation` rather than aborting the tuning run, just
    like real tuners do.
    """

    def __init__(self, message: str, resource: str = "", requested: float = 0.0,
                 limit: float = 0.0):
        super().__init__(message)
        self.resource = resource
        self.requested = requested
        self.limit = limit


class BudgetExhaustedError(ReproError):
    """Raised when a tuner requests more evaluations than the budget allows."""


class EmptySearchSpaceError(ReproError):
    """Raised when a search space contains no valid configurations."""


class CacheMissError(ReproError):
    """Raised when a cache lookup for a configuration fails in strict mode."""


class SerializationError(ReproError):
    """Raised when a cache or result file cannot be read or written."""


class ExecutionError(ReproError):
    """A failure of the campaign-execution layer (worker, shard or transport).

    Base of the transient-vs-permanent taxonomy; an ``ExecutionError`` that is not
    a :class:`TransientExecutionError` is treated as permanent -- retrying cannot
    help, so a retry-enabled executor quarantines the shard immediately.
    """


class TransientExecutionError(ExecutionError):
    """An execution failure that a retry is expected to survive.

    Shard evaluation is a pure function of ``(benchmark, GPU, indices)``, so
    re-running a shard after a transient failure reproduces exactly the rows the
    failed attempt would have produced -- which is why retries never threaten the
    byte-identical-merge contract.
    """


class WorkerCrashError(TransientExecutionError):
    """A worker process died (non-zero exit, signal, lost pipe) mid-shard.

    Transient by classification: the dominant causes in a real fleet (OOM kill,
    node reboot, spot preemption) are not properties of the shard itself.  A shard
    that *reliably* crashes its worker is a poison shard -- repeated crash attempts
    exhaust the retry budget and quarantine it.
    """

    def __init__(self, message: str, exit_code: int | None = None):
        super().__init__(message)
        self.exit_code = exit_code


class ShardTimeoutError(TransientExecutionError):
    """A shard exceeded its wall-clock timeout (hung or pathologically slow worker)."""

    def __init__(self, message: str, timeout: float | None = None):
        super().__init__(message)
        self.timeout = timeout


class FragmentIntegrityError(SerializationError):
    """A checkpoint fragment is corrupt: truncated, bit-flipped or checksum-stale.

    Subclasses :class:`SerializationError` so existing strict readers keep failing
    loudly; the executors additionally catch it on resume and *heal* -- the damaged
    fragment is discarded and its shard re-executed.
    """


def is_transient(error: BaseException) -> bool:
    """Classify an exception under the transient-vs-permanent execution taxonomy.

    :class:`TransientExecutionError` (and subclasses) are transient; any other
    exception may opt in with a truthy ``transient`` attribute; everything else --
    including ordinary bugs like ``ValueError`` -- is permanent.
    """
    if isinstance(error, TransientExecutionError):
        return True
    return bool(getattr(error, "transient", False))
