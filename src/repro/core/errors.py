"""Exception hierarchy for the benchmarking suite.

All exceptions raised by the library derive from :class:`ReproError`, so callers can
catch a single base class at API boundaries.  The hierarchy distinguishes the three
failure modes a kernel tuner actually encounters in the wild:

* a configuration that is *malformed* (unknown parameter, value outside the allowed
  list) -- :class:`InvalidConfigurationError`;
* a configuration that is well-formed but *cannot be compiled or launched* on the
  target device (violates a constraint or exceeds a hardware resource limit) --
  :class:`ConstraintViolationError` and :class:`ResourceLimitError`;
* a failure of the tuning machinery itself (budget exhausted, empty search space,
  missing cache entry) -- the remaining classes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class InvalidConfigurationError(ReproError):
    """A configuration references unknown parameters or disallowed values."""


class ConstraintViolationError(ReproError):
    """A configuration violates one of the search-space constraints.

    The offending constraint expressions are available in :attr:`violated`.
    """

    def __init__(self, message: str, violated: tuple[str, ...] = ()):
        super().__init__(message)
        self.violated = tuple(violated)


class ResourceLimitError(ReproError):
    """A configuration exceeds a hardware resource limit on the target GPU.

    Mirrors a CUDA launch failure (too many threads per block, too much shared memory
    or register pressure).  The simulated runner converts this into an invalid
    :class:`~repro.core.result.Observation` rather than aborting the tuning run, just
    like real tuners do.
    """

    def __init__(self, message: str, resource: str = "", requested: float = 0.0,
                 limit: float = 0.0):
        super().__init__(message)
        self.resource = resource
        self.requested = requested
        self.limit = limit


class BudgetExhaustedError(ReproError):
    """Raised when a tuner requests more evaluations than the budget allows."""


class EmptySearchSpaceError(ReproError):
    """Raised when a search space contains no valid configurations."""


class CacheMissError(ReproError):
    """Raised when a cache lookup for a configuration fails in strict mode."""


class SerializationError(ReproError):
    """Raised when a cache or result file cannot be read or written."""
