"""Experiment runner: the glue between tuners, problems and budgets.

The runner is intentionally small -- the heavy lifting lives in the tuners and the
kernel models -- but it is the single place where seeding, budget accounting and result
bookkeeping happen, so every experiment in the paper reproduction goes through it and
is therefore reproducible from a (tuner, problem, budget, seed) quadruple.
"""

from __future__ import annotations

import pickle
from typing import Any, Mapping


from repro.core.budget import Budget
from repro.core.errors import ReproError
from repro.core.problem import TuningProblem
from repro.core.result import TuningResult

__all__ = ["run_tuning", "run_repetitions", "run_matrix"]


def _make_budget(budget: Budget | None, max_evaluations: int | None) -> Budget:
    """Normalise the two ways of specifying a budget."""
    if budget is not None:
        return budget.copy()
    return Budget(max_evaluations=max_evaluations)


def run_tuning(tuner: "Tuner", problem: TuningProblem, budget: Budget | None = None,
               max_evaluations: int | None = None, seed: int | None = None) -> TuningResult:
    """Run one tuner on one problem under one budget.

    Parameters
    ----------
    tuner:
        Any object implementing the :class:`repro.tuners.base.Tuner` interface.
    problem:
        The tuning problem (benchmark on a specific simulated GPU).
    budget:
        Explicit budget object; mutually exclusive with ``max_evaluations``.
    max_evaluations:
        Shorthand for ``Budget(max_evaluations=...)``.
    seed:
        Seed for the tuner's random generator.  If omitted the tuner's own seed (set
        at construction) is used.

    Returns
    -------
    TuningResult
        Ordered observations with benchmark/GPU/tuner metadata filled in.
    """
    run_budget = _make_budget(budget, max_evaluations)
    result = tuner.tune(problem, run_budget, seed=seed)
    result.benchmark = result.benchmark or problem.name
    result.gpu = result.gpu or problem.gpu
    result.tuner = result.tuner or tuner.name
    result.metadata.setdefault("budget", run_budget.to_dict())
    return result


def run_repetitions(tuner_factory, problem: TuningProblem, repetitions: int,
                    max_evaluations: int, base_seed: int = 0) -> list[TuningResult]:
    """Run ``repetitions`` independent tuning runs with distinct seeds.

    ``tuner_factory`` is called with ``seed=`` for each repetition so that stateful
    tuners start fresh.  This is the machinery behind the paper's Fig. 2 (the median
    over 100 random-search repetitions).
    """
    results: list[TuningResult] = []
    for rep in range(repetitions):
        seed = base_seed + rep
        tuner = tuner_factory(seed=seed)
        results.append(run_tuning(tuner, problem, max_evaluations=max_evaluations, seed=seed))
    return results


def _resolve_problem_spec(value: Any) -> TuningProblem:
    """Resolve a ``run_matrix`` problem entry through the open registry.

    Strings of the form ``"benchmark@gpu"`` (e.g. ``"gemm@RTX_3090"``, or a
    runtime-registered custom scenario ``"syn_coupled_001@rtx-3090"``) resolve via
    :func:`repro.core.registry.get_benchmark` / :func:`~repro.core.registry.get_gpu`
    with their usual name normalization; anything else is returned unchanged.
    """
    if not isinstance(value, str):
        return value
    from repro.core.registry import get_benchmark, get_gpu

    benchmark_name, sep, gpu_name = value.partition("@")
    if not sep or not benchmark_name or not gpu_name:
        raise ReproError(
            f"problem spec {value!r} must look like 'benchmark@gpu' "
            f"(e.g. 'gemm@RTX_3090')")
    return get_benchmark(benchmark_name).problem(get_gpu(gpu_name))


def run_matrix(tuners: Mapping[str, Any], problems: Mapping[str, Any],
               max_evaluations: int, seed: int = 0,
               executor: Any = None) -> dict[tuple[str, str], TuningResult]:
    """Run every tuner on every problem once.

    Returns a dictionary keyed by ``(tuner_name, problem_name)``.  Used by the tuner
    comparison example and the ablation benchmark.

    Parameters
    ----------
    problems:
        Mapping of problem name to :class:`TuningProblem` -- or to a
        ``"benchmark@gpu"`` string resolved through the open benchmark registry
        (built-in kernels and runtime-registered scenarios alike), which is how
        matrix sweeps name hundreds of generated scenarios without constructing
        problem objects by hand.
    executor:
        Optional task mapper with a ``map(fn, iterable)`` method (e.g. a
        :class:`repro.exec.SerialExecutor`, or a
        :class:`concurrent.futures.ThreadPoolExecutor`).  The matrix is partitioned
        *by problem* -- every tuner runs serially against its problem object, so the
        per-problem memoization/reset semantics are exactly those of the serial loop
        -- and the problem columns are dispatched through the executor.  Results are
        identical to the serial run (each run is deterministic given ``seed``); only
        wall-clock changes.  Process-pool mappers require picklable problems, which
        the closure-based kernel problems are not -- use thread- or in-process
        mappers for those.  Tuner *instances* (as opposed to ``seed=``-callable
        factories) carry per-run state on ``self``, so a concurrent mapper would
        race them across columns -- the matrix falls back to inline execution
        whenever a non-callable tuner is present.
    """
    problems = {name: _resolve_problem_spec(value)
                for name, value in problems.items()}
    if executor is not None and any(not callable(f) for f in tuners.values()):
        executor = None

    def run_column(item: tuple[str, TuningProblem]) -> dict[tuple[str, str], TuningResult]:
        problem_name, problem = item
        column: dict[tuple[str, str], TuningResult] = {}
        for tuner_name, tuner_factory in tuners.items():
            tuner = tuner_factory(seed=seed) if callable(tuner_factory) else tuner_factory
            problem.reset_cache()
            column[(tuner_name, problem_name)] = run_tuning(
                tuner, problem, max_evaluations=max_evaluations, seed=seed)
        return column

    if executor is None:
        columns = [run_column(item) for item in problems.items()]
    else:
        try:
            columns = list(executor.map(run_column, list(problems.items())))
        except (pickle.PicklingError, AttributeError) as exc:
            # Submission-side pickling of the local closure is the only failure
            # translated here ("Can't pickle local object 'run_matrix...'"); any
            # other AttributeError is a genuine bug and propagates untouched.
            if (isinstance(exc, AttributeError)
                    and "pickle local object" not in str(exc)):
                raise
            raise ReproError(
                "run_matrix's column runner closes over tuners and problems and "
                "cannot be shipped to worker processes; use a thread-based or "
                "in-process mapper (e.g. repro.exec.SerialExecutor or "
                "concurrent.futures.ThreadPoolExecutor)") from exc
    merged: dict[tuple[str, str], TuningResult] = {}
    for column in columns:
        merged.update(column)
    # Preserve the historical tuner-major key order of the serial loop.
    return {(tuner_name, problem_name): merged[(tuner_name, problem_name)]
            for tuner_name in tuners for problem_name in problems}
