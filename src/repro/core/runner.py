"""Experiment runner: the glue between tuners, problems and budgets.

The runner is intentionally small -- the heavy lifting lives in the tuners and the
kernel models -- but it is the single place where seeding, budget accounting and result
bookkeeping happen, so every experiment in the paper reproduction goes through it and
is therefore reproducible from a (tuner, problem, budget, seed) quadruple.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from repro.core.budget import Budget
from repro.core.problem import TuningProblem
from repro.core.result import TuningResult

__all__ = ["run_tuning", "run_repetitions", "run_matrix"]


def _make_budget(budget: Budget | None, max_evaluations: int | None) -> Budget:
    """Normalise the two ways of specifying a budget."""
    if budget is not None:
        return budget.copy()
    return Budget(max_evaluations=max_evaluations)


def run_tuning(tuner: "Tuner", problem: TuningProblem, budget: Budget | None = None,
               max_evaluations: int | None = None, seed: int | None = None) -> TuningResult:
    """Run one tuner on one problem under one budget.

    Parameters
    ----------
    tuner:
        Any object implementing the :class:`repro.tuners.base.Tuner` interface.
    problem:
        The tuning problem (benchmark on a specific simulated GPU).
    budget:
        Explicit budget object; mutually exclusive with ``max_evaluations``.
    max_evaluations:
        Shorthand for ``Budget(max_evaluations=...)``.
    seed:
        Seed for the tuner's random generator.  If omitted the tuner's own seed (set
        at construction) is used.

    Returns
    -------
    TuningResult
        Ordered observations with benchmark/GPU/tuner metadata filled in.
    """
    run_budget = _make_budget(budget, max_evaluations)
    result = tuner.tune(problem, run_budget, seed=seed)
    result.benchmark = result.benchmark or problem.name
    result.gpu = result.gpu or problem.gpu
    result.tuner = result.tuner or tuner.name
    result.metadata.setdefault("budget", run_budget.to_dict())
    return result


def run_repetitions(tuner_factory, problem: TuningProblem, repetitions: int,
                    max_evaluations: int, base_seed: int = 0) -> list[TuningResult]:
    """Run ``repetitions`` independent tuning runs with distinct seeds.

    ``tuner_factory`` is called with ``seed=`` for each repetition so that stateful
    tuners start fresh.  This is the machinery behind the paper's Fig. 2 (the median
    over 100 random-search repetitions).
    """
    results: list[TuningResult] = []
    for rep in range(repetitions):
        seed = base_seed + rep
        tuner = tuner_factory(seed=seed)
        results.append(run_tuning(tuner, problem, max_evaluations=max_evaluations, seed=seed))
    return results


def run_matrix(tuners: Mapping[str, Any], problems: Mapping[str, TuningProblem],
               max_evaluations: int, seed: int = 0) -> dict[tuple[str, str], TuningResult]:
    """Run every tuner on every problem once.

    Returns a dictionary keyed by ``(tuner_name, problem_name)``.  Used by the tuner
    comparison example and the ablation benchmark.
    """
    results: dict[tuple[str, str], TuningResult] = {}
    for tuner_name, tuner_factory in tuners.items():
        for problem_name, problem in problems.items():
            tuner = tuner_factory(seed=seed) if callable(tuner_factory) else tuner_factory
            problem.reset_cache()
            results[(tuner_name, problem_name)] = run_tuning(
                tuner, problem, max_evaluations=max_evaluations, seed=seed)
    return results
