"""The shared tuning-problem interface.

A :class:`TuningProblem` is what a tuner sees: a search space plus an objective
function over configurations.  It deliberately knows nothing about how the objective is
produced -- in this reproduction the objective comes from the analytical GPU
performance models in :mod:`repro.kernels`, but the same interface would accept real
hardware measurements (the paper's setting) or a cache replay.

This is the reproduction of the paper's "standardized problem interface ... general
configuration space and kernel handler classes providing for easy integration" (Sec. I):
any optimizer that can consume a :class:`TuningProblem` can tune every benchmark in the
suite, and any benchmark that can produce one can be tuned by every optimizer.
"""

from __future__ import annotations

import enum
import math
from typing import Any, Callable, Mapping, Sequence

from repro.core.errors import ReproError, ResourceLimitError
from repro.core.result import Observation
from repro.core.searchspace import SearchSpace, config_key

__all__ = ["ObjectiveDirection", "TuningProblem"]


class ObjectiveDirection(enum.Enum):
    """Whether the tuner should minimize or maximize the objective.

    Every BAT benchmark minimizes kernel time, but the enum keeps the interface
    general (e.g. for throughput objectives like GFLOP/s).
    """

    MINIMIZE = "minimize"
    MAXIMIZE = "maximize"

    def better(self, a: float, b: float) -> bool:
        """True if objective value ``a`` is strictly better than ``b``."""
        if self is ObjectiveDirection.MINIMIZE:
            return a < b
        return a > b

    @property
    def worst_value(self) -> float:
        """The sentinel value assigned to failed evaluations."""
        return math.inf if self is ObjectiveDirection.MINIMIZE else -math.inf


class TuningProblem:
    """A tunable kernel instance on a specific (simulated) device.

    Parameters
    ----------
    name:
        Benchmark name (e.g. ``"gemm"``).
    space:
        The constrained search space.
    evaluate_fn:
        Callable mapping a configuration to an objective value (kernel time in
        milliseconds).  It may raise :class:`ResourceLimitError` (or any
        ``repro`` exception) for configurations that cannot run on the device; the
        problem converts those into invalid observations rather than propagating,
        which is how real autotuners treat failed compilations.
    gpu:
        Device name used for bookkeeping.
    direction:
        Minimize (default, kernel time) or maximize.
    objective_unit:
        Unit string for reports (default ``"ms"``).
    memoize:
        If True (default), repeated evaluations of the same configuration return the
        cached observation without consuming another call to ``evaluate_fn``.  This
        mirrors real tuner caches and makes exhaustive analyses cheap.
    """

    def __init__(self, name: str, space: SearchSpace,
                 evaluate_fn: Callable[[Mapping[str, Any]], float],
                 gpu: str = "", direction: ObjectiveDirection = ObjectiveDirection.MINIMIZE,
                 objective_unit: str = "ms", memoize: bool = True):
        self.name = name
        self.space = space
        self.gpu = gpu
        self.direction = direction
        self.objective_unit = objective_unit
        self.memoize = memoize
        self._evaluate_fn = evaluate_fn
        self._cache: dict[tuple, Observation] = {}
        self._evaluation_count = 0

    # ---------------------------------------------------------------------- queries

    @property
    def evaluation_count(self) -> int:
        """Number of *distinct* objective-function calls performed so far."""
        return self._evaluation_count

    @property
    def cache_size(self) -> int:
        """Number of memoized configurations."""
        return len(self._cache)

    def is_valid(self, config: Mapping[str, Any]) -> bool:
        """Static validity (membership + constraints); does not call the objective."""
        return self.space.is_valid(config)

    # ------------------------------------------------------------------- evaluation

    def evaluate(self, config: Mapping[str, Any],
                 _valid_hint: bool | None = None) -> Observation:
        """Measure one configuration and return the observation.

        Invalid configurations (constraint violations, device resource limits, or an
        objective function that raises/returns a non-finite value) yield an
        observation with ``valid=False`` and ``value=inf`` -- they still count as an
        evaluation, exactly as a failed compilation costs time on real hardware.

        ``_valid_hint`` is the internal handshake with :meth:`evaluate_many`: the
        batch path precomputes static validity for a whole block with the vectorized
        constraint mask (element-wise equivalent to :meth:`is_valid` by the
        compilation contract) so this method can skip the per-config scalar pass.
        """
        key = config_key(config)
        if self.memoize and key in self._cache:
            cached = self._cache[key]
            return Observation(config=dict(config), value=cached.value, valid=cached.valid,
                               error=cached.error, evaluation_index=cached.evaluation_index,
                               gpu=self.gpu, benchmark=self.name)

        index = self._evaluation_count
        value: float
        valid = True
        error = ""
        statically_valid = (self.space.is_valid(config) if _valid_hint is None
                            else _valid_hint)
        if not statically_valid:
            valid = False
            value = self.direction.worst_value
            error = "constraint violation: " + ", ".join(
                self.space.constraints.violated(config)) if len(self.space.constraints) else \
                "configuration not a member of the search space"
        else:
            try:
                value = float(self._evaluate_fn(config))
                if not math.isfinite(value) or value <= 0:
                    valid = False
                    error = f"objective returned non-positive/non-finite value {value!r}"
                    value = self.direction.worst_value
            except ResourceLimitError as exc:
                valid = False
                value = self.direction.worst_value
                error = f"resource limit exceeded: {exc}"
            except Exception as exc:  # objective failures behave like failed launches
                valid = False
                value = self.direction.worst_value
                error = f"evaluation failed: {exc}"

        self._evaluation_count += 1
        obs = Observation(config=dict(config), value=value, valid=valid, error=error,
                          evaluation_index=index, gpu=self.gpu, benchmark=self.name)
        if self.memoize:
            self._cache[key] = obs
        return obs

    def _batch_validity(self, configs: Sequence[Mapping[str, Any]]) -> list[bool | None]:
        """Static validity of many configurations in one vectorized pass.

        Returns one hint per configuration, or ``None`` hints (scalar fallback) when
        the block cannot be validated as a whole -- a configuration with
        missing/extra parameters or a value outside its parameter's list.
        """
        names = set(self.space.parameter_names)
        if any(set(c) != names for c in configs):
            return [None] * len(configs)
        try:
            digits = self.space.digits_of_configs(configs)
        except ReproError:
            return [None] * len(configs)
        return self.space.satisfied_mask(None, digits=digits).tolist()

    def evaluate_many(self, configs: Sequence[Mapping[str, Any]]) -> list[Observation]:
        """Evaluate a batch of configurations in order.

        Observation-for-observation identical to calling :meth:`evaluate` in a loop,
        but the static validity check runs once over the whole batch through the
        vectorized constraint mask instead of once per configuration -- the same
        batching discipline the shard workers of :mod:`repro.exec` use for the
        kernel-model calls.
        """
        configs = list(configs)
        if len(configs) < 2:
            return [self.evaluate(c) for c in configs]
        hints = self._batch_validity(configs)
        return [self.evaluate(c, _valid_hint=hint)
                for c, hint in zip(configs, hints)]

    def objective(self, config: Mapping[str, Any]) -> float:
        """Scalar objective of a configuration (``inf`` for invalid ones)."""
        return self.evaluate(config).value

    def reset_cache(self) -> None:
        """Drop memoized observations and reset the evaluation counter."""
        self._cache.clear()
        self._evaluation_count = 0

    # ------------------------------------------------------------------------- repr

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"TuningProblem(name={self.name!r}, gpu={self.gpu!r}, "
                f"dimensions={self.space.dimensions}, cardinality={self.space.cardinality})")
