"""The shared tuning-problem interface.

A :class:`TuningProblem` is what a tuner sees: a search space plus an objective
function over configurations.  It deliberately knows nothing about how the objective is
produced -- in this reproduction the objective comes from the analytical GPU
performance models in :mod:`repro.kernels`, but the same interface would accept real
hardware measurements (the paper's setting) or a cache replay.

This is the reproduction of the paper's "standardized problem interface ... general
configuration space and kernel handler classes providing for easy integration" (Sec. I):
any optimizer that can consume a :class:`TuningProblem` can tune every benchmark in the
suite, and any benchmark that can produce one can be tuned by every optimizer.

The ``evaluate_index`` contract
-------------------------------
:meth:`TuningProblem.evaluate_index` (and its batch form
:meth:`TuningProblem.evaluate_indices`) is the index-native fast path of the tuner
runtime: the candidate is identified by its mixed-radix space index, static validity
comes from the vectorized constraint mask, the objective is answered by
``evaluate_index_fn`` where one was supplied (cache replays), and the resulting
:class:`~repro.core.result.Observation` carries a lazily-materialised
:class:`~repro.core.result.LazyConfig`.  The contract with the dictionary path:

* ``evaluate_index(space.index_of(config))`` and ``evaluate(config)`` produce
  observations that serialize to identical bytes (same value, validity, error
  string, evaluation index) whenever the two paths see the problem in the same
  memoization state;
* each path keeps its memo in its own currency (canonical config tuples vs
  integers) for speed, but the memos stay *consistent*: a path that misses its own
  memo probes the other one -- at zero cost while the other memo is empty, i.e.
  for every single-path run -- so a configuration evaluated through both paths on
  one memoized problem is measured exactly once, with one ``evaluation_count``
  entry, no matter how the paths interleave (portfolios may mix migrated and
  adapter members on a shared problem).
"""

from __future__ import annotations

import enum
import math
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from repro.core.errors import ReproError, ResourceLimitError
from repro.core.result import LazyConfig, Observation
from repro.core.searchspace import SearchSpace, config_key

__all__ = ["ObjectiveDirection", "TuningProblem"]


class ObjectiveDirection(enum.Enum):
    """Whether the tuner should minimize or maximize the objective.

    Every BAT benchmark minimizes kernel time, but the enum keeps the interface
    general (e.g. for throughput objectives like GFLOP/s).
    """

    MINIMIZE = "minimize"
    MAXIMIZE = "maximize"

    def better(self, a: float, b: float) -> bool:
        """True if objective value ``a`` is strictly better than ``b``."""
        if self is ObjectiveDirection.MINIMIZE:
            return a < b
        return a > b

    @property
    def worst_value(self) -> float:
        """The sentinel value assigned to failed evaluations."""
        return math.inf if self is ObjectiveDirection.MINIMIZE else -math.inf


class TuningProblem:
    """A tunable kernel instance on a specific (simulated) device.

    Parameters
    ----------
    name:
        Benchmark name (e.g. ``"gemm"``).
    space:
        The constrained search space.
    evaluate_fn:
        Callable mapping a configuration to an objective value (kernel time in
        milliseconds).  It may raise :class:`ResourceLimitError` (or any
        ``repro`` exception) for configurations that cannot run on the device; the
        problem converts those into invalid observations rather than propagating,
        which is how real autotuners treat failed compilations.
    gpu:
        Device name used for bookkeeping.
    direction:
        Minimize (default, kernel time) or maximize.
    objective_unit:
        Unit string for reports (default ``"ms"``).
    memoize:
        If True (default), repeated evaluations of the same configuration return the
        cached observation without consuming another call to ``evaluate_fn``.  This
        mirrors real tuner caches and makes exhaustive analyses cheap.
    evaluate_index_fn:
        Optional index-native objective ``space_index -> value`` used by
        :meth:`evaluate_index` instead of materialising a configuration dictionary
        for ``evaluate_fn``.  Must be element-wise equivalent to
        ``evaluate_fn(space.config_at(index))``, including what it raises (cache
        replays supply one; see :meth:`repro.core.cache.EvaluationCache.to_problem`).
    peek_index_fn:
        Optional *side-effect-free* batch preview of the index objective:
        ``index_array -> (values, failure, raises)`` where ``values[k]`` is exactly
        what ``evaluate_index_fn`` would return for index ``k``, ``failure[k]`` is
        True exactly when evaluating it would yield an invalid observation, and
        ``raises[k]`` is True when the objective would raise (so the error string
        cannot be derived from the value alone and the row must evaluate through
        the scalar path).  Peeking consumes no budget, no memo and produces no
        observations; only deterministic pure-lookup objectives (cache replays)
        may supply it.  It is what lets tuners run whole neighbourhoods through
        one array probe and then *evaluate* exactly the prefix the sequential
        loop would have.
    peek_one_fn:
        Optional scalar twin of ``peek_index_fn``: ``index -> (value, failure,
        raises)`` for a single index, element-wise identical to the batch peek.
        Generation-batched population tuners peek one candidate at a time (each
        candidate's construction depends on the previous one's value), so a
        dictionary-probe scalar peek sidesteps the per-candidate array overhead
        of the batch form.  When omitted, :meth:`peek_index` wraps the batch
        peek with a one-element array.
    """

    def __init__(self, name: str, space: SearchSpace,
                 evaluate_fn: Callable[[Mapping[str, Any]], float],
                 gpu: str = "", direction: ObjectiveDirection = ObjectiveDirection.MINIMIZE,
                 objective_unit: str = "ms", memoize: bool = True,
                 evaluate_index_fn: Callable[[int], float] | None = None,
                 peek_index_fn: Callable[[Any], tuple[Any, Any]] | None = None,
                 peek_one_fn: Callable[[int], tuple[float, bool, bool]] | None = None):
        self.name = name
        self.space = space
        self.gpu = gpu
        self.direction = direction
        self.objective_unit = objective_unit
        self.memoize = memoize
        self._evaluate_fn = evaluate_fn
        self._evaluate_index_fn = evaluate_index_fn
        self._peek_index_fn = peek_index_fn
        self._peek_one_fn = peek_one_fn
        self._cache: dict[tuple, Observation] = {}
        self._icache: dict[int, Observation] = {}
        self._evaluation_count = 0

    # ---------------------------------------------------------------------- queries

    @property
    def evaluation_count(self) -> int:
        """Number of *distinct* objective-function calls performed so far."""
        return self._evaluation_count

    @property
    def cache_size(self) -> int:
        """Number of memo entries across both key currencies (a configuration
        that crossed evaluation paths is mirrored into each memo and counts in
        both)."""
        return len(self._cache) + len(self._icache)

    def is_valid(self, config: Mapping[str, Any]) -> bool:
        """Static validity (membership + constraints); does not call the objective."""
        return self.space.is_valid(config)

    # ------------------------------------------------------------------- evaluation

    def evaluate(self, config: Mapping[str, Any],
                 _valid_hint: bool | None = None) -> Observation:
        """Measure one configuration and return the observation.

        Invalid configurations (constraint violations, device resource limits, or an
        objective function that raises/returns a non-finite value) yield an
        observation with ``valid=False`` and ``value=inf`` -- they still count as an
        evaluation, exactly as a failed compilation costs time on real hardware.

        ``_valid_hint`` is the internal handshake with :meth:`evaluate_many`: the
        batch path precomputes static validity for a whole block with the vectorized
        constraint mask (element-wise equivalent to :meth:`is_valid` by the
        compilation contract) so this method can skip the per-config scalar pass.
        """
        key = config_key(config)
        if self.memoize:
            cached = self._cache.get(key)
            if cached is None and self._icache:
                # The index path may have measured this configuration already;
                # the probe only costs anything when that memo is non-empty.
                try:
                    cached = self._icache.get(self.space.index_of(config))
                except ReproError:
                    cached = None
                if cached is not None:
                    self._cache[key] = cached
            if cached is not None:
                return Observation(config=dict(config), value=cached.value,
                                   valid=cached.valid, error=cached.error,
                                   evaluation_index=cached.evaluation_index,
                                   gpu=self.gpu, benchmark=self.name)

        index = self._evaluation_count
        value: float
        valid = True
        error = ""
        statically_valid = (self.space.is_valid(config) if _valid_hint is None
                            else _valid_hint)
        if not statically_valid:
            valid = False
            value = self.direction.worst_value
            error = "constraint violation: " + ", ".join(
                self.space.constraints.violated(config)) if len(self.space.constraints) else \
                "configuration not a member of the search space"
        else:
            try:
                value = float(self._evaluate_fn(config))
                if not math.isfinite(value) or value <= 0:
                    valid = False
                    error = f"objective returned non-positive/non-finite value {value!r}"
                    value = self.direction.worst_value
            except ResourceLimitError as exc:
                valid = False
                value = self.direction.worst_value
                error = f"resource limit exceeded: {exc}"
            except Exception as exc:  # objective failures behave like failed launches
                valid = False
                value = self.direction.worst_value
                error = f"evaluation failed: {exc}"

        self._evaluation_count += 1
        obs = Observation(config=dict(config), value=value, valid=valid, error=error,
                          evaluation_index=index, gpu=self.gpu, benchmark=self.name)
        if self.memoize:
            self._cache[key] = obs
        return obs

    def evaluate_index(self, index: int, _valid_hint: bool | None = None) -> Observation:
        """Index-native form of :meth:`evaluate` (see the module docstring contract).

        The observation's configuration is a :class:`~repro.core.result.LazyConfig`
        that materialises from the space's value columns only if something reads it;
        the hot loop itself touches no dictionary.  ``_valid_hint`` plays the same
        role as in :meth:`evaluate`: tuners whose candidates already passed the
        vectorized constraint mask (neighbourhood enumeration, valid sampling,
        repair) pass ``True`` and skip the static check entirely.
        """
        index = int(index)
        if self.memoize:
            cached = self._icache.get(index)
            if cached is None and self._cache:
                # The dictionary path may have measured this configuration
                # already; the probe only costs anything when that memo holds
                # entries (never in a pure index-native run).
                cached = self._cache.get(config_key(self.space.config_at(index)))
                if cached is not None:
                    self._icache[index] = cached
            if cached is not None:
                return cached

        count = self._evaluation_count
        value: float
        valid = True
        error = ""
        config: Mapping[str, Any] | None = None
        statically_valid = (self.space.index_is_feasible(index) if _valid_hint is None
                            else _valid_hint)
        if not statically_valid:
            valid = False
            value = self.direction.worst_value
            config = self.space.config_at(index)
            error = "constraint violation: " + ", ".join(
                self.space.constraints.violated(config)) if len(self.space.constraints) else \
                "configuration not a member of the search space"
        else:
            try:
                if self._evaluate_index_fn is not None:
                    value = float(self._evaluate_index_fn(index))
                else:
                    config = self.space.config_at(index)
                    value = float(self._evaluate_fn(config))
                if not math.isfinite(value) or value <= 0:
                    valid = False
                    error = f"objective returned non-positive/non-finite value {value!r}"
                    value = self.direction.worst_value
            except ResourceLimitError as exc:
                valid = False
                value = self.direction.worst_value
                error = f"resource limit exceeded: {exc}"
            except Exception as exc:  # objective failures behave like failed launches
                valid = False
                value = self.direction.worst_value
                error = f"evaluation failed: {exc}"

        self._evaluation_count = count + 1
        obs = Observation.fast(LazyConfig(self.space, index) if config is None
                               else dict(config),
                               value, valid, error, count, self.gpu, self.name)
        if self.memoize:
            self._icache[index] = obs
        return obs

    def peek_indices(self, indices: np.ndarray | Sequence[int]
                     ) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
        """Side-effect-free batch preview ``(values, failure, raises)`` of the
        index objective, or None when the objective cannot be peeked (see
        ``peek_index_fn``).  Peeking never counts as an evaluation."""
        if self._peek_index_fn is None:
            return None
        return self._peek_index_fn(np.asarray(indices, dtype=np.int64))

    @property
    def peekable(self) -> bool:
        """True when the objective supports side-effect-free previews."""
        return self._peek_index_fn is not None or self._peek_one_fn is not None

    def peek_index(self, index: int) -> tuple[float, bool, bool] | None:
        """Scalar form of :meth:`peek_indices`: ``(value, failure, raises)`` of
        one index, or None when the objective cannot be peeked.

        Element-wise identical to the batch peek; the dedicated scalar callable
        (when supplied) answers through a plain dictionary/array probe, which is
        what makes peeking every candidate of a sequentially-constructed
        population generation cheap.
        """
        if self._peek_one_fn is not None:
            return self._peek_one_fn(index)
        if self._peek_index_fn is None:
            return None
        values, failure, raises = self._peek_index_fn(
            np.asarray([index], dtype=np.int64))
        return float(values[0]), bool(failure[0]), bool(raises[0])

    def evaluate_indices(self, indices: np.ndarray | Sequence[int],
                         valid_hint: bool | None = None,
                         _peek: tuple | None = None) -> list[Observation]:
        """Batch form of :meth:`evaluate_index`, observation-identical to the loop.

        With ``valid_hint=None`` one vectorized static-validity mask covers the
        whole block; ``valid_hint=True`` asserts the caller already mask-checked
        every index.  For peekable objectives and pre-validated indices the good
        rows come from one array probe and skip the per-index objective dispatch
        entirely -- the memo, ``evaluation_count`` and failure rows still flow
        through the scalar path so the semantics cannot drift.
        """
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size == 0:
            return []
        if valid_hint is True and (_peek is not None
                                   or self._peek_index_fn is not None):
            values, failure, raises = (_peek if _peek is not None
                                       else self._peek_index_fn(idx))
            value_list = values.tolist()
            failure_list = failure.tolist()
            raises_list = raises.tolist()
            icache = self._icache
            icache_get = icache.get
            memoize = self.memoize
            space, gpu, name = self.space, self.gpu, self.name
            worst = self.direction.worst_value
            fast = Observation.fast
            lazy = LazyConfig
            count = self._evaluation_count
            out: list[Observation] = []
            append = out.append
            dict_memo = self._cache
            for k, i in enumerate(idx.tolist()):
                if memoize:
                    cached = icache_get(i)
                    if cached is None and dict_memo:
                        cached = dict_memo.get(config_key(space.config_at(i)))
                        if cached is not None:
                            icache[i] = cached
                    if cached is not None:
                        append(cached)
                        continue
                if not failure_list[k]:
                    obs = fast(lazy(space, i), value_list[k],
                               True, "", count, gpu, name)
                    count += 1
                    if memoize:
                        icache[i] = obs
                elif raises_list[k]:
                    # Rows whose objective raises take the scalar path so error
                    # strings (cache misses, resource limits) stay byte-identical.
                    self._evaluation_count = count
                    obs = self.evaluate_index(i, _valid_hint=True)
                    count = self._evaluation_count
                else:
                    # Non-raising failures carry the error string the scalar path
                    # derives from the returned value alone.
                    obs = fast(
                        lazy(space, i), worst, False,
                        f"objective returned non-positive/non-finite value "
                        f"{value_list[k]!r}", count, gpu, name)
                    count += 1
                    if memoize:
                        icache[i] = obs
                append(obs)
            self._evaluation_count = count
            return out
        if valid_hint is None and idx.size >= 2:
            hints: Sequence[bool | None] = self.space.satisfied_mask(idx).tolist()
        else:
            hints = [valid_hint] * idx.size
        return [self.evaluate_index(i, _valid_hint=hint)
                for i, hint in zip(idx.tolist(), hints)]

    def _batch_validity(self, configs: Sequence[Mapping[str, Any]]) -> list[bool | None]:
        """Static validity of many configurations in one vectorized pass.

        Returns one hint per configuration, or ``None`` hints (scalar fallback) when
        the block cannot be validated as a whole -- a configuration with
        missing/extra parameters or a value outside its parameter's list.
        """
        names = set(self.space.parameter_names)
        if any(set(c) != names for c in configs):
            return [None] * len(configs)
        try:
            digits = self.space.digits_of_configs(configs)
        except ReproError:
            return [None] * len(configs)
        return self.space.satisfied_mask(None, digits=digits).tolist()

    def evaluate_many(self, configs: Sequence[Mapping[str, Any]]) -> list[Observation]:
        """Evaluate a batch of configurations in order.

        Observation-for-observation identical to calling :meth:`evaluate` in a loop,
        but the static validity check runs once over the whole batch through the
        vectorized constraint mask instead of once per configuration -- the same
        batching discipline the shard workers of :mod:`repro.exec` use for the
        kernel-model calls.
        """
        configs = list(configs)
        if len(configs) < 2:
            return [self.evaluate(c) for c in configs]
        hints = self._batch_validity(configs)
        return [self.evaluate(c, _valid_hint=hint)
                for c, hint in zip(configs, hints)]

    def objective(self, config: Mapping[str, Any]) -> float:
        """Scalar objective of a configuration (``inf`` for invalid ones)."""
        return self.evaluate(config).value

    def reset_cache(self) -> None:
        """Drop memoized observations and reset the evaluation counter."""
        self._cache.clear()
        self._icache.clear()
        self._evaluation_count = 0

    # ------------------------------------------------------------------------- repr

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"TuningProblem(name={self.name!r}, gpu={self.gpu!r}, "
                f"dimensions={self.space.dimensions}, cardinality={self.space.cardinality})")
