"""Discrete differential evolution.

Differential evolution maintains a population of encoded configuration vectors and
creates trial vectors as ``a + F * (b - c)`` from three distinct population members,
followed by binomial crossover with the target vector.  Because the BAT search spaces
are discrete, trial vectors are snapped back to the nearest allowed value of each
parameter (the standard discrete-DE treatment) and repaired against the constraints.

The population state is array-native end to end: encoded position vectors come
straight from the value columns (:meth:`~repro.core.searchspace.SearchSpace.encode_indices`),
trial vectors snap to digit vectors through the padded encoded-value grid
(:meth:`~repro.core.searchspace.SearchSpace.decode_index`, one broadcast argmin
instead of a per-parameter scan), repair is one constraint check, and evaluation is
generation-batched through :class:`~repro.tuners.base.GenerationRun`: on peekable
problems each trial's value is revealed as it is constructed (selection must see it
before the next trial exists -- replaced members can donate to later trials in the
same sweep) and the whole generation settles in one bulk-accounted run.  The
generator stream is consumed in exactly the sequential order, so trajectories are
byte-identical to the per-candidate loop.
"""

from __future__ import annotations

import numpy as np

from repro.core.budget import Budget
from repro.core.problem import TuningProblem
from repro.tuners.base import Tuner

__all__ = ["DifferentialEvolution"]


class DifferentialEvolution(Tuner):
    """DE/rand/1/bin over the encoded configuration space.

    Parameters
    ----------
    population_size:
        Number of vectors in the population (at least 4 so three distinct donors plus
        the target exist).
    differential_weight:
        The ``F`` scale factor applied to the donor difference.
    crossover_probability:
        Per-dimension probability of taking the mutant component (binomial crossover).
    """

    name = "diff_evo"

    def __init__(self, seed: int | None = None, population_size: int = 20,
                 differential_weight: float = 0.7, crossover_probability: float = 0.8):
        super().__init__(seed=seed)
        if population_size < 4:
            raise ValueError("population_size must be at least 4 for DE/rand/1")
        self.population_size = int(population_size)
        self.differential_weight = float(differential_weight)
        self.crossover_probability = float(crossover_probability)

    # -------------------------------------------------------------------- main loop

    def _run(self, problem: TuningProblem, budget: Budget, rng: np.random.Generator) -> None:
        space = problem.space
        indices = space.sample_indices(self.population_size, rng=rng,
                                       valid_only=True, unique=True)
        population = space.encode_indices(indices)
        fitness = np.full(indices.size, np.inf)
        observations = self.evaluate_index_run(indices)
        for i, obs in enumerate(observations):
            fitness[i] = obs.value if not obs.is_failure else np.inf
        if len(observations) < indices.size:
            return

        n = indices.size
        dims = space.dimensions
        weight = self.differential_weight
        crossover_probability = self.crossover_probability
        # The donor pool of each target is fixed for the whole run ([0, n) minus
        # the target itself), so the arrays feed ``rng.choice`` pre-built.
        donor_pool = [np.asarray([i for i in range(n) if i != target])
                      for target in range(n)]
        gen = self.generation_run()
        while not self.budget_exhausted:
            for target in range(n):
                a, b, c = rng.choice(donor_pool[target], size=3, replace=False)
                mutant = population[a] + weight * (population[b] - population[c])
                cross = rng.random(dims) < crossover_probability
                cross[int(rng.integers(0, dims))] = True  # at least one mutant gene
                trial_vector = np.where(cross, mutant, population[target])
                trial_index = space.decode_index(trial_vector)
                if not space.index_is_feasible(trial_index):
                    trial_index = space.sample_one_index(rng=rng, valid_only=True)
                fate = gen.submit(trial_index)
                if fate is None:
                    return
                value, failed = fate
                value = np.inf if failed else value
                if value <= fitness[target]:
                    population[target] = space.encode_index(trial_index)
                    fitness[target] = value
            if not gen.flush():
                return
