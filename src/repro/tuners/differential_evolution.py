"""Discrete differential evolution.

Differential evolution maintains a population of encoded configuration vectors and
creates trial vectors as ``a + F * (b - c)`` from three distinct population members,
followed by binomial crossover with the target vector.  Because the BAT search spaces
are discrete, trial vectors are snapped back to the nearest allowed value of each
parameter (the standard discrete-DE treatment) and repaired against the constraints.

The population state is array-native end to end: encoded position vectors come
straight from the value columns (:meth:`~repro.core.searchspace.SearchSpace.encode_indices`),
trial vectors snap to digit vectors (:meth:`~repro.core.searchspace.SearchSpace.decode_index`),
repair is one constraint-mask check, and evaluation goes through the integer fast
path -- no configuration dictionary exists in the loop.
"""

from __future__ import annotations

import numpy as np

from repro.core.budget import Budget
from repro.core.problem import TuningProblem
from repro.tuners.base import Tuner

__all__ = ["DifferentialEvolution"]


class DifferentialEvolution(Tuner):
    """DE/rand/1/bin over the encoded configuration space.

    Parameters
    ----------
    population_size:
        Number of vectors in the population (at least 4 so three distinct donors plus
        the target exist).
    differential_weight:
        The ``F`` scale factor applied to the donor difference.
    crossover_probability:
        Per-dimension probability of taking the mutant component (binomial crossover).
    """

    name = "diff_evo"

    def __init__(self, seed: int | None = None, population_size: int = 20,
                 differential_weight: float = 0.7, crossover_probability: float = 0.8):
        super().__init__(seed=seed)
        if population_size < 4:
            raise ValueError("population_size must be at least 4 for DE/rand/1")
        self.population_size = int(population_size)
        self.differential_weight = float(differential_weight)
        self.crossover_probability = float(crossover_probability)

    # -------------------------------------------------------------------- main loop

    def _run(self, problem: TuningProblem, budget: Budget, rng: np.random.Generator) -> None:
        space = problem.space
        indices = space.sample_indices(self.population_size, rng=rng,
                                       valid_only=True, unique=True)
        population = space.encode_indices(indices)
        fitness = np.full(indices.size, np.inf)
        for i, index in enumerate(indices.tolist()):
            obs = self.evaluate_index(index, valid_hint=True)
            if obs is None:
                return
            fitness[i] = obs.value if not obs.is_failure else np.inf

        n = indices.size
        dims = space.dimensions
        while not self.budget_exhausted:
            for target in range(n):
                if self.budget_exhausted:
                    return
                choices = [i for i in range(n) if i != target]
                a, b, c = rng.choice(choices, size=3, replace=False)
                mutant = population[a] + self.differential_weight * (population[b] - population[c])
                cross = rng.random(dims) < self.crossover_probability
                cross[int(rng.integers(0, dims))] = True  # at least one mutant gene
                trial_vector = np.where(cross, mutant, population[target])
                trial_index = space.decode_index(trial_vector)
                if not space.index_is_feasible(trial_index):
                    trial_index = space.sample_one_index(rng=rng, valid_only=True)
                obs = self.evaluate_index(trial_index, valid_hint=True)
                if obs is None:
                    return
                value = obs.value if not obs.is_failure else np.inf
                if value <= fitness[target]:
                    population[target] = space.encode_indices([trial_index])[0]
                    fitness[target] = value
