"""Portfolio tuner: several optimizers sharing one budget.

Autotuning practitioners rarely know in advance which optimizer suits a new kernel, so
a common strategy is to split the evaluation budget over a small portfolio and keep the
overall best.  The portfolio tuner does exactly that; it also demonstrates that the
shared problem interface composes (tuners can be nested without special cases), which
is the architectural claim of the paper's Sec. I.
"""

from __future__ import annotations

import warnings
from typing import Sequence

import numpy as np

from repro.core.budget import Budget
from repro.core.errors import BudgetExhaustedError
from repro.core.problem import TuningProblem
from repro.tuners.base import Tuner

__all__ = ["PortfolioTuner"]


class _BudgetSlice(Budget):
    """A view of a parent budget that is additionally capped at a per-member slice.

    Charges -- scalar and bulk -- are forwarded to the parent so the overall
    accounting stays correct; the slice only narrows when *this member* must stop.
    The slice satisfies the full bulk-accounting protocol
    (:meth:`Budget.affordable_evaluations`), so generation-batched members inside a
    portfolio settle whole generations with one :meth:`charge_bulk` against the
    shared budget instead of silently degrading to per-evaluation charges.
    """

    def __init__(self, parent: Budget, slice_evaluations: int):
        super().__init__(max_evaluations=None,
                         max_unique_configs=None,
                         max_simulated_seconds=None,
                         compile_overhead_seconds=parent.compile_overhead_seconds)
        self._parent = parent
        self._slice = max(int(slice_evaluations), 1)
        self._used_in_slice = 0

    @property
    def exhausted(self) -> bool:  # type: ignore[override]
        return self._parent.exhausted or self._used_in_slice >= self._slice

    @property
    def remaining_evaluations(self) -> int | float:  # type: ignore[override]
        return min(self._parent.remaining_evaluations,
                   max(self._slice - self._used_in_slice, 0))

    def affordable_evaluations(self) -> int | float | None:
        parent = self._parent.affordable_evaluations()
        if parent is None:
            return None
        return min(parent, max(self._slice - self._used_in_slice, 0))

    def charge(self, simulated_seconds: float = 0.0, new_config: bool = False) -> None:
        if self._used_in_slice >= self._slice:
            raise BudgetExhaustedError(
                f"budget slice exhausted after {self._used_in_slice} evaluations")
        self._parent.charge(simulated_seconds=simulated_seconds, new_config=new_config)
        self._used_in_slice += 1

    def charge_bulk(self, count: int,
                    simulated_seconds: "float | list[float]" = 0.0,
                    new_configs: int = 0) -> None:
        if count <= 0:
            return
        if count > self._slice - self._used_in_slice:
            raise BudgetExhaustedError(
                f"bulk charge of {count} evaluations overshoots the remaining "
                f"slice allowance of {self._slice - self._used_in_slice} "
                f"(slice={self._slice}, used={self._used_in_slice})")
        self._parent.charge_bulk(count, simulated_seconds=simulated_seconds,
                                 new_configs=new_configs)
        self._used_in_slice += count


class PortfolioTuner(Tuner):
    """Run several member tuners on slices of one shared budget.

    Parameters
    ----------
    members:
        Tuner instances to run.  They are executed in order, each receiving an equal
        slice of the total evaluation budget (the last member also gets any remainder
        left over by members that stopped early).
    """

    name = "portfolio"

    def __init__(self, members: Sequence[Tuner], seed: int | None = None):
        super().__init__(seed=seed)
        members = list(members)
        if not members:
            raise ValueError("portfolio needs at least one member tuner")
        self.members = members
        self.name = "portfolio(" + "+".join(m.name for m in members) + ")"

    def _run(self, problem: TuningProblem, budget: Budget, rng: np.random.Generator) -> None:
        remaining_members = len(self.members)
        for position, member in enumerate(self.members):
            if self.budget_exhausted:
                return
            remaining = self._budget.remaining_evaluations
            if remaining == 0:
                return
            members_left = remaining_members - position
            if remaining == float("inf"):
                slice_evaluations = 10 ** 9
            else:
                slice_evaluations = max(int(np.ceil(remaining / members_left)), 1)

            # Wire the member into this run's result/duplicate/best bookkeeping
            # while giving it a slice-limited view of the shared budget.
            self._share_run_state(member)
            member._budget = _BudgetSlice(self._budget, slice_evaluations)
            try:
                member_rng = np.random.default_rng(int(rng.integers(0, 2**31 - 1)))
                member._run(problem, member._budget, member_rng)
            except BudgetExhaustedError:
                # The expected stop signal: the member ran its slice (or the
                # shared budget) dry mid-loop.  The next member takes over.
                pass
            except Exception as exc:
                # A misbehaving member must not sink the whole portfolio run --
                # the remaining members still get their slices -- but a real
                # member bug must stay distinguishable from slice exhaustion.
                warnings.warn(
                    f"portfolio member {member.name!r} ({type(member).__name__}) "
                    f"failed and was skipped: {exc!r}",
                    RuntimeWarning, stacklevel=2)
            finally:
                self._clear_run_state(member)
