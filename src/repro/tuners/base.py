"""Tuner base class: the optimizer side of the shared problem interface.

A tuner receives a :class:`~repro.core.problem.TuningProblem` and a
:class:`~repro.core.budget.Budget` and returns a
:class:`~repro.core.result.TuningResult`.  The base class handles everything that must
be identical across optimizers for a fair comparison -- seeding, budget accounting,
result recording, duplicate handling -- so a concrete tuner only implements
:meth:`Tuner._run`, typically a loop of "propose configuration(s), call
:meth:`Tuner.evaluate`".

Budget semantics
----------------
Every call to :meth:`Tuner.evaluate` consumes one evaluation from the budget, whether
or not the configuration turns out to be valid -- failed compilations cost time on real
hardware, and the paper's convergence plots count them.  Once the budget is exhausted
:meth:`Tuner.evaluate` returns None and the tuner should stop; the base class also
stops the run defensively if a tuner ignores that signal.

Index-native runtime
--------------------
The hot loop of every in-repo optimizer identifies candidates by their mixed-radix
space index: :meth:`Tuner.evaluate_index` is the integer twin of :meth:`Tuner.evaluate`
and :meth:`Tuner.ask_random_indices` the integer twin of :meth:`Tuner.ask_random`.
Duplicate accounting (``_seen``) keys on the integer index -- the dictionary path maps
configurations to the same integers, so mixing paths within one run (e.g. a portfolio
of migrated and adapter members) still counts each distinct configuration once.  The
running best (index, value) pair is tracked in ``_track`` so index-native tuners that
restart from the incumbent (greedy ILS) never have to recover an index from a
configuration dictionary.
"""

from __future__ import annotations

import abc
import math
from typing import Any, Iterable, Iterator, Mapping

import numpy as np

from repro.core.budget import Budget
from repro.core.errors import BudgetExhaustedError, ReproError
from repro.core.problem import TuningProblem
from repro.core.result import LazyConfig, Observation, TuningResult
from repro.core.searchspace import config_key

__all__ = ["GenerationRun", "Tuner"]


class Tuner(abc.ABC):
    """Abstract base class of all optimizers in the suite.

    Parameters
    ----------
    seed:
        Default random seed; can be overridden per run via :meth:`tune`'s ``seed``.
    name:
        Optional display name override (defaults to the class-level :attr:`name`).
    """

    #: Canonical name used in result metadata and the tuner registry.
    name: str = "tuner"

    def __init__(self, seed: int | None = None, name: str | None = None):
        self.seed = seed
        if name is not None:
            self.name = name
        self._problem: TuningProblem | None = None
        self._budget: Budget | None = None
        self._result: TuningResult | None = None
        #: Duplicate-accounting keys: space indices (ints) for members of the space,
        #: canonical config tuples only for out-of-space configurations.
        self._seen: set[int | tuple] = set()
        #: Running best of the current run as a mutable ``[index, value]`` pair
        #: (shared by reference with nested tuners, like ``_seen``).
        self._track: list = [None, math.inf]

    # ------------------------------------------------------------------ public API

    def tune(self, problem: TuningProblem, budget: Budget,
             seed: int | None = None) -> TuningResult:
        """Run the optimizer on ``problem`` until ``budget`` is exhausted."""
        rng = np.random.default_rng(self.seed if seed is None else seed)
        self._problem = problem
        self._budget = budget
        self._seen = set()
        self._track = [None, math.inf]
        self._result = TuningResult(benchmark=problem.name, gpu=problem.gpu,
                                    tuner=self.name,
                                    seed=self.seed if seed is None else seed)
        try:
            self._run(problem, budget, rng)
        except BudgetExhaustedError:
            pass
        result = self._result
        self._problem = None
        self._budget = None
        self._result = None
        return result

    # ----------------------------------------------------------- subclass contract

    @abc.abstractmethod
    def _run(self, problem: TuningProblem, budget: Budget,
             rng: np.random.Generator) -> None:
        """Optimization loop; call :meth:`evaluate` for every candidate."""

    # --------------------------------------------------------------------- helpers

    @property
    def budget_exhausted(self) -> bool:
        """True once no further evaluations are allowed."""
        return self._budget is None or self._budget.exhausted

    def evaluate(self, config: Mapping[str, Any]) -> Observation | None:
        """Evaluate one configuration, record it, and charge the budget.

        Returns None (without evaluating) when the budget is exhausted, so tuner loops
        can simply ``break`` on a None result.
        """
        if self._problem is None or self._budget is None or self._result is None:
            raise RuntimeError("evaluate() called outside of tune()")
        if self._budget.exhausted:
            return None
        observation = self._problem.evaluate(config)
        self._account(config, observation)
        return observation

    def evaluate_index(self, index: int, valid_hint: bool | None = None,
                       ) -> Observation | None:
        """Index-native twin of :meth:`evaluate`: evaluate one space index, record
        it, and charge the budget.

        ``valid_hint=True`` is passed by tuners whose candidate already went through
        the vectorized constraint mask (neighbourhood enumeration, valid sampling,
        post-repair checks), skipping the redundant static check.  Returns None when
        the budget is exhausted, like :meth:`evaluate`.
        """
        if self._problem is None or self._budget is None or self._result is None:
            raise RuntimeError("evaluate_index() called outside of tune()")
        if self._budget.exhausted:
            return None
        index = int(index)
        observation = self._problem.evaluate_index(index, _valid_hint=valid_hint)
        self._account_key(index, observation)
        return observation

    def _account(self, config: Mapping[str, Any], observation: Observation) -> None:
        """Charge the budget and record one observation (shared by both the scalar
        :meth:`evaluate` path and the :meth:`evaluate_all` fast path, so the
        accounting semantics cannot drift apart).

        Configurations that are members of the space key ``_seen`` by their integer
        index -- the same currency :meth:`evaluate_index` uses -- so duplicate
        accounting agrees across the two evaluation paths; out-of-space
        configurations (only reachable through the dictionary path) fall back to the
        canonical config tuple.
        """
        try:
            key: int | tuple = self._problem.space.index_of(config)
        except ReproError:
            key = config_key(config)
        self._account_key(key, observation)

    def _account_key(self, key: int | tuple, observation: Observation) -> None:
        new_config = key not in self._seen
        simulated_seconds = (observation.value / 1e3
                             if math.isfinite(observation.value) else 0.0)
        self._budget.charge(simulated_seconds=simulated_seconds, new_config=new_config)
        self._seen.add(key)
        track = self._track
        if (isinstance(key, int) and not observation.is_failure
                and observation.value < track[1]):
            track[0] = key
            track[1] = observation.value
        self._result.record(observation)

    def evaluate_index_run(self, indices: Any, _peek: tuple | None = None,
                           ) -> list[Observation]:
        """Evaluate a run of pre-validated indices until the run or budget ends.

        The index twin of :meth:`evaluate_all`: when the budget can answer
        :meth:`Budget.affordable_evaluations` (a pure evaluation-count limit --
        including any compliant subclass, like the portfolio tuner's per-member
        slice) the affordable prefix is known up front, so the whole slice goes
        through :meth:`TuningProblem.evaluate_indices` and accounting happens in
        one pass (one :meth:`Budget.charge_bulk`, one result extend) -- per
        observation the semantics are identical to calling :meth:`evaluate_index`
        in a loop, which is also the literal fallback for every other budget shape.
        A result shorter than ``indices`` means the budget ran out.
        """
        allowance = (self._budget.affordable_evaluations()
                     if (self._problem is not None and self._result is not None
                         and self._budget is not None) else None)
        if allowance is not None:
            index_list = (indices.tolist() if isinstance(indices, np.ndarray)
                          else [int(i) for i in indices])
            allowed = (len(index_list) if allowance == math.inf
                       else min(len(index_list), int(allowance)))
            batch = index_list[:allowed]
            if not batch:
                return []
            if _peek is not None and allowed < len(index_list):
                _peek = tuple(col[:allowed] for col in _peek)
            observations = self._problem.evaluate_indices(batch, valid_hint=True,
                                                          _peek=_peek)
            seen = self._seen
            seen_add = seen.add
            track = self._track
            best_value = track[1]
            isfinite = math.isfinite
            new_configs = 0
            simulated: list[float] = []
            seconds = simulated.append
            for index, obs in zip(batch, observations):
                if index not in seen:
                    seen_add(index)
                    new_configs += 1
                value = obs.value
                seconds(value / 1e3 if isfinite(value) else 0.0)
                if obs.valid and value < best_value:
                    track[0] = index
                    track[1] = best_value = value
            self._budget.charge_bulk(len(batch), simulated_seconds=simulated,
                                     new_configs=new_configs)
            self._result.extend(observations)
            return observations
        observations: list[Observation] = []
        for index in indices:
            obs = self.evaluate_index(index, valid_hint=True)
            if obs is None:
                break
            observations.append(obs)
        return observations

    def generation_run(self) -> "GenerationRun":
        """A :class:`GenerationRun` bound to this run's bookkeeping.

        The population tuners' batching primitive: candidates are submitted one
        at a time (peeked, never evaluated, on peekable problems) and settled
        per generation with one bulk-accounted :meth:`evaluate_index_run`.
        """
        return GenerationRun(self)

    def evaluate_generation(
            self, candidates: "list[tuple[int, float, bool, bool]]") -> bool:
        """Record one generation of peek-driven candidates in a single bulk run.

        Each candidate is an ``(index, value, failure, raises)`` tuple holding
        exactly what :meth:`TuningProblem.peek_indices` would have returned for
        its index (the tuner collected them one candidate at a time while
        simulating its generation).  The affordable prefix settles in one
        list-native pass -- memo probe, observation construction, duplicate/best
        tracking per candidate, then one :meth:`Budget.charge_bulk` and one
        result extend; per observation the bytes are identical to
        :meth:`evaluate_index` in a loop (the literal fallback whenever the
        budget cannot precompute its prefix).  Returns False when the budget
        truncated the generation or ran dry on its last candidate, i.e. the run
        must stop.
        """
        if not candidates:
            return not self.budget_exhausted
        problem, result, budget = self._problem, self._result, self._budget
        if problem is None or result is None or budget is None:
            raise RuntimeError("evaluate_generation() called outside of tune()")
        allowance = budget.affordable_evaluations()
        if allowance is None:
            # Simulated-seconds / unique-config budgets: affordability depends
            # on each evaluation's outcome, so settle sequentially (identical
            # observations; the peeked values were only used for steering).
            for index, _value, _failed, _raises in candidates:
                if self.evaluate_index(index, valid_hint=True) is None:
                    return False
            return not self.budget_exhausted
        allowed = (len(candidates) if allowance == math.inf
                   else min(len(candidates), int(allowance)))
        if allowed == 0:
            return False
        # Merged settle loop: the peeked twin of TuningProblem.evaluate_indices
        # plus evaluate_index_run's accounting, over plain Python tuples (the
        # candidates arrived one at a time -- no arrays exist to vectorize over).
        icache = problem._icache
        icache_get = icache.get
        dict_memo = problem._cache
        memoize = problem.memoize
        space, gpu, name = problem.space, problem.gpu, problem.name
        worst = problem.direction.worst_value
        fast = Observation.fast
        lazy = LazyConfig
        isfinite = math.isfinite
        count = problem._evaluation_count
        seen = self._seen
        seen_add = seen.add
        track = self._track
        best_value = track[1]
        observations: list[Observation] = []
        record = observations.append
        simulated: list[float] = []
        seconds = simulated.append
        new_configs = 0
        for index, peeked, failed, raises in (
                candidates if allowed == len(candidates)
                else candidates[:allowed]):
            obs = None
            if memoize:
                obs = icache_get(index)
                if obs is None and dict_memo:
                    obs = dict_memo.get(config_key(space.config_at(index)))
                    if obs is not None:
                        icache[index] = obs
            if obs is None:
                if not failed:
                    obs = fast(lazy(space, index), peeked, True, "", count,
                               gpu, name)
                    count += 1
                    if memoize:
                        icache[index] = obs
                elif raises:
                    # Rows whose objective raises take the scalar path so error
                    # strings (cache misses, resource limits) stay byte-identical.
                    problem._evaluation_count = count
                    obs = problem.evaluate_index(index, _valid_hint=True)
                    count = problem._evaluation_count
                else:
                    # Non-raising failures carry the error string the scalar
                    # path derives from the returned value alone.
                    obs = fast(
                        lazy(space, index), worst, False,
                        f"objective returned non-positive/non-finite value "
                        f"{peeked!r}", count, gpu, name)
                    count += 1
                    if memoize:
                        icache[index] = obs
            record(obs)
            if index not in seen:
                seen_add(index)
                new_configs += 1
            value = obs.value
            seconds(value / 1e3 if isfinite(value) else 0.0)
            if obs.valid and value < best_value:
                track[0] = index
                track[1] = best_value = value
        problem._evaluation_count = count
        budget.charge_bulk(allowed, simulated_seconds=simulated,
                           new_configs=new_configs)
        result.extend(observations)
        return allowed == len(candidates) and not budget.exhausted

    def evaluate_all(self, configs: Iterable[Mapping[str, Any]]) -> list[Observation]:
        """Evaluate configurations until the list or the budget is exhausted.

        Fast path: for a materialised batch under a budget that can answer
        :meth:`Budget.affordable_evaluations`, the number of affordable
        evaluations is known up front, so the whole slice goes through
        :meth:`TuningProblem.evaluate_many` -- one vectorized validity mask
        instead of one scalar constraint pass per configuration, the same batch
        discipline the shard workers of :mod:`repro.exec` use.  Budget charging,
        duplicate accounting and recording stay per-observation, so the results are
        observation-for-observation identical to the scalar loop.
        """
        allowance = (self._budget.affordable_evaluations()
                     if (isinstance(configs, (list, tuple))
                         and self._problem is not None and self._result is not None
                         and self._budget is not None) else None)
        if allowance is not None:
            # The protocol matters: Budget subclasses that narrow `exhausted`
            # (e.g. the portfolio tuner's slice) answer with their own cap, so
            # the precomputed allowance honours every layer of limits.
            allowed = (len(configs) if allowance == math.inf
                       else min(len(configs), int(allowance)))
            batch = list(configs[:allowed])
            observations = self._problem.evaluate_many(batch)
            for config, obs in zip(batch, observations):
                self._account(config, obs)
            return observations
        observations: list[Observation] = []
        for config in configs:
            obs = self.evaluate(config)
            if obs is None:
                break
            observations.append(obs)
        return observations

    def best_so_far(self) -> Observation | None:
        """The best valid observation recorded so far in the current run."""
        if self._result is None or self._result.num_valid == 0:
            return None
        return self._result.best_observation

    def best_index_so_far(self) -> int | None:
        """Space index of the best valid observation so far (None before any).

        The index twin of :meth:`best_so_far`: maintained as a running minimum
        during accounting, so no configuration dictionary is ever consulted.
        """
        return self._track[0]

    # ----------------------------------------------------- nested-tuner plumbing

    def _share_run_state(self, inner: "Tuner") -> None:
        """Wire ``inner`` into this run's bookkeeping (problem, budget, result,
        duplicate set, best tracker) so every evaluation it performs is recorded
        and budgeted exactly once, against the same state."""
        inner._problem = self._problem
        inner._budget = self._budget
        inner._result = self._result
        inner._seen = self._seen
        inner._track = self._track

    def _clear_run_state(self, inner: "Tuner") -> None:
        """Detach ``inner`` from this run's bookkeeping (inverse of
        :meth:`_share_run_state`)."""
        inner._problem = None
        inner._budget = None
        inner._result = None
        inner._seen = set()
        inner._track = [None, math.inf]

    def random_valid_config(self, problem: TuningProblem, rng: np.random.Generator,
                            max_attempts: int = 10_000) -> dict[str, Any]:
        """Draw a random configuration that satisfies the static constraints."""
        return problem.space.sample_one(rng=rng, valid_only=True)

    def ask_random(self, space: Any, rng: np.random.Generator,
                   without_replacement: bool = True, batch_size: int = 512,
                   max_consecutive_rejects: int | None = None) -> Iterator[dict[str, Any]]:
        """Stream uniformly-random valid configurations, batch-filtered.

        This is the batch ``ask`` primitive shared by sampling-style tuners: candidate
        indices are drawn in blocks and run through the space's vectorized constraint
        mask, so per-candidate Python work only happens for configurations that are
        actually evaluated.  Candidates are yielded in draw order, which keeps the
        evaluated sequence identical to drawing one index at a time with the same
        generator.

        The stream ends (``StopIteration``) after ``max_consecutive_rejects``
        consecutive duplicate/invalid draws, the signal that the space has effectively
        run out of fresh valid configurations.
        """
        for index in self.ask_random_indices(
                space, rng, without_replacement=without_replacement,
                batch_size=batch_size,
                max_consecutive_rejects=max_consecutive_rejects):
            yield space.config_at(index)

    def ask_random_indices(self, space: Any, rng: np.random.Generator,
                           without_replacement: bool = True, batch_size: int = 512,
                           max_consecutive_rejects: int | None = None) -> Iterator[int]:
        """Index-native form of :meth:`ask_random`: the same draw/filter stream,
        yielding raw space indices instead of configuration dictionaries."""
        if max_consecutive_rejects is None:
            max_consecutive_rejects = max(10_000, 50 * space.dimensions)
        drawn: set[int] = set()
        consecutive_rejects = 0
        while True:
            draws = rng.integers(0, space.cardinality, size=batch_size)
            mask = space.satisfied_mask(draws)
            for index, ok in zip(draws.tolist(), mask.tolist()):
                if not ok or (without_replacement and index in drawn):
                    consecutive_rejects += 1
                    if consecutive_rejects > max_consecutive_rejects:
                        return
                    continue
                consecutive_rejects = 0
                if without_replacement:
                    drawn.add(index)
                yield index

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(seed={self.seed})"


class GenerationRun:
    """Generation-batched evaluation for population tuners.

    The population tuners (genetic / differential evolution / particle swarm)
    construct candidates sequentially -- every operator draw and every selection
    decision may depend on the previous candidate's objective value -- so their
    inner loops cannot be reordered without changing trajectories.  What *can*
    move is the settlement: on peekable problems (cache replays) the objective
    value of each candidate is revealed side-effect-free the moment it is
    constructed, the tuner drives its population update off the peeked value, and
    the whole generation is then evaluated in one bulk-accounted
    :meth:`Tuner.evaluate_index_run` (one :meth:`Budget.charge_bulk`, one result
    extend) instead of one :meth:`Tuner.evaluate_index` per candidate.  Per
    observation the bytes are identical to the sequential loop.

    On problems that cannot peek, :meth:`submit` simply evaluates the candidate
    on the spot and :meth:`flush` is a budget check -- the tuner code is one loop
    either way.

    Usage, once per generation::

        gen = self.generation_run()
        for _ in range(generation_size):
            ... draw operators, build candidate ...
            fate = gen.submit(candidate_index)
            if fate is None:
                return                     # budget exhausted (sequential mode)
            value, failed = fate
            ... update population from (value, failed) ...
        if not gen.flush():
            return                         # generation truncated by the budget
    """

    __slots__ = ("_tuner", "_peek", "_worst", "_pending")

    def __init__(self, tuner: Tuner):
        self._tuner = tuner
        problem = tuner._problem
        if problem is None:
            self._peek = None
        else:
            # Bind the scalar peek directly when the problem carries one (the
            # per-candidate hot path); fall back to the batch-peek wrapper.
            self._peek = (problem._peek_one_fn
                          or (problem.peek_index if problem.peekable else None))
        self._worst = (problem.direction.worst_value if problem is not None
                       else math.inf)
        #: Queued ``(index, value, failure, raises)`` candidates of the current
        #: generation (peeked mode only).
        self._pending: list[tuple[int, float, bool, bool]] = []

    @property
    def peeked(self) -> bool:
        """True when candidates are being peeked and settled per generation."""
        return self._peek is not None

    def submit(self, index: int) -> tuple[float, bool] | None:
        """Queue one pre-validated candidate; returns its ``(value, failed)`` fate.

        The value is only meaningful when ``failed`` is False (failed
        evaluations carry the direction's worst value, exactly like the
        observations they become).  Returns None when the budget is exhausted --
        only possible in sequential mode, where submitting *is* evaluating;
        peeked generations detect exhaustion at :meth:`flush`.
        """
        peek = self._peek
        if peek is None:
            obs = self._tuner.evaluate_index(index, valid_hint=True)
            if obs is None:
                return None
            return obs.value, obs.is_failure
        value, failed, raises = peek(index)
        # The queue keeps the raw peeked value (the settle loop derives failure
        # error strings from it); the returned fate carries what the eventual
        # observation's ``value`` will be.
        self._pending.append((index, value, failed, raises))
        return (self._worst if failed else value), failed

    def flush(self) -> bool:
        """Settle the queued generation; False when the run must stop.

        In peeked mode this is the one bulk evaluation of the generation; in
        sequential mode everything is already settled and only the budget is
        checked.  A False return means the budget ran out (possibly
        mid-generation -- exactly the prefix the sequential loop would have
        evaluated was recorded).
        """
        tuner = self._tuner
        if self._peek is None or not self._pending:
            return not tuner.budget_exhausted
        pending = self._pending
        self._pending = []
        return tuner.evaluate_generation(pending)
