"""Tuner base class: the optimizer side of the shared problem interface.

A tuner receives a :class:`~repro.core.problem.TuningProblem` and a
:class:`~repro.core.budget.Budget` and returns a
:class:`~repro.core.result.TuningResult`.  The base class handles everything that must
be identical across optimizers for a fair comparison -- seeding, budget accounting,
result recording, duplicate handling -- so a concrete tuner only implements
:meth:`Tuner._run`, typically a loop of "propose configuration(s), call
:meth:`Tuner.evaluate`".

Budget semantics
----------------
Every call to :meth:`Tuner.evaluate` consumes one evaluation from the budget, whether
or not the configuration turns out to be valid -- failed compilations cost time on real
hardware, and the paper's convergence plots count them.  Once the budget is exhausted
:meth:`Tuner.evaluate` returns None and the tuner should stop; the base class also
stops the run defensively if a tuner ignores that signal.

Index-native runtime
--------------------
The hot loop of every in-repo optimizer identifies candidates by their mixed-radix
space index: :meth:`Tuner.evaluate_index` is the integer twin of :meth:`Tuner.evaluate`
and :meth:`Tuner.ask_random_indices` the integer twin of :meth:`Tuner.ask_random`.
Duplicate accounting (``_seen``) keys on the integer index -- the dictionary path maps
configurations to the same integers, so mixing paths within one run (e.g. a portfolio
of migrated and adapter members) still counts each distinct configuration once.  The
running best (index, value) pair is tracked in ``_track`` so index-native tuners that
restart from the incumbent (greedy ILS) never have to recover an index from a
configuration dictionary.
"""

from __future__ import annotations

import abc
import math
from typing import Any, Iterable, Iterator, Mapping

import numpy as np

from repro.core.budget import Budget
from repro.core.errors import BudgetExhaustedError, ReproError
from repro.core.problem import TuningProblem
from repro.core.result import Observation, TuningResult
from repro.core.searchspace import config_key

__all__ = ["Tuner"]


class Tuner(abc.ABC):
    """Abstract base class of all optimizers in the suite.

    Parameters
    ----------
    seed:
        Default random seed; can be overridden per run via :meth:`tune`'s ``seed``.
    name:
        Optional display name override (defaults to the class-level :attr:`name`).
    """

    #: Canonical name used in result metadata and the tuner registry.
    name: str = "tuner"

    def __init__(self, seed: int | None = None, name: str | None = None):
        self.seed = seed
        if name is not None:
            self.name = name
        self._problem: TuningProblem | None = None
        self._budget: Budget | None = None
        self._result: TuningResult | None = None
        #: Duplicate-accounting keys: space indices (ints) for members of the space,
        #: canonical config tuples only for out-of-space configurations.
        self._seen: set[int | tuple] = set()
        #: Running best of the current run as a mutable ``[index, value]`` pair
        #: (shared by reference with nested tuners, like ``_seen``).
        self._track: list = [None, math.inf]

    # ------------------------------------------------------------------ public API

    def tune(self, problem: TuningProblem, budget: Budget,
             seed: int | None = None) -> TuningResult:
        """Run the optimizer on ``problem`` until ``budget`` is exhausted."""
        rng = np.random.default_rng(self.seed if seed is None else seed)
        self._problem = problem
        self._budget = budget
        self._seen = set()
        self._track = [None, math.inf]
        self._result = TuningResult(benchmark=problem.name, gpu=problem.gpu,
                                    tuner=self.name,
                                    seed=self.seed if seed is None else seed)
        try:
            self._run(problem, budget, rng)
        except BudgetExhaustedError:
            pass
        result = self._result
        self._problem = None
        self._budget = None
        self._result = None
        return result

    # ----------------------------------------------------------- subclass contract

    @abc.abstractmethod
    def _run(self, problem: TuningProblem, budget: Budget,
             rng: np.random.Generator) -> None:
        """Optimization loop; call :meth:`evaluate` for every candidate."""

    # --------------------------------------------------------------------- helpers

    @property
    def budget_exhausted(self) -> bool:
        """True once no further evaluations are allowed."""
        return self._budget is None or self._budget.exhausted

    def evaluate(self, config: Mapping[str, Any]) -> Observation | None:
        """Evaluate one configuration, record it, and charge the budget.

        Returns None (without evaluating) when the budget is exhausted, so tuner loops
        can simply ``break`` on a None result.
        """
        if self._problem is None or self._budget is None or self._result is None:
            raise RuntimeError("evaluate() called outside of tune()")
        if self._budget.exhausted:
            return None
        observation = self._problem.evaluate(config)
        self._account(config, observation)
        return observation

    def evaluate_index(self, index: int, valid_hint: bool | None = None,
                       ) -> Observation | None:
        """Index-native twin of :meth:`evaluate`: evaluate one space index, record
        it, and charge the budget.

        ``valid_hint=True`` is passed by tuners whose candidate already went through
        the vectorized constraint mask (neighbourhood enumeration, valid sampling,
        post-repair checks), skipping the redundant static check.  Returns None when
        the budget is exhausted, like :meth:`evaluate`.
        """
        if self._problem is None or self._budget is None or self._result is None:
            raise RuntimeError("evaluate_index() called outside of tune()")
        if self._budget.exhausted:
            return None
        index = int(index)
        observation = self._problem.evaluate_index(index, _valid_hint=valid_hint)
        self._account_key(index, observation)
        return observation

    def _account(self, config: Mapping[str, Any], observation: Observation) -> None:
        """Charge the budget and record one observation (shared by both the scalar
        :meth:`evaluate` path and the :meth:`evaluate_all` fast path, so the
        accounting semantics cannot drift apart).

        Configurations that are members of the space key ``_seen`` by their integer
        index -- the same currency :meth:`evaluate_index` uses -- so duplicate
        accounting agrees across the two evaluation paths; out-of-space
        configurations (only reachable through the dictionary path) fall back to the
        canonical config tuple.
        """
        try:
            key: int | tuple = self._problem.space.index_of(config)
        except ReproError:
            key = config_key(config)
        self._account_key(key, observation)

    def _account_key(self, key: int | tuple, observation: Observation) -> None:
        new_config = key not in self._seen
        simulated_seconds = (observation.value / 1e3
                             if math.isfinite(observation.value) else 0.0)
        self._budget.charge(simulated_seconds=simulated_seconds, new_config=new_config)
        self._seen.add(key)
        track = self._track
        if (isinstance(key, int) and not observation.is_failure
                and observation.value < track[1]):
            track[0] = key
            track[1] = observation.value
        self._result.record(observation)

    def evaluate_index_run(self, indices: Any, _peek: tuple | None = None,
                           ) -> list[Observation]:
        """Evaluate a run of pre-validated indices until the run or budget ends.

        The index twin of :meth:`evaluate_all`: under a pure evaluation-count
        budget the affordable prefix is known up front, so the whole slice goes
        through :meth:`TuningProblem.evaluate_indices` and accounting happens in
        one pass (one :meth:`Budget.charge_bulk`, one result extend) -- per
        observation the semantics are identical to calling :meth:`evaluate_index`
        in a loop, which is also the literal fallback for every other budget shape.
        A result shorter than ``indices`` means the budget ran out.
        """
        if (self._problem is not None and self._result is not None
                and self._budget is not None and type(self._budget) is Budget
                and self._budget.max_unique_configs is None
                and self._budget.max_simulated_seconds is None):
            remaining = self._budget.remaining_evaluations
            index_list = (indices.tolist() if isinstance(indices, np.ndarray)
                          else [int(i) for i in indices])
            allowed = (len(index_list) if remaining == math.inf
                       else min(len(index_list), int(remaining)))
            batch = index_list[:allowed]
            if not batch:
                return []
            if _peek is not None and allowed < len(index_list):
                _peek = tuple(col[:allowed] for col in _peek)
            observations = self._problem.evaluate_indices(batch, valid_hint=True,
                                                          _peek=_peek)
            seen = self._seen
            seen_add = seen.add
            track = self._track
            best_value = track[1]
            isfinite = math.isfinite
            new_configs = 0
            simulated: list[float] = []
            seconds = simulated.append
            for index, obs in zip(batch, observations):
                if index not in seen:
                    seen_add(index)
                    new_configs += 1
                value = obs.value
                seconds(value / 1e3 if isfinite(value) else 0.0)
                if obs.valid and value < best_value:
                    track[0] = index
                    track[1] = best_value = value
            self._budget.charge_bulk(len(batch), simulated_seconds=simulated,
                                     new_configs=new_configs)
            self._result.extend(observations)
            return observations
        observations: list[Observation] = []
        for index in indices:
            obs = self.evaluate_index(index, valid_hint=True)
            if obs is None:
                break
            observations.append(obs)
        return observations

    def evaluate_all(self, configs: Iterable[Mapping[str, Any]]) -> list[Observation]:
        """Evaluate configurations until the list or the budget is exhausted.

        Fast path: for a materialised batch under a purely evaluation-count budget,
        the number of affordable evaluations is known up front, so the whole slice
        goes through :meth:`TuningProblem.evaluate_many` -- one vectorized validity
        mask instead of one scalar constraint pass per configuration, the same batch
        discipline the shard workers of :mod:`repro.exec` use.  Budget charging,
        duplicate accounting and recording stay per-observation, so the results are
        observation-for-observation identical to the scalar loop.
        """
        if (isinstance(configs, (list, tuple))
                and self._problem is not None and self._result is not None
                and self._budget is not None and type(self._budget) is Budget
                and self._budget.max_unique_configs is None
                and self._budget.max_simulated_seconds is None):
            # The exact-type check matters: Budget subclasses (e.g. the portfolio
            # tuner's slice) may override `exhausted`, and the fast path's
            # precomputed allowance is only valid for the base-class semantics.
            remaining = self._budget.remaining_evaluations
            allowed = (len(configs) if remaining == math.inf
                       else min(len(configs), int(remaining)))
            batch = list(configs[:allowed])
            observations = self._problem.evaluate_many(batch)
            for config, obs in zip(batch, observations):
                self._account(config, obs)
            return observations
        observations: list[Observation] = []
        for config in configs:
            obs = self.evaluate(config)
            if obs is None:
                break
            observations.append(obs)
        return observations

    def best_so_far(self) -> Observation | None:
        """The best valid observation recorded so far in the current run."""
        if self._result is None or self._result.num_valid == 0:
            return None
        return self._result.best_observation

    def best_index_so_far(self) -> int | None:
        """Space index of the best valid observation so far (None before any).

        The index twin of :meth:`best_so_far`: maintained as a running minimum
        during accounting, so no configuration dictionary is ever consulted.
        """
        return self._track[0]

    # ----------------------------------------------------- nested-tuner plumbing

    def _share_run_state(self, inner: "Tuner") -> None:
        """Wire ``inner`` into this run's bookkeeping (problem, budget, result,
        duplicate set, best tracker) so every evaluation it performs is recorded
        and budgeted exactly once, against the same state."""
        inner._problem = self._problem
        inner._budget = self._budget
        inner._result = self._result
        inner._seen = self._seen
        inner._track = self._track

    def _clear_run_state(self, inner: "Tuner") -> None:
        """Detach ``inner`` from this run's bookkeeping (inverse of
        :meth:`_share_run_state`)."""
        inner._problem = None
        inner._budget = None
        inner._result = None
        inner._seen = set()
        inner._track = [None, math.inf]

    def random_valid_config(self, problem: TuningProblem, rng: np.random.Generator,
                            max_attempts: int = 10_000) -> dict[str, Any]:
        """Draw a random configuration that satisfies the static constraints."""
        return problem.space.sample_one(rng=rng, valid_only=True)

    def ask_random(self, space: Any, rng: np.random.Generator,
                   without_replacement: bool = True, batch_size: int = 512,
                   max_consecutive_rejects: int | None = None) -> Iterator[dict[str, Any]]:
        """Stream uniformly-random valid configurations, batch-filtered.

        This is the batch ``ask`` primitive shared by sampling-style tuners: candidate
        indices are drawn in blocks and run through the space's vectorized constraint
        mask, so per-candidate Python work only happens for configurations that are
        actually evaluated.  Candidates are yielded in draw order, which keeps the
        evaluated sequence identical to drawing one index at a time with the same
        generator.

        The stream ends (``StopIteration``) after ``max_consecutive_rejects``
        consecutive duplicate/invalid draws, the signal that the space has effectively
        run out of fresh valid configurations.
        """
        for index in self.ask_random_indices(
                space, rng, without_replacement=without_replacement,
                batch_size=batch_size,
                max_consecutive_rejects=max_consecutive_rejects):
            yield space.config_at(index)

    def ask_random_indices(self, space: Any, rng: np.random.Generator,
                           without_replacement: bool = True, batch_size: int = 512,
                           max_consecutive_rejects: int | None = None) -> Iterator[int]:
        """Index-native form of :meth:`ask_random`: the same draw/filter stream,
        yielding raw space indices instead of configuration dictionaries."""
        if max_consecutive_rejects is None:
            max_consecutive_rejects = max(10_000, 50 * space.dimensions)
        drawn: set[int] = set()
        consecutive_rejects = 0
        while True:
            draws = rng.integers(0, space.cardinality, size=batch_size)
            mask = space.satisfied_mask(draws)
            for index, ok in zip(draws.tolist(), mask.tolist()):
                if not ok or (without_replacement and index in drawn):
                    consecutive_rejects += 1
                    if consecutive_rejects > max_consecutive_rejects:
                        return
                    continue
                consecutive_rejects = 0
                if without_replacement:
                    drawn.add(index)
                yield index

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(seed={self.seed})"
