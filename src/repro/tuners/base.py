"""Tuner base class: the optimizer side of the shared problem interface.

A tuner receives a :class:`~repro.core.problem.TuningProblem` and a
:class:`~repro.core.budget.Budget` and returns a
:class:`~repro.core.result.TuningResult`.  The base class handles everything that must
be identical across optimizers for a fair comparison -- seeding, budget accounting,
result recording, duplicate handling -- so a concrete tuner only implements
:meth:`Tuner._run`, typically a loop of "propose configuration(s), call
:meth:`Tuner.evaluate`".

Budget semantics
----------------
Every call to :meth:`Tuner.evaluate` consumes one evaluation from the budget, whether
or not the configuration turns out to be valid -- failed compilations cost time on real
hardware, and the paper's convergence plots count them.  Once the budget is exhausted
:meth:`Tuner.evaluate` returns None and the tuner should stop; the base class also
stops the run defensively if a tuner ignores that signal.
"""

from __future__ import annotations

import abc
import math
from typing import Any, Iterable, Iterator, Mapping

import numpy as np

from repro.core.budget import Budget
from repro.core.errors import BudgetExhaustedError
from repro.core.problem import TuningProblem
from repro.core.result import Observation, TuningResult
from repro.core.searchspace import config_key

__all__ = ["Tuner"]


class Tuner(abc.ABC):
    """Abstract base class of all optimizers in the suite.

    Parameters
    ----------
    seed:
        Default random seed; can be overridden per run via :meth:`tune`'s ``seed``.
    name:
        Optional display name override (defaults to the class-level :attr:`name`).
    """

    #: Canonical name used in result metadata and the tuner registry.
    name: str = "tuner"

    def __init__(self, seed: int | None = None, name: str | None = None):
        self.seed = seed
        if name is not None:
            self.name = name
        self._problem: TuningProblem | None = None
        self._budget: Budget | None = None
        self._result: TuningResult | None = None
        self._seen: set[tuple] = set()

    # ------------------------------------------------------------------ public API

    def tune(self, problem: TuningProblem, budget: Budget,
             seed: int | None = None) -> TuningResult:
        """Run the optimizer on ``problem`` until ``budget`` is exhausted."""
        rng = np.random.default_rng(self.seed if seed is None else seed)
        self._problem = problem
        self._budget = budget
        self._seen = set()
        self._result = TuningResult(benchmark=problem.name, gpu=problem.gpu,
                                    tuner=self.name,
                                    seed=self.seed if seed is None else seed)
        try:
            self._run(problem, budget, rng)
        except BudgetExhaustedError:
            pass
        result = self._result
        self._problem = None
        self._budget = None
        self._result = None
        return result

    # ----------------------------------------------------------- subclass contract

    @abc.abstractmethod
    def _run(self, problem: TuningProblem, budget: Budget,
             rng: np.random.Generator) -> None:
        """Optimization loop; call :meth:`evaluate` for every candidate."""

    # --------------------------------------------------------------------- helpers

    @property
    def budget_exhausted(self) -> bool:
        """True once no further evaluations are allowed."""
        return self._budget is None or self._budget.exhausted

    def evaluate(self, config: Mapping[str, Any]) -> Observation | None:
        """Evaluate one configuration, record it, and charge the budget.

        Returns None (without evaluating) when the budget is exhausted, so tuner loops
        can simply ``break`` on a None result.
        """
        if self._problem is None or self._budget is None or self._result is None:
            raise RuntimeError("evaluate() called outside of tune()")
        if self._budget.exhausted:
            return None
        observation = self._problem.evaluate(config)
        self._account(config, observation)
        return observation

    def _account(self, config: Mapping[str, Any], observation: Observation) -> None:
        """Charge the budget and record one observation (shared by both the scalar
        :meth:`evaluate` path and the :meth:`evaluate_all` fast path, so the
        accounting semantics cannot drift apart)."""
        key = config_key(config)
        new_config = key not in self._seen
        simulated_seconds = (observation.value / 1e3
                             if math.isfinite(observation.value) else 0.0)
        self._budget.charge(simulated_seconds=simulated_seconds, new_config=new_config)
        self._seen.add(key)
        self._result.record(observation)

    def evaluate_all(self, configs: Iterable[Mapping[str, Any]]) -> list[Observation]:
        """Evaluate configurations until the list or the budget is exhausted.

        Fast path: for a materialised batch under a purely evaluation-count budget,
        the number of affordable evaluations is known up front, so the whole slice
        goes through :meth:`TuningProblem.evaluate_many` -- one vectorized validity
        mask instead of one scalar constraint pass per configuration, the same batch
        discipline the shard workers of :mod:`repro.exec` use.  Budget charging,
        duplicate accounting and recording stay per-observation, so the results are
        observation-for-observation identical to the scalar loop.
        """
        if (isinstance(configs, (list, tuple))
                and self._problem is not None and self._result is not None
                and self._budget is not None and type(self._budget) is Budget
                and self._budget.max_unique_configs is None
                and self._budget.max_simulated_seconds is None):
            # The exact-type check matters: Budget subclasses (e.g. the portfolio
            # tuner's slice) may override `exhausted`, and the fast path's
            # precomputed allowance is only valid for the base-class semantics.
            remaining = self._budget.remaining_evaluations
            allowed = (len(configs) if remaining == math.inf
                       else min(len(configs), int(remaining)))
            batch = list(configs[:allowed])
            observations = self._problem.evaluate_many(batch)
            for config, obs in zip(batch, observations):
                self._account(config, obs)
            return observations
        observations: list[Observation] = []
        for config in configs:
            obs = self.evaluate(config)
            if obs is None:
                break
            observations.append(obs)
        return observations

    def best_so_far(self) -> Observation | None:
        """The best valid observation recorded so far in the current run."""
        if self._result is None or self._result.num_valid == 0:
            return None
        return self._result.best_observation

    def random_valid_config(self, problem: TuningProblem, rng: np.random.Generator,
                            max_attempts: int = 10_000) -> dict[str, Any]:
        """Draw a random configuration that satisfies the static constraints."""
        return problem.space.sample_one(rng=rng, valid_only=True)

    def ask_random(self, space: Any, rng: np.random.Generator,
                   without_replacement: bool = True, batch_size: int = 512,
                   max_consecutive_rejects: int | None = None) -> Iterator[dict[str, Any]]:
        """Stream uniformly-random valid configurations, batch-filtered.

        This is the batch ``ask`` primitive shared by sampling-style tuners: candidate
        indices are drawn in blocks and run through the space's vectorized constraint
        mask, so per-candidate Python work only happens for configurations that are
        actually evaluated.  Candidates are yielded in draw order, which keeps the
        evaluated sequence identical to drawing one index at a time with the same
        generator.

        The stream ends (``StopIteration``) after ``max_consecutive_rejects``
        consecutive duplicate/invalid draws, the signal that the space has effectively
        run out of fresh valid configurations.
        """
        if max_consecutive_rejects is None:
            max_consecutive_rejects = max(10_000, 50 * space.dimensions)
        drawn: set[int] = set()
        consecutive_rejects = 0
        while True:
            draws = rng.integers(0, space.cardinality, size=batch_size)
            mask = space.satisfied_mask(draws)
            for index, ok in zip(draws.tolist(), mask.tolist()):
                if not ok or (without_replacement and index in drawn):
                    consecutive_rejects += 1
                    if consecutive_rejects > max_consecutive_rejects:
                        return
                    continue
                consecutive_rejects = 0
                if without_replacement:
                    drawn.add(index)
                yield space.config_at(index)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(seed={self.seed})"
