"""Steady-state genetic algorithm.

Population-based global search with tournament selection, uniform crossover over the
parameter dictionary and per-parameter mutation.  Genetic algorithms are among the
best-performing optimizers in the GPU-autotuning literature the paper builds on
(Schoonhoven et al.), which makes this the primary "global optimizer" counterpart to
the local searchers in the ablation benchmarks.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.budget import Budget
from repro.core.problem import TuningProblem
from repro.core.result import Observation
from repro.tuners.base import Tuner

__all__ = ["GeneticAlgorithm"]


class GeneticAlgorithm(Tuner):
    """Steady-state GA with tournament selection and uniform crossover.

    Parameters
    ----------
    population_size:
        Number of individuals kept in the population.
    tournament_size:
        Individuals drawn per parent-selection tournament.
    mutation_rate:
        Per-parameter probability of re-sampling a gene after crossover.
    elitism:
        Number of best individuals copied unchanged when the population is refreshed.
    """

    name = "genetic"

    def __init__(self, seed: int | None = None, population_size: int = 20,
                 tournament_size: int = 3, mutation_rate: float = 0.1, elitism: int = 2):
        super().__init__(seed=seed)
        if population_size < 2:
            raise ValueError("population_size must be at least 2")
        if not (0.0 <= mutation_rate <= 1.0):
            raise ValueError("mutation_rate must lie in [0, 1]")
        self.population_size = int(population_size)
        self.tournament_size = max(int(tournament_size), 1)
        self.mutation_rate = float(mutation_rate)
        self.elitism = max(int(elitism), 0)

    # --------------------------------------------------------------------- operators

    def _tournament(self, population: list[Observation], rng: np.random.Generator) -> Observation:
        """Select the best of ``tournament_size`` random individuals."""
        picks = rng.integers(0, len(population), size=self.tournament_size)
        contenders = [population[int(i)] for i in picks]
        return min(contenders, key=lambda o: o.value)

    def _crossover(self, a: Observation, b: Observation,
                   rng: np.random.Generator) -> dict[str, Any]:
        """Uniform crossover: each gene comes from either parent with equal probability."""
        child = {}
        for name in a.config:
            child[name] = a.config[name] if rng.random() < 0.5 else b.config[name]
        return child

    def _mutate(self, problem: TuningProblem, config: dict[str, Any],
                rng: np.random.Generator) -> dict[str, Any]:
        """Re-sample each gene with probability ``mutation_rate``."""
        mutated = dict(config)
        for parameter in problem.space.parameters:
            if rng.random() < self.mutation_rate:
                mutated[parameter.name] = parameter.sample(rng)
        return mutated

    def _repair(self, problem: TuningProblem, config: dict[str, Any],
                rng: np.random.Generator) -> dict[str, Any]:
        """Replace constraint-violating offspring with a fresh random configuration."""
        if problem.space.is_valid(config):
            return config
        return problem.space.sample_one(rng=rng, valid_only=True)

    # -------------------------------------------------------------------- main loop

    def _run(self, problem: TuningProblem, budget: Budget, rng: np.random.Generator) -> None:
        population: list[Observation] = []
        # The initial population is one batched ``ask``: the space draws and
        # constraint-filters the whole block of unique configurations in array form.
        for config in problem.space.sample(self.population_size, rng=rng, valid_only=True,
                                           unique=True):
            obs = self.evaluate(config)
            if obs is None:
                return
            if not obs.is_failure:
                population.append(obs)
        if not population:
            return

        while not self.budget_exhausted:
            parent_a = self._tournament(population, rng)
            parent_b = self._tournament(population, rng)
            child_config = self._crossover(parent_a, parent_b, rng)
            child_config = self._mutate(problem, child_config, rng)
            child_config = self._repair(problem, child_config, rng)
            child = self.evaluate(child_config)
            if child is None:
                return
            if child.is_failure:
                continue
            # Steady-state replacement: the child ousts the current worst individual
            # if it improves on it; elites are never replaced.
            population.sort(key=lambda o: o.value)
            protected = population[: self.elitism]
            rest = population[self.elitism:]
            if rest and child.value < rest[-1].value:
                rest[-1] = child
            elif len(population) < self.population_size:
                rest.append(child)
            population = protected + rest
