"""Steady-state genetic algorithm.

Population-based global search with tournament selection, uniform crossover and
per-parameter mutation.  Genetic algorithms are among the best-performing optimizers
in the GPU-autotuning literature the paper builds on (Schoonhoven et al.), which makes
this the primary "global optimizer" counterpart to the local searchers in the ablation
benchmarks.

The population is index-native: each individual is a mixed-radix digit vector plus its
fitness, crossover and mutation are digit surgery, repair is one constraint-mask
check, and evaluation goes through the integer fast path.  The genetic operators
consume the random stream in exactly the order the dictionary-based seed
implementation did (genes in parameter order), so trajectories are byte-identical.
"""

from __future__ import annotations

import numpy as np

from repro.core.budget import Budget
from repro.core.problem import TuningProblem
from repro.tuners.base import Tuner

__all__ = ["GeneticAlgorithm"]


class _Individual:
    """One population member: digit vector, space index and fitness."""

    __slots__ = ("digits", "index", "value")

    def __init__(self, digits: np.ndarray, index: int, value: float):
        self.digits = digits
        self.index = index
        self.value = value


class GeneticAlgorithm(Tuner):
    """Steady-state GA with tournament selection and uniform crossover.

    Parameters
    ----------
    population_size:
        Number of individuals kept in the population.
    tournament_size:
        Individuals drawn per parent-selection tournament.
    mutation_rate:
        Per-parameter probability of re-sampling a gene after crossover.
    elitism:
        Number of best individuals copied unchanged when the population is refreshed.
    """

    name = "genetic"

    def __init__(self, seed: int | None = None, population_size: int = 20,
                 tournament_size: int = 3, mutation_rate: float = 0.1, elitism: int = 2):
        super().__init__(seed=seed)
        if population_size < 2:
            raise ValueError("population_size must be at least 2")
        if not (0.0 <= mutation_rate <= 1.0):
            raise ValueError("mutation_rate must lie in [0, 1]")
        self.population_size = int(population_size)
        self.tournament_size = max(int(tournament_size), 1)
        self.mutation_rate = float(mutation_rate)
        self.elitism = max(int(elitism), 0)

    # --------------------------------------------------------------------- operators

    def _tournament(self, population: list[_Individual],
                    rng: np.random.Generator) -> _Individual:
        """Select the best of ``tournament_size`` random individuals."""
        picks = rng.integers(0, len(population), size=self.tournament_size)
        contenders = [population[int(i)] for i in picks]
        return min(contenders, key=lambda ind: ind.value)

    def _crossover(self, a: _Individual, b: _Individual,
                   rng: np.random.Generator) -> np.ndarray:
        """Uniform crossover: each gene comes from either parent with equal probability."""
        child = np.empty_like(a.digits)
        for j in range(child.size):
            child[j] = a.digits[j] if rng.random() < 0.5 else b.digits[j]
        return child

    def _mutate(self, problem: TuningProblem, digits: np.ndarray,
                rng: np.random.Generator) -> np.ndarray:
        """Re-sample each gene with probability ``mutation_rate``."""
        for j, parameter in enumerate(problem.space.parameters):
            if rng.random() < self.mutation_rate:
                digits[j] = parameter.sample_index(rng)
        return digits

    def _repair(self, problem: TuningProblem, digits: np.ndarray,
                rng: np.random.Generator) -> tuple[np.ndarray, int]:
        """Replace constraint-violating offspring with a fresh random configuration."""
        space = problem.space
        index = int(space.digits_to_indices(digits[None, :])[0])
        if space.index_is_feasible(index):
            return digits, index
        index = space.sample_one_index(rng=rng, valid_only=True)
        return space._digits_of_index(index), index

    # -------------------------------------------------------------------- main loop

    def _run(self, problem: TuningProblem, budget: Budget, rng: np.random.Generator) -> None:
        space = problem.space
        population: list[_Individual] = []
        # The initial population is one batched ``ask``: the space draws and
        # constraint-filters the whole block of unique indices in array form.
        initial = space.sample_indices(self.population_size, rng=rng,
                                       valid_only=True, unique=True)
        for index in initial.tolist():
            obs = self.evaluate_index(index, valid_hint=True)
            if obs is None:
                return
            if not obs.is_failure:
                population.append(_Individual(space._digits_of_index(index),
                                              index, obs.value))
        if not population:
            return

        while not self.budget_exhausted:
            parent_a = self._tournament(population, rng)
            parent_b = self._tournament(population, rng)
            child_digits = self._crossover(parent_a, parent_b, rng)
            child_digits = self._mutate(problem, child_digits, rng)
            child_digits, child_index = self._repair(problem, child_digits, rng)
            obs = self.evaluate_index(child_index, valid_hint=True)
            if obs is None:
                return
            if obs.is_failure:
                continue
            child = _Individual(child_digits, child_index, obs.value)
            # Steady-state replacement: the child ousts the current worst individual
            # if it improves on it; elites are never replaced.
            population.sort(key=lambda ind: ind.value)
            protected = population[: self.elitism]
            rest = population[self.elitism:]
            if rest and child.value < rest[-1].value:
                rest[-1] = child
            elif len(population) < self.population_size:
                rest.append(child)
            population = protected + rest
