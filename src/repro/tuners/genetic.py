"""Steady-state genetic algorithm.

Population-based global search with tournament selection, uniform crossover and
per-parameter mutation.  Genetic algorithms are among the best-performing optimizers
in the GPU-autotuning literature the paper builds on (Schoonhoven et al.), which makes
this the primary "global optimizer" counterpart to the local searchers in the ablation
benchmarks.

The population is index-native and generation-batched: each individual is a
mixed-radix digit vector plus its fitness, crossover is one sized draw of gene gates
(digit-matrix surgery via :func:`numpy.where`), repair is one constraint check, and
evaluation settles through :class:`~repro.tuners.base.GenerationRun` -- on peekable
problems a whole generation's worth of children is revealed candidate by candidate
and then bulk-accounted in one :meth:`~repro.core.budget.Budget.charge_bulk`.  The
genetic operators consume the random stream in exactly the order the dictionary-based
seed implementation did (genes in parameter order), so trajectories are byte-identical.
"""

from __future__ import annotations

import operator

import numpy as np

from repro.core.budget import Budget
from repro.core.problem import TuningProblem
from repro.tuners.base import Tuner

__all__ = ["GeneticAlgorithm"]

_BY_VALUE = operator.attrgetter("value")


class _Individual:
    """One population member: digit vector, space index and fitness."""

    __slots__ = ("digits", "index", "value")

    def __init__(self, digits: np.ndarray, index: int, value: float):
        self.digits = digits
        self.index = index
        self.value = value


class GeneticAlgorithm(Tuner):
    """Steady-state GA with tournament selection and uniform crossover.

    Parameters
    ----------
    population_size:
        Number of individuals kept in the population.
    tournament_size:
        Individuals drawn per parent-selection tournament.
    mutation_rate:
        Per-parameter probability of re-sampling a gene after crossover.
    elitism:
        Number of best individuals copied unchanged when the population is refreshed.
    """

    name = "genetic"

    def __init__(self, seed: int | None = None, population_size: int = 20,
                 tournament_size: int = 3, mutation_rate: float = 0.1, elitism: int = 2):
        super().__init__(seed=seed)
        if population_size < 2:
            raise ValueError("population_size must be at least 2")
        if not (0.0 <= mutation_rate <= 1.0):
            raise ValueError("mutation_rate must lie in [0, 1]")
        self.population_size = int(population_size)
        self.tournament_size = max(int(tournament_size), 1)
        self.mutation_rate = float(mutation_rate)
        self.elitism = max(int(elitism), 0)

    # --------------------------------------------------------------------- operators

    def _tournament(self, population: list[_Individual],
                    rng: np.random.Generator) -> _Individual:
        """Select the best of ``tournament_size`` random individuals."""
        picks = rng.integers(0, len(population), size=self.tournament_size)
        contenders = [population[int(i)] for i in picks]
        return min(contenders, key=_BY_VALUE)

    def _tournament_pair(self, population: list[_Individual],
                         rng: np.random.Generator
                         ) -> tuple[_Individual, _Individual]:
        """Both parents' tournaments in one sized draw.

        The population does not change between the two back-to-back parent
        selections, so one ``size=2 * tournament_size`` draw consumes the
        generator stream exactly like two consecutive :meth:`_tournament`
        draws -- half the RNG dispatch per child.
        """
        k = self.tournament_size
        picks = rng.integers(0, len(population), size=2 * k).tolist()
        parent_a = min((population[i] for i in picks[:k]), key=_BY_VALUE)
        parent_b = min((population[i] for i in picks[k:]), key=_BY_VALUE)
        return parent_a, parent_b

    def _crossover(self, a: _Individual, b: _Individual,
                   rng: np.random.Generator) -> np.ndarray:
        """Uniform crossover: each gene comes from either parent with equal probability.

        One sized draw decides every gene gate -- the generator stream is
        identical to drawing one uniform per gene in parameter order.
        """
        from_a = rng.random(a.digits.size) < 0.5
        return np.where(from_a, a.digits, b.digits)

    def _mutate(self, radices: list[int], digits: np.ndarray,
                rng: np.random.Generator) -> np.ndarray:
        """Re-sample each gene with probability ``mutation_rate``.

        The gate draw and the conditional re-sample draw interleave per gene, so
        this operator stays a scalar loop by construction: hoisting the gates
        into a sized draw would reorder the generator stream whenever any gene
        mutates.
        """
        random = rng.random
        integers = rng.integers
        rate = self.mutation_rate
        for j, radix in enumerate(radices):
            if random() < rate:
                digits[j] = integers(0, radix)
        return digits

    def _repair(self, problem: TuningProblem, digits: np.ndarray,
                rng: np.random.Generator) -> tuple[np.ndarray, int]:
        """Replace constraint-violating offspring with a fresh random configuration."""
        space = problem.space
        index = int(digits @ space._places)
        if space.index_is_feasible(index):
            return digits, index
        index = space.sample_one_index(rng=rng, valid_only=True)
        return space.digits_of_index(index), index

    # -------------------------------------------------------------------- main loop

    def _run(self, problem: TuningProblem, budget: Budget, rng: np.random.Generator) -> None:
        space = problem.space
        population: list[_Individual] = []
        # The initial population is one batched ``ask`` plus one bulk-accounted
        # evaluation run: the space draws and constraint-filters the whole block
        # of unique indices in array form, and the run settles with a single
        # budget charge where the budget allows precomputing the prefix.
        initial = space.sample_indices(self.population_size, rng=rng,
                                       valid_only=True, unique=True)
        observations = self.evaluate_index_run(initial)
        for index, obs in zip(initial.tolist(), observations):
            if not obs.is_failure:
                population.append(_Individual(space.digits_of_index(index),
                                              index, obs.value))
        if len(observations) < initial.size or not population:
            return

        radices = [p.cardinality for p in space.parameters]
        gen = self.generation_run()
        children = 0
        # The budget check only matters at generation boundaries (in peeked mode
        # nothing is charged between flushes; in sequential mode an exhausted
        # budget surfaces as a None fate), so mid-generation children skip it.
        while children or not self.budget_exhausted:
            parent_a, parent_b = self._tournament_pair(population, rng)
            child_digits = self._crossover(parent_a, parent_b, rng)
            child_digits = self._mutate(radices, child_digits, rng)
            child_digits, child_index = self._repair(problem, child_digits, rng)
            fate = gen.submit(child_index)
            if fate is None:
                return
            value, failed = fate
            if not failed:
                child = _Individual(child_digits, child_index, value)
                # Steady-state replacement: the child ousts the current worst
                # individual if it improves on it; elites are never replaced.
                population.sort(key=_BY_VALUE)
                protected = population[: self.elitism]
                rest = population[self.elitism:]
                if rest and child.value < rest[-1].value:
                    rest[-1] = child
                elif len(population) < self.population_size:
                    rest.append(child)
                population = protected + rest
            children += 1
            if children >= self.population_size:
                # One population's worth of children is this steady-state GA's
                # generation: settle it in one bulk evaluation.
                children = 0
                if not gen.flush():
                    return
