"""Local search: hill climbing with restarts, and greedy iterated local search.

These are the canonical "local" optimizers whose behaviour the proportion-of-centrality
metric (Fig. 3 of the paper) is designed to predict: a randomised first-improvement
local search performs a walk on the fitness-flow graph, and the metric estimates how
likely such a walk is to end in a good local minimum.  Having the real algorithm in the
suite lets the ablation benchmarks check that prediction empirically.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.core.budget import Budget
from repro.core.problem import TuningProblem
from repro.core.result import Observation
from repro.tuners.base import Tuner

__all__ = ["LocalSearch", "GreedyILS"]


class LocalSearch(Tuner):
    """Hill climbing over the Hamming-distance-1 neighbourhood with random restarts.

    Parameters
    ----------
    strategy:
        ``"first"`` -- first-improvement: accept the first better neighbour found (the
        randomised first-improvement search of Schoonhoven et al.); ``"best"`` --
        best-improvement: evaluate the whole neighbourhood and move to the best.
    neighborhood:
        ``"hamming"`` (all other values of one parameter) or ``"adjacent"`` (one step
        in the ordered value list).
    restarts:
        Unlimited by default (the search restarts from a random point whenever it
        reaches a local minimum and budget remains).
    """

    name = "local"

    def __init__(self, seed: int | None = None, strategy: str = "first",
                 neighborhood: str = "hamming"):
        super().__init__(seed=seed)
        if strategy not in ("first", "best"):
            raise ValueError(f"unknown strategy {strategy!r} (use 'first' or 'best')")
        self.strategy = strategy
        self.neighborhood = neighborhood

    # ------------------------------------------------------------------ main loop

    def _run(self, problem: TuningProblem, budget: Budget, rng: np.random.Generator) -> None:
        # Restart points come from the space's batched sampler and each step's
        # neighbourhood is validity-filtered as one constraint mask, so the scalar
        # work per iteration is just the evaluations themselves.
        while not self.budget_exhausted:
            start = problem.space.sample_one(rng=rng, valid_only=True)
            self._climb(problem, start, rng)

    def _climb(self, problem: TuningProblem, start: Mapping[str, Any],
               rng: np.random.Generator) -> None:
        current = self.evaluate(start)
        if current is None:
            return
        while not self.budget_exhausted:
            neighbors = problem.space.neighbors(current.config, strategy=self.neighborhood,
                                                valid_only=True)
            if not neighbors:
                return
            order = rng.permutation(len(neighbors))
            improved: Observation | None = None
            if self.strategy == "first":
                for idx in order:
                    obs = self.evaluate(neighbors[int(idx)])
                    if obs is None:
                        return
                    if not obs.is_failure and obs.value < current.value:
                        improved = obs
                        break
            else:
                best: Observation | None = None
                for idx in order:
                    obs = self.evaluate(neighbors[int(idx)])
                    if obs is None:
                        return
                    if obs.is_failure:
                        continue
                    if best is None or obs.value < best.value:
                        best = obs
                if best is not None and best.value < current.value:
                    improved = best
            if improved is None:
                return  # local minimum reached
            current = improved


class GreedyILS(Tuner):
    """Greedy iterated local search: hill climb, perturb the local optimum, repeat.

    After each descent the best-known configuration is perturbed in
    ``perturbation_strength`` randomly chosen parameters and the climb restarts from
    there, escaping small basins without losing the incumbent.
    """

    name = "greedy_ils"

    def __init__(self, seed: int | None = None, perturbation_strength: int = 2,
                 neighborhood: str = "hamming"):
        super().__init__(seed=seed)
        self.perturbation_strength = max(int(perturbation_strength), 1)
        self.neighborhood = neighborhood

    def _perturb(self, problem: TuningProblem, config: Mapping[str, Any],
                 rng: np.random.Generator) -> dict[str, Any]:
        """Re-sample a few parameters of ``config`` uniformly at random."""
        perturbed = dict(config)
        names = list(problem.space.parameter_names)
        chosen = rng.choice(len(names), size=min(self.perturbation_strength, len(names)),
                            replace=False)
        for idx in chosen:
            parameter = problem.space.parameter(names[int(idx)])
            perturbed[parameter.name] = parameter.sample(rng)
        if problem.space.is_valid(perturbed):
            return perturbed
        return problem.space.sample_one(rng=rng, valid_only=True)

    def _run(self, problem: TuningProblem, budget: Budget, rng: np.random.Generator) -> None:
        climber = LocalSearch(strategy="first", neighborhood=self.neighborhood)
        # Share this run's bookkeeping with the inner climber so every evaluation it
        # performs is recorded and budgeted exactly once.
        climber._problem = self._problem
        climber._budget = self._budget
        climber._result = self._result
        climber._seen = self._seen

        incumbent = problem.space.sample_one(rng=rng, valid_only=True)
        while not self.budget_exhausted:
            climber._climb(problem, incumbent, rng)
            best = self.best_so_far()
            base = best.config if best is not None else incumbent
            incumbent = self._perturb(problem, base, rng)
