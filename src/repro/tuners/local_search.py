"""Local search: hill climbing with restarts, and greedy iterated local search.

These are the canonical "local" optimizers whose behaviour the proportion-of-centrality
metric (Fig. 3 of the paper) is designed to predict: a randomised first-improvement
local search performs a walk on the fitness-flow graph, and the metric estimates how
likely such a walk is to end in a good local minimum.  Having the real algorithm in the
suite lets the ablation benchmarks check that prediction empirically.

Both optimizers are index-native: the walk carries the incumbent as a mixed-radix
space index, neighbourhoods come from the digit-arithmetic kernels
(:meth:`~repro.core.searchspace.SearchSpace.neighbor_indices`) and evaluations go
through :meth:`~repro.tuners.base.Tuner.evaluate_index` -- no configuration dictionary
exists anywhere in the loop, yet the trajectories (RNG streams, observation order,
values) are byte-identical to the dictionary-based seed implementation.
"""

from __future__ import annotations

import numpy as np

from repro.core.budget import Budget
from repro.core.problem import TuningProblem
from repro.core.result import Observation
from repro.tuners.base import Tuner

__all__ = ["LocalSearch", "GreedyILS"]


class LocalSearch(Tuner):
    """Hill climbing over the Hamming-distance-1 neighbourhood with random restarts.

    Parameters
    ----------
    strategy:
        ``"first"`` -- first-improvement: accept the first better neighbour found (the
        randomised first-improvement search of Schoonhoven et al.); ``"best"`` --
        best-improvement: evaluate the whole neighbourhood and move to the best.
    neighborhood:
        ``"hamming"`` (all other values of one parameter) or ``"adjacent"`` (one step
        in the ordered value list).
    restarts:
        Unlimited by default (the search restarts from a random point whenever it
        reaches a local minimum and budget remains).
    """

    name = "local"

    def __init__(self, seed: int | None = None, strategy: str = "first",
                 neighborhood: str = "hamming"):
        super().__init__(seed=seed)
        if strategy not in ("first", "best"):
            raise ValueError(f"unknown strategy {strategy!r} (use 'first' or 'best')")
        self.strategy = strategy
        self.neighborhood = neighborhood

    # ------------------------------------------------------------------ main loop

    def _run(self, problem: TuningProblem, budget: Budget, rng: np.random.Generator) -> None:
        # Restart points come from the space's batched index sampler and each step's
        # neighbourhood is one digit-arithmetic enumeration plus one constraint
        # mask, so the per-iteration Python work is just the evaluations themselves.
        while not self.budget_exhausted:
            start = problem.space.sample_one_index(rng=rng, valid_only=True)
            self._climb(problem, start, rng)

    def _climb(self, problem: TuningProblem, start: int,
               rng: np.random.Generator) -> None:
        current = self.evaluate_index(start, valid_hint=True)
        if current is None:
            return
        current_index = start
        while not self.budget_exhausted:
            neighbors = problem.space.neighbor_indices(
                current_index, strategy=self.neighborhood, valid_only=True)
            if not neighbors.size:
                return
            permuted = neighbors[rng.permutation(neighbors.size)]
            # Peekable objectives (cache replays) reveal every neighbour's fate in
            # one array probe, so the step evaluates exactly the prefix the
            # sequential loop would have -- same observations, batch accounting.
            peek = problem.peek_indices(permuted)
            if peek is not None:
                step = self._step_peeked(current, permuted, peek)
            else:
                step = self._step_sequential(current, permuted)
            if step is None:
                return  # budget exhausted or local minimum reached
            current, current_index = step

    def _step_peeked(self, current: Observation, permuted: np.ndarray,
                     peek: tuple) -> tuple[Observation, int] | None:
        values, failure = peek[0], peek[1]
        improving = ~failure & (values < current.value)
        if self.strategy == "first":
            hits = np.nonzero(improving)[0]
            stop = int(hits[0]) + 1 if hits.size else permuted.size
            batch = permuted[:stop]
            observations = self.evaluate_index_run(
                batch, _peek=tuple(col[:stop] for col in peek))
            if len(observations) < batch.size or not hits.size:
                return None
            return observations[-1], int(batch[-1])
        observations = self.evaluate_index_run(permuted, _peek=peek)
        if len(observations) < permuted.size or not improving.any():
            return None
        # Best improvement: the first occurrence of the minimum value among the
        # valid neighbours (matching the sequential strict-< update rule).
        ok = np.nonzero(~failure)[0]
        best_pos = int(ok[np.argmin(values[ok])])
        if values[best_pos] >= current.value:
            return None
        return observations[best_pos], int(permuted[best_pos])

    def _step_sequential(self, current: Observation, permuted: np.ndarray,
                         ) -> tuple[Observation, int] | None:
        improved: Observation | None = None
        improved_index = -1
        if self.strategy == "first":
            for index in permuted.tolist():
                obs = self.evaluate_index(index, valid_hint=True)
                if obs is None:
                    return None
                if not obs.is_failure and obs.value < current.value:
                    improved = obs
                    improved_index = index
                    break
        else:
            best: Observation | None = None
            best_index = -1
            for index in permuted.tolist():
                obs = self.evaluate_index(index, valid_hint=True)
                if obs is None:
                    return None
                if obs.is_failure:
                    continue
                if best is None or obs.value < best.value:
                    best = obs
                    best_index = index
            if best is not None and best.value < current.value:
                improved = best
                improved_index = best_index
        if improved is None:
            return None
        return improved, improved_index


class GreedyILS(Tuner):
    """Greedy iterated local search: hill climb, perturb the local optimum, repeat.

    After each descent the best-known configuration is perturbed in
    ``perturbation_strength`` randomly chosen parameters and the climb restarts from
    there, escaping small basins without losing the incumbent.  The incumbent lives
    as a space index (via the base class's best tracker), so perturbation is digit
    surgery: re-sample a few digits, re-assemble the index, one constraint-mask check.
    """

    name = "greedy_ils"

    def __init__(self, seed: int | None = None, perturbation_strength: int = 2,
                 neighborhood: str = "hamming"):
        super().__init__(seed=seed)
        self.perturbation_strength = max(int(perturbation_strength), 1)
        self.neighborhood = neighborhood

    def _perturb(self, problem: TuningProblem, index: int,
                 rng: np.random.Generator) -> int:
        """Re-sample a few digits of ``index`` uniformly at random."""
        space = problem.space
        digits = space.digits_of_index(index).copy()
        dims = space.dimensions
        chosen = rng.choice(dims, size=min(self.perturbation_strength, dims),
                            replace=False)
        for j in chosen:
            digits[int(j)] = space.parameters[int(j)].sample_index(rng)
        perturbed = int(space.digits_to_indices(digits[None, :])[0])
        if space.index_is_feasible(perturbed):
            return perturbed
        return space.sample_one_index(rng=rng, valid_only=True)

    def _run(self, problem: TuningProblem, budget: Budget, rng: np.random.Generator) -> None:
        climber = LocalSearch(strategy="first", neighborhood=self.neighborhood)
        # Share this run's bookkeeping with the inner climber so every evaluation it
        # performs is recorded and budgeted exactly once.
        self._share_run_state(climber)

        incumbent = problem.space.sample_one_index(rng=rng, valid_only=True)
        while not self.budget_exhausted:
            climber._climb(problem, incumbent, rng)
            best = self.best_index_so_far()
            base = best if best is not None else incumbent
            incumbent = self._perturb(problem, base, rng)
