"""Optimizer portfolio implementing the shared ask/tell tuning interface.

The paper's suite exists so that optimization algorithms from different autotuners can
be compared on identical problems.  This subpackage provides that algorithm portfolio:

================  ==========================================================
``random``        uniform random search (the paper's Fig. 2 baseline)
``grid``          deterministic sweep in mixed-radix order
``local``         first/best-improvement hill climbing with random restarts
``annealing``     simulated annealing over the neighbourhood graph
``genetic``       steady-state genetic algorithm with uniform crossover
``diff_evo``      discrete differential evolution
``pso``           particle swarm optimization on the encoded space
``surrogate``     GBDT surrogate model with expected-improvement-style ranking
``greedy_ils``    greedy iterated local search (randomised restarts + perturbation)
================  ==========================================================

plus :mod:`repro.tuners.adapters`, the integration layer mirroring how BAT wraps
external frameworks (Optuna, SMAC3, Kernel Tuner, KTT), and
:mod:`repro.tuners.portfolio`, which runs several tuners under a shared budget.
"""

from __future__ import annotations

from typing import Callable

from repro.tuners.base import Tuner
from repro.tuners.random_search import RandomSearch
from repro.tuners.grid_search import GridSearch
from repro.tuners.local_search import LocalSearch, GreedyILS
from repro.tuners.simulated_annealing import SimulatedAnnealing
from repro.tuners.genetic import GeneticAlgorithm
from repro.tuners.differential_evolution import DifferentialEvolution
from repro.tuners.pso import ParticleSwarm
from repro.tuners.surrogate import SurrogateSearch
from repro.tuners.portfolio import PortfolioTuner

__all__ = [
    "Tuner",
    "RandomSearch",
    "GridSearch",
    "LocalSearch",
    "GreedyILS",
    "SimulatedAnnealing",
    "GeneticAlgorithm",
    "DifferentialEvolution",
    "ParticleSwarm",
    "SurrogateSearch",
    "PortfolioTuner",
    "all_tuners",
]


def all_tuners() -> dict[str, Callable[..., Tuner]]:
    """Factories for every shipped tuner, keyed by canonical name.

    Each factory accepts ``seed=`` plus the tuner's own keyword options.
    """
    return {
        "random": RandomSearch,
        "grid": GridSearch,
        "local": LocalSearch,
        "greedy_ils": GreedyILS,
        "annealing": SimulatedAnnealing,
        "genetic": GeneticAlgorithm,
        "diff_evo": DifferentialEvolution,
        "pso": ParticleSwarm,
        "surrogate": SurrogateSearch,
    }
