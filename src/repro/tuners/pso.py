"""Particle swarm optimization on the encoded configuration space.

Each particle carries a continuous position/velocity in the encoded space; positions
are snapped to the nearest allowed value of each parameter before evaluation.  The
velocity update uses the standard inertia + cognitive + social formulation.  PSO is one
of the global optimizers commonly shipped by the autotuners the paper integrates with
(Kernel Tuner in particular), which is why it is part of the portfolio.

Like the other population tuners, the swarm is array-native and generation-batched:
positions encode from the value columns, each particle's cognitive/social noise is
one sized ``(2, dims)`` draw (stream-identical to the two per-vector draws of the
seed implementation), snapping goes through the padded encoded-value grid straight
to a space index, and evaluation settles through
:class:`~repro.tuners.base.GenerationRun` -- the swarm's best must be current before
the *next* particle moves, so values are peeked per candidate and the whole sweep is
bulk-accounted in one run.  Trajectories are byte-identical to the per-candidate loop.
"""

from __future__ import annotations

import numpy as np

from repro.core.budget import Budget
from repro.core.problem import TuningProblem
from repro.tuners.base import Tuner

__all__ = ["ParticleSwarm"]


class ParticleSwarm(Tuner):
    """Global-best PSO with snap-to-grid evaluation.

    Parameters
    ----------
    swarm_size:
        Number of particles.
    inertia / cognitive / social:
        Standard PSO coefficients (velocity memory, pull towards the particle's own
        best, pull towards the swarm's best).
    """

    name = "pso"

    def __init__(self, seed: int | None = None, swarm_size: int = 16,
                 inertia: float = 0.7, cognitive: float = 1.5, social: float = 1.5):
        super().__init__(seed=seed)
        if swarm_size < 2:
            raise ValueError("swarm_size must be at least 2")
        self.swarm_size = int(swarm_size)
        self.inertia = float(inertia)
        self.cognitive = float(cognitive)
        self.social = float(social)

    def _run(self, problem: TuningProblem, budget: Budget, rng: np.random.Generator) -> None:
        space = problem.space
        indices = space.sample_indices(self.swarm_size, rng=rng, valid_only=True,
                                       unique=True)
        positions = space.encode_indices(indices)
        # Velocity scale proportional to each dimension's value range.
        ranges = np.array([float(np.ptp(p.numeric_values())) or 1.0 for p in space.parameters])
        velocities = rng.uniform(-0.1, 0.1, size=positions.shape) * ranges

        personal_best = positions.copy()
        personal_best_value = np.full(indices.size, np.inf)
        global_best = positions[0].copy()
        global_best_value = np.inf

        observations = self.evaluate_index_run(indices)
        for i, obs in enumerate(observations):
            value = obs.value if not obs.is_failure else np.inf
            personal_best_value[i] = value
            if value < global_best_value:
                global_best_value = value
                global_best = positions[i].copy()
        if len(observations) < indices.size:
            return

        dims = positions.shape[1]
        inertia, cognitive, social = self.inertia, self.cognitive, self.social
        gen = self.generation_run()
        while not self.budget_exhausted:
            for i in range(indices.size):
                # One sized draw covers both noise vectors; the stream order is
                # exactly r_cog then r_soc, as in the per-vector draws.
                r_cog, r_soc = rng.random((2, dims))
                velocities[i] = (inertia * velocities[i]
                                 + cognitive * r_cog * (personal_best[i] - positions[i])
                                 + social * r_soc * (global_best - positions[i]))
                positions[i] += velocities[i]

                candidate = space.decode_index(positions[i])
                if not space.index_is_feasible(candidate):
                    candidate = space.sample_one_index(rng=rng, valid_only=True)
                    positions[i] = space.encode_index(candidate)
                fate = gen.submit(candidate)
                if fate is None:
                    return
                value, failed = fate
                value = np.inf if failed else value
                if value < personal_best_value[i]:
                    personal_best_value[i] = value
                    personal_best[i] = positions[i].copy()
                if value < global_best_value:
                    global_best_value = value
                    global_best = positions[i].copy()
            if not gen.flush():
                return
