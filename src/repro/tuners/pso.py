"""Particle swarm optimization on the encoded configuration space.

Each particle carries a continuous position/velocity in the encoded space; positions
are snapped to the nearest allowed value of each parameter before evaluation.  The
velocity update uses the standard inertia + cognitive + social formulation.  PSO is one
of the global optimizers commonly shipped by the autotuners the paper integrates with
(Kernel Tuner in particular), which is why it is part of the portfolio.

Like the other population tuners, the swarm is array-native: positions encode from the
value columns, snapping goes through the digit decoder straight to a space index, and
evaluation uses the integer fast path -- no configuration dictionaries in the loop.
"""

from __future__ import annotations

import numpy as np

from repro.core.budget import Budget
from repro.core.problem import TuningProblem
from repro.tuners.base import Tuner

__all__ = ["ParticleSwarm"]


class ParticleSwarm(Tuner):
    """Global-best PSO with snap-to-grid evaluation.

    Parameters
    ----------
    swarm_size:
        Number of particles.
    inertia / cognitive / social:
        Standard PSO coefficients (velocity memory, pull towards the particle's own
        best, pull towards the swarm's best).
    """

    name = "pso"

    def __init__(self, seed: int | None = None, swarm_size: int = 16,
                 inertia: float = 0.7, cognitive: float = 1.5, social: float = 1.5):
        super().__init__(seed=seed)
        if swarm_size < 2:
            raise ValueError("swarm_size must be at least 2")
        self.swarm_size = int(swarm_size)
        self.inertia = float(inertia)
        self.cognitive = float(cognitive)
        self.social = float(social)

    def _run(self, problem: TuningProblem, budget: Budget, rng: np.random.Generator) -> None:
        space = problem.space
        indices = space.sample_indices(self.swarm_size, rng=rng, valid_only=True,
                                       unique=True)
        positions = space.encode_indices(indices)
        # Velocity scale proportional to each dimension's value range.
        ranges = np.array([float(np.ptp(p.numeric_values())) or 1.0 for p in space.parameters])
        velocities = rng.uniform(-0.1, 0.1, size=positions.shape) * ranges

        personal_best = positions.copy()
        personal_best_value = np.full(indices.size, np.inf)
        global_best = positions[0].copy()
        global_best_value = np.inf

        for i, index in enumerate(indices.tolist()):
            obs = self.evaluate_index(index, valid_hint=True)
            if obs is None:
                return
            value = obs.value if not obs.is_failure else np.inf
            personal_best_value[i] = value
            if value < global_best_value:
                global_best_value = value
                global_best = positions[i].copy()

        while not self.budget_exhausted:
            for i in range(indices.size):
                if self.budget_exhausted:
                    return
                r_cog = rng.random(positions.shape[1])
                r_soc = rng.random(positions.shape[1])
                velocities[i] = (self.inertia * velocities[i]
                                 + self.cognitive * r_cog * (personal_best[i] - positions[i])
                                 + self.social * r_soc * (global_best - positions[i]))
                positions[i] = positions[i] + velocities[i]

                candidate = space.decode_index(positions[i])
                if not space.index_is_feasible(candidate):
                    candidate = space.sample_one_index(rng=rng, valid_only=True)
                    positions[i] = space.encode_indices([candidate])[0]
                obs = self.evaluate_index(candidate, valid_hint=True)
                if obs is None:
                    return
                value = obs.value if not obs.is_failure else np.inf
                if value < personal_best_value[i]:
                    personal_best_value[i] = value
                    personal_best[i] = positions[i].copy()
                if value < global_best_value:
                    global_best_value = value
                    global_best = positions[i].copy()
