"""Grid (exhaustive) search.

Deterministic sweep over the valid search space in mixed-radix order, optionally with a
stride so that a limited budget still covers the whole range of every parameter.  Grid
search is the degenerate baseline the paper's Related Work criticises hard-coded
benchmarks for needing -- it is included both for completeness and because exhaustive
campaigns (the paper's Pnpoly/Nbody/GEMM/Convolution caches) are a grid search by
definition.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.budget import Budget
from repro.core.problem import TuningProblem
from repro.tuners.base import Tuner

__all__ = ["GridSearch"]


class GridSearch(Tuner):
    """Deterministic enumeration of the valid search space.

    Parameters
    ----------
    stride:
        Evaluate every ``stride``-th point of the raw Cartesian product (1 =
        exhaustive).  A stride co-prime with the parameter radices samples all levels
        of every parameter even under tight budgets.
    shuffle:
        If True, enumerate in a seeded random permutation of the index range instead
        of ascending order (useful to decorrelate the sweep from parameter order).
    """

    name = "grid"

    def __init__(self, seed: int | None = None, stride: int = 1, shuffle: bool = False):
        super().__init__(seed=seed)
        if stride < 1:
            raise ValueError("stride must be >= 1")
        self.stride = int(stride)
        self.shuffle = shuffle

    def _run(self, problem: TuningProblem, budget: Budget, rng: np.random.Generator) -> None:
        space = problem.space
        indices = np.arange(0, space.cardinality, self.stride, dtype=np.int64)
        if self.shuffle:
            rng.shuffle(indices)
        # Validity is resolved one block at a time through the vectorized constraint
        # mask; the surviving indices feed the evaluation fast path directly (no
        # configuration dictionaries), and blocks never grow far beyond what the
        # remaining budget can evaluate.
        chunk = 1 << 14
        start = 0
        while start < indices.size:
            if self.budget_exhausted:
                return
            remaining = self._budget.remaining_evaluations if self._budget else chunk
            block_size = chunk if not math.isfinite(remaining) else max(
                min(chunk, int(remaining) * 4), 64)
            block = indices[start:start + block_size]
            start += block_size
            feasible = block[space.satisfied_mask(block)]
            # One batch evaluation per feasible block: a short result means the
            # budget ran out mid-block, exactly like the per-index loop stopping.
            if len(self.evaluate_index_run(feasible)) < feasible.size:
                return
