"""Random search.

Uniform random sampling of the (statically valid) search space, without replacement by
default.  Random search is the reference optimizer of the paper's convergence study
(Fig. 2): the analyses sample configurations uniformly from the campaign caches and
track the best-so-far relative performance, and this class implements exactly that
behaviour when run against a cache-replay problem.
"""

from __future__ import annotations

import numpy as np

from repro.core.budget import Budget
from repro.core.problem import TuningProblem
from repro.tuners.base import Tuner

__all__ = ["RandomSearch"]


class RandomSearch(Tuner):
    """Uniform random search over the valid search space.

    Parameters
    ----------
    seed:
        Random seed.
    without_replacement:
        If True (default), never evaluates the same configuration twice -- the
        behaviour real tuners get from their evaluation caches and the behaviour the
        paper assumes when plotting convergence against unique function evaluations.
    """

    name = "random"

    def __init__(self, seed: int | None = None, without_replacement: bool = True):
        super().__init__(seed=seed)
        self.without_replacement = without_replacement

    def _run(self, problem: TuningProblem, budget: Budget, rng: np.random.Generator) -> None:
        # Candidates come from the base class's batch ``ask`` stream: indices are
        # drawn in blocks and filtered through the vectorized constraint mask, with
        # the evaluated sequence identical to the one-draw-at-a-time loop.  The
        # indices go straight into the evaluation fast path (no configuration
        # dictionaries), and the stream ends by itself once the space has clearly
        # run out of fresh valid configurations (small spaces under large budgets).
        for index in self.ask_random_indices(
                problem.space, rng, without_replacement=self.without_replacement):
            if self.evaluate_index(index, valid_hint=True) is None:
                break
