"""Random search.

Uniform random sampling of the (statically valid) search space, without replacement by
default.  Random search is the reference optimizer of the paper's convergence study
(Fig. 2): the analyses sample configurations uniformly from the campaign caches and
track the best-so-far relative performance, and this class implements exactly that
behaviour when run against a cache-replay problem.
"""

from __future__ import annotations

import numpy as np

from repro.core.budget import Budget
from repro.core.problem import TuningProblem
from repro.core.searchspace import config_key
from repro.tuners.base import Tuner

__all__ = ["RandomSearch"]


class RandomSearch(Tuner):
    """Uniform random search over the valid search space.

    Parameters
    ----------
    seed:
        Random seed.
    without_replacement:
        If True (default), never evaluates the same configuration twice -- the
        behaviour real tuners get from their evaluation caches and the behaviour the
        paper assumes when plotting convergence against unique function evaluations.
    """

    name = "random"

    def __init__(self, seed: int | None = None, without_replacement: bool = True):
        super().__init__(seed=seed)
        self.without_replacement = without_replacement

    def _run(self, problem: TuningProblem, budget: Budget, rng: np.random.Generator) -> None:
        space = problem.space
        drawn: set[tuple] = set()
        # The rejection loop bails out once it has clearly run out of fresh valid
        # configurations (small spaces under large budgets).
        consecutive_rejects = 0
        max_consecutive_rejects = max(10_000, 50 * space.dimensions)
        while not self.budget_exhausted:
            index = int(rng.integers(0, space.cardinality))
            config = space.config_at(index)
            key = config_key(config)
            if self.without_replacement and key in drawn:
                consecutive_rejects += 1
                if consecutive_rejects > max_consecutive_rejects:
                    break
                continue
            if not space.is_valid(config):
                consecutive_rejects += 1
                if consecutive_rejects > max_consecutive_rejects:
                    break
                continue
            consecutive_rejects = 0
            drawn.add(key)
            if self.evaluate(config) is None:
                break
