"""Simulated annealing over the configuration neighbourhood graph.

A classic global optimizer for rugged discrete landscapes: a random walk that always
accepts improvements and accepts deteriorations with probability
``exp(-delta / temperature)``, where the temperature decays geometrically over the
evaluation budget.  Deterioration is measured relative to the current value, so the
acceptance behaviour adapts to each benchmark's runtime scale.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.budget import Budget
from repro.core.problem import TuningProblem
from repro.tuners.base import Tuner

__all__ = ["SimulatedAnnealing"]


class SimulatedAnnealing(Tuner):
    """Simulated annealing with geometric cooling and automatic restarts.

    Parameters
    ----------
    initial_temperature:
        Start temperature expressed as a *relative* deterioration (0.5 means a 50%
        slower neighbour is accepted with probability ``1/e`` at the start).
    cooling_rate:
        Multiplicative temperature decay applied after every evaluation.
    neighborhood:
        Neighbourhood structure passed to the search space (``"hamming"`` or
        ``"adjacent"``).
    """

    name = "annealing"

    def __init__(self, seed: int | None = None, initial_temperature: float = 0.5,
                 cooling_rate: float = 0.98, neighborhood: str = "adjacent"):
        super().__init__(seed=seed)
        if not (0.0 < cooling_rate < 1.0):
            raise ValueError("cooling_rate must lie in (0, 1)")
        if initial_temperature <= 0.0:
            raise ValueError("initial_temperature must be positive")
        self.initial_temperature = float(initial_temperature)
        self.cooling_rate = float(cooling_rate)
        self.neighborhood = neighborhood
        #: Temperature below which the walk restarts from a fresh random point.
        self.restart_temperature = 1e-3

    def _run(self, problem: TuningProblem, budget: Budget, rng: np.random.Generator) -> None:
        # The walk is index-native: the current state is a space index, neighbours
        # come from the digit-arithmetic kernels, and no configuration dictionary is
        # built anywhere in the loop.
        space = problem.space
        while not self.budget_exhausted:
            current_index = space.sample_one_index(rng=rng, valid_only=True)
            current = self.evaluate_index(current_index, valid_hint=True)
            if current is None:
                return
            temperature = self.initial_temperature
            while not self.budget_exhausted and temperature > self.restart_temperature:
                options = space.neighbor_indices(current_index,
                                                 strategy=self.neighborhood,
                                                 valid_only=True)
                if not options.size:
                    break
                neighbor = int(options[int(rng.integers(0, options.size))])
                candidate = self.evaluate_index(neighbor, valid_hint=True)
                if candidate is None:
                    return
                temperature *= self.cooling_rate
                if candidate.is_failure:
                    continue
                if current.is_failure:
                    current, current_index = candidate, neighbor
                    continue
                relative_delta = (candidate.value - current.value) / current.value
                if relative_delta <= 0.0:
                    current, current_index = candidate, neighbor
                elif rng.random() < math.exp(-relative_delta / max(temperature, 1e-9)):
                    current, current_index = candidate, neighbor
