"""Surrogate-model-based search (SMAC-style sequential model-based optimization).

The tuner alternates between fitting a gradient-boosted-tree regression model (the same
model family SMAC3 and the paper's CatBoost analysis use) on all observations so far,
and evaluating the candidate configurations the model predicts to be fastest (with an
exploration fraction of pure random picks).  This is the in-repo stand-in for the
model-based optimizers (SMAC3, Optuna's TPE) the paper integrates through its adapter
interface.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.budget import Budget
from repro.core.errors import EmptySearchSpaceError
from repro.core.problem import TuningProblem
from repro.core.searchspace import config_key
from repro.tuners.base import Tuner

__all__ = ["SurrogateSearch"]


class SurrogateSearch(Tuner):
    """Sequential model-based optimization with a GBDT surrogate.

    Parameters
    ----------
    initial_samples:
        Random configurations evaluated before the first model fit.
    batch_size:
        Configurations evaluated per model refit.
    candidate_pool:
        Random candidates scored by the surrogate per iteration.
    exploration_fraction:
        Fraction of each batch drawn uniformly at random instead of from the model's
        ranking (keeps the model from collapsing onto one basin).
    n_estimators / max_depth / learning_rate:
        Hyper-parameters of the underlying GBDT surrogate.
    """

    name = "surrogate"

    def __init__(self, seed: int | None = None, initial_samples: int = 20,
                 batch_size: int = 5, candidate_pool: int = 500,
                 exploration_fraction: float = 0.2, n_estimators: int = 60,
                 max_depth: int = 4, learning_rate: float = 0.15):
        super().__init__(seed=seed)
        self.initial_samples = max(int(initial_samples), 2)
        self.batch_size = max(int(batch_size), 1)
        self.candidate_pool = max(int(candidate_pool), 10)
        self.exploration_fraction = float(exploration_fraction)
        self.n_estimators = int(n_estimators)
        self.max_depth = int(max_depth)
        self.learning_rate = float(learning_rate)

    # --------------------------------------------------------------------- helpers

    @staticmethod
    def _sample_up_to(space, n: int, rng: np.random.Generator) -> list[dict[str, Any]]:
        """Up to ``n`` unique valid configurations, degrading gracefully on tiny spaces."""
        n = min(n, space.cardinality)
        try:
            return space.sample(n, rng=rng, valid_only=True, unique=True)
        except EmptySearchSpaceError:
            if space.cardinality <= 100_000:
                return list(space.enumerate(valid_only=True))
            return space.sample(n, rng=rng, valid_only=True, unique=False)

    def _fit_surrogate(self, space, X: np.ndarray, y: np.ndarray):
        """Fit the GBDT surrogate on log-runtimes (log compresses the heavy tail)."""
        from repro.ml.gbdt import GradientBoostingRegressor

        model = GradientBoostingRegressor(n_estimators=self.n_estimators,
                                          max_depth=self.max_depth,
                                          learning_rate=self.learning_rate,
                                          random_state=0)
        model.fit(X, np.log(np.maximum(y, 1e-12)))
        return model

    # -------------------------------------------------------------------- main loop

    def _run(self, problem: TuningProblem, budget: Budget, rng: np.random.Generator) -> None:
        space = problem.space
        X_rows: list[np.ndarray] = []
        y_vals: list[float] = []
        evaluated: set[tuple] = set()

        def _record(config: dict[str, Any]) -> bool:
            obs = self.evaluate(config)
            if obs is None:
                return False
            evaluated.add(config_key(config))
            if not obs.is_failure:
                X_rows.append(space.encode(config))
                y_vals.append(obs.value)
            return True

        for config in self._sample_up_to(space, self.initial_samples, rng):
            if not _record(config):
                return

        while not self.budget_exhausted:
            if len(y_vals) < 4:
                # Too few successful measurements to fit anything useful; explore.
                if not _record(space.sample_one(rng=rng, valid_only=True)):
                    return
                continue
            model = self._fit_surrogate(space, np.vstack(X_rows), np.asarray(y_vals))
            candidates = [c for c in self._sample_up_to(space, self.candidate_pool, rng)
                          if config_key(c) not in evaluated]
            if not candidates:
                if not _record(space.sample_one(rng=rng, valid_only=True)):
                    return
                continue
            predictions = model.predict(space.encode_batch(candidates))
            ranking = np.argsort(predictions)

            batch: list[dict[str, Any]] = []
            n_explore = int(round(self.batch_size * self.exploration_fraction))
            n_exploit = self.batch_size - n_explore
            batch.extend(candidates[int(i)] for i in ranking[:n_exploit])
            if n_explore and len(candidates) > n_exploit:
                rest = ranking[n_exploit:]
                picks = rng.choice(len(rest), size=min(n_explore, len(rest)), replace=False)
                batch.extend(candidates[int(rest[int(p)])] for p in picks)

            for config in batch:
                if not _record(config):
                    return
