"""Surrogate-model-based search (SMAC-style sequential model-based optimization).

The tuner alternates between fitting a gradient-boosted-tree regression model (the same
model family SMAC3 and the paper's CatBoost analysis use) on all observations so far,
and evaluating the candidate configurations the model predicts to be fastest (with an
exploration fraction of pure random picks).  This is the in-repo stand-in for the
model-based optimizers (SMAC3, Optuna's TPE) the paper integrates through its adapter
interface.

Bookkeeping is incremental and index-native: the training matrix lives in one
capacity-doubling buffer that grows a row per successful observation (the seed
implementation re-stacked the whole history every refit -- O(n^2) over a run), the
``evaluated`` set keys on integer space indices, and candidate pools are featurized
straight from the value columns
(:meth:`~repro.core.searchspace.SearchSpace.encode_indices`) without ever building a
configuration dictionary.
"""

from __future__ import annotations

import numpy as np

from repro.core.budget import Budget
from repro.core.errors import EmptySearchSpaceError
from repro.core.problem import TuningProblem
from repro.tuners.base import Tuner

__all__ = ["SurrogateSearch"]


class SurrogateSearch(Tuner):
    """Sequential model-based optimization with a GBDT surrogate.

    Parameters
    ----------
    initial_samples:
        Random configurations evaluated before the first model fit.
    batch_size:
        Configurations evaluated per model refit.
    candidate_pool:
        Random candidates scored by the surrogate per iteration.
    exploration_fraction:
        Fraction of each batch drawn uniformly at random instead of from the model's
        ranking (keeps the model from collapsing onto one basin).
    n_estimators / max_depth / learning_rate:
        Hyper-parameters of the underlying GBDT surrogate.
    """

    name = "surrogate"

    def __init__(self, seed: int | None = None, initial_samples: int = 20,
                 batch_size: int = 5, candidate_pool: int = 500,
                 exploration_fraction: float = 0.2, n_estimators: int = 60,
                 max_depth: int = 4, learning_rate: float = 0.15):
        super().__init__(seed=seed)
        self.initial_samples = max(int(initial_samples), 2)
        self.batch_size = max(int(batch_size), 1)
        self.candidate_pool = max(int(candidate_pool), 10)
        self.exploration_fraction = float(exploration_fraction)
        self.n_estimators = int(n_estimators)
        self.max_depth = int(max_depth)
        self.learning_rate = float(learning_rate)

    # --------------------------------------------------------------------- helpers

    @staticmethod
    def _sample_indices_up_to(space, n: int, rng: np.random.Generator) -> np.ndarray:
        """Up to ``n`` unique valid indices, degrading gracefully on tiny spaces."""
        n = min(n, space.cardinality)
        try:
            return space.sample_indices(n, rng=rng, valid_only=True, unique=True)
        except EmptySearchSpaceError:
            if space.cardinality <= 100_000:
                blocks = list(space.enumerate_chunked(valid_only=True))
                return (np.concatenate(blocks) if blocks
                        else np.empty(0, dtype=np.int64))
            return space.sample_indices(n, rng=rng, valid_only=True, unique=False)

    def _fit_surrogate(self, space, X: np.ndarray, y: np.ndarray):
        """Fit the GBDT surrogate on log-runtimes (log compresses the heavy tail)."""
        from repro.ml.gbdt import GradientBoostingRegressor

        model = GradientBoostingRegressor(n_estimators=self.n_estimators,
                                          max_depth=self.max_depth,
                                          learning_rate=self.learning_rate,
                                          random_state=0)
        model.fit(X, np.log(np.maximum(y, 1e-12)))
        return model

    # -------------------------------------------------------------------- main loop

    def _run(self, problem: TuningProblem, budget: Budget, rng: np.random.Generator) -> None:
        space = problem.space
        # Incremental training buffers: one row per successful observation, capacity
        # doubled on demand.  The model always fits on the first n_rows rows, so no
        # per-refit re-encoding or re-stacking of the history ever happens.
        capacity = max(2 * self.initial_samples, 64)
        X_buf = np.empty((capacity, space.dimensions), dtype=float)
        y_buf = np.empty(capacity, dtype=float)
        n_rows = 0
        evaluated: set[int] = set()

        def _record(index: int) -> bool:
            nonlocal capacity, X_buf, y_buf, n_rows
            obs = self.evaluate_index(index, valid_hint=True)
            if obs is None:
                return False
            evaluated.add(index)
            if not obs.is_failure:
                if n_rows == capacity:
                    capacity *= 2
                    X_buf = np.resize(X_buf, (capacity, space.dimensions))
                    y_buf = np.resize(y_buf, capacity)
                X_buf[n_rows] = space.encode_indices([index])[0]
                y_buf[n_rows] = obs.value
                n_rows += 1
            return True

        for index in self._sample_indices_up_to(space, self.initial_samples,
                                                rng).tolist():
            if not _record(index):
                return

        while not self.budget_exhausted:
            if n_rows < 4:
                # Too few successful measurements to fit anything useful; explore.
                if not _record(space.sample_one_index(rng=rng, valid_only=True)):
                    return
                continue
            model = self._fit_surrogate(space, X_buf[:n_rows], y_buf[:n_rows])
            pool = self._sample_indices_up_to(space, self.candidate_pool, rng)
            candidates = [i for i in pool.tolist() if i not in evaluated]
            if not candidates:
                if not _record(space.sample_one_index(rng=rng, valid_only=True)):
                    return
                continue
            predictions = model.predict(space.encode_indices(candidates))
            ranking = np.argsort(predictions)

            batch: list[int] = []
            n_explore = int(round(self.batch_size * self.exploration_fraction))
            n_exploit = self.batch_size - n_explore
            batch.extend(candidates[int(i)] for i in ranking[:n_exploit])
            if n_explore and len(candidates) > n_exploit:
                rest = ranking[n_exploit:]
                picks = rng.choice(len(rest), size=min(n_explore, len(rest)), replace=False)
                batch.extend(candidates[int(rest[int(p)])] for p in picks)

            for index in batch:
                if not _record(index):
                    return
