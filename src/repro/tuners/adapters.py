"""External-tuner adapter protocol.

The paper's framework "facilitates easy integration of new autotuners ... by defining a
shared problem interface" and ships adapters for Optuna, SMAC3, Kernel Tuner and KTT.
None of those frameworks are available in this offline reproduction, so this module
provides (a) the adapter protocol itself -- the thin translation layer an external
framework needs in order to consume a :class:`~repro.core.problem.TuningProblem` -- and
(b) concrete adapters for the frameworks the paper names, each of which transparently
falls back to an equivalent in-repo optimizer when its framework cannot be imported.

The protocol is intentionally tiny.  An external framework integration needs three
things, and nothing else:

1. a *space translation*: :func:`space_to_choices` renders the search space as the
   "categorical choices per parameter name" structure every HPO framework understands;
2. an *objective callback*: :func:`objective_callback` wraps the problem's evaluation
   (invalid configurations return ``inf``, matching how the paper's tuners penalise
   failed compilations);
3. a *result translation*: the adapter returns a standard
   :class:`~repro.core.result.TuningResult`, so every downstream analysis works
   unchanged.
"""

from __future__ import annotations

import importlib
import math
from typing import Any, Callable, Mapping

import numpy as np

from repro.core.budget import Budget
from repro.core.problem import TuningProblem
from repro.tuners.base import Tuner
from repro.tuners.genetic import GeneticAlgorithm
from repro.tuners.random_search import RandomSearch
from repro.tuners.surrogate import SurrogateSearch

__all__ = [
    "space_to_choices",
    "objective_callback",
    "ExternalTunerAdapter",
    "OptunaAdapter",
    "SMAC3Adapter",
    "KernelTunerAdapter",
    "KTTAdapter",
    "available_external_frameworks",
]


def space_to_choices(problem: TuningProblem) -> dict[str, list[Any]]:
    """Render the search space as ``{parameter_name: [allowed values]}``.

    This is the lowest common denominator all hyper-parameter-optimization frameworks
    accept (Optuna's ``suggest_categorical``, SMAC's ``CategoricalHyperparameter``,
    Kernel Tuner's ``tune_params`` dictionary, KTT's ``AddParameter``).
    """
    return {p.name: list(p.values) for p in problem.space.parameters}


def objective_callback(problem: TuningProblem) -> Callable[[Mapping[str, Any]], float]:
    """An objective function ``config -> runtime`` suitable for external frameworks.

    Invalid configurations return ``math.inf`` instead of raising, because most HPO
    frameworks abort a study on exceptions but handle infinite losses gracefully.
    """
    def _objective(config: Mapping[str, Any]) -> float:
        observation = problem.evaluate(config)
        return observation.value if not observation.is_failure else math.inf

    return _objective


class ExternalTunerAdapter(Tuner):
    """Base adapter: use an external framework if importable, else a fallback tuner.

    Subclasses set :attr:`framework_module` (the import that must succeed) and
    :attr:`fallback_factory` (the in-repo optimizer that emulates the framework's
    search behaviour).  When the framework is present, subclasses override
    :meth:`_run_external`; the default implementation raises, making the fallback the
    effective behaviour everywhere the framework is missing -- which is the case in
    this offline reproduction.
    """

    #: Name of the module whose importability signals that the framework is installed.
    framework_module: str = ""

    #: Factory for the in-repo optimizer used when the framework is unavailable.
    fallback_factory: Callable[..., Tuner] = RandomSearch

    def __init__(self, seed: int | None = None, **fallback_options: Any):
        super().__init__(seed=seed)
        self._fallback_options = fallback_options

    # ------------------------------------------------------------------ capability

    @classmethod
    def framework_available(cls) -> bool:
        """True when the external framework can be imported in this environment."""
        if not cls.framework_module:
            return False
        try:
            importlib.import_module(cls.framework_module)
        except ImportError:
            return False
        return True

    # ------------------------------------------------------------------- execution

    def _run_external(self, problem: TuningProblem, budget: Budget,
                      rng: np.random.Generator) -> None:
        """Drive the external framework (only called when it is importable)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement a native driver; "
            "the in-repo fallback optimizer is used instead")

    def _run(self, problem: TuningProblem, budget: Budget, rng: np.random.Generator) -> None:
        if self.framework_available():
            try:
                self._run_external(problem, budget, rng)
                return
            except NotImplementedError:
                pass
        fallback = self.fallback_factory(**self._fallback_options)
        self._share_run_state(fallback)
        try:
            fallback._run(problem, budget, rng)
        finally:
            self._clear_run_state(fallback)


class OptunaAdapter(ExternalTunerAdapter):
    """Adapter slot for Optuna (TPE sampler); falls back to the GBDT surrogate search."""

    name = "optuna"
    framework_module = "optuna"
    fallback_factory = SurrogateSearch


class SMAC3Adapter(ExternalTunerAdapter):
    """Adapter slot for SMAC3 (random-forest SMBO); falls back to the GBDT surrogate search."""

    name = "smac3"
    framework_module = "smac"
    fallback_factory = SurrogateSearch


class KernelTunerAdapter(ExternalTunerAdapter):
    """Adapter slot for Kernel Tuner; falls back to the genetic algorithm.

    Kernel Tuner's default strategy portfolio is dominated by evolutionary methods,
    so the GA is the closest in-repo stand-in.
    """

    name = "kernel_tuner"
    framework_module = "kernel_tuner"
    fallback_factory = GeneticAlgorithm


class KTTAdapter(ExternalTunerAdapter):
    """Adapter slot for the Kernel Tuning Toolkit (KTT); falls back to random search.

    KTT's reference searcher is uniform random sampling, which the fallback matches.
    """

    name = "ktt"
    framework_module = "pyktt"
    fallback_factory = RandomSearch


def available_external_frameworks() -> dict[str, bool]:
    """Importability of every external framework the paper integrates with."""
    adapters: tuple[type[ExternalTunerAdapter], ...] = (
        OptunaAdapter, SMAC3Adapter, KernelTunerAdapter, KTTAdapter)
    return {adapter.name: adapter.framework_available() for adapter in adapters}
