"""Deterministic measurement noise.

Real kernel timings jitter run to run (clock boost behaviour, DRAM refresh, other
tenants of the machine).  The suite reproduces that with a *deterministic* noise model:
the multiplicative perturbation applied to a configuration's modelled runtime is a pure
function of (device, benchmark, configuration, repetition), derived from a stable hash.
Determinism matters because the analyses compare caches across architectures and
because tests must be reproducible bit-for-bit.

Two kinds of noise are provided:

* *configuration noise* (default ~1.5% lognormal): persistent, per-configuration model
  error -- the analytical model never captures every microarchitectural effect, and
  this keeps the performance landscape realistically rugged (important for the
  fitness-flow-graph / centrality analysis, which counts local minima);
* *measurement jitter* (default ~0.3% lognormal): per-repetition timing noise, applied
  when a caller asks for repeated observations of the same configuration.
"""

from __future__ import annotations

import hashlib
import math
import struct
from typing import Any, Mapping

__all__ = ["stable_hash", "lognormal_factor", "config_noise", "measurement_jitter"]


def stable_hash(*parts: Any) -> int:
    """A 64-bit hash of the given parts that is stable across processes and runs.

    Python's built-in ``hash`` is salted per process, so it cannot be used for
    reproducible noise.  Configurations are rendered as sorted ``key=value`` strings.
    """
    h = hashlib.blake2b(digest_size=8)
    for part in parts:
        if isinstance(part, Mapping):
            rendered = ",".join(f"{k}={part[k]}" for k in sorted(part))
        else:
            rendered = repr(part)
        h.update(rendered.encode("utf-8"))
        h.update(b"\x1f")
    return struct.unpack("<Q", h.digest())[0]


def _uniform_from_hash(value: int) -> float:
    """Map a 64-bit hash to a uniform float in (0, 1)."""
    return (value % (2**53)) / float(2**53) or 0.5 / float(2**53)


def lognormal_factor(seed_hash: int, sigma: float) -> float:
    """A deterministic lognormal(0, sigma) multiplicative factor from a hash.

    Uses the Box-Muller transform on two uniforms derived from the hash, so the
    factor's distribution matches ``exp(N(0, sigma))`` over the space of inputs.
    """
    if sigma <= 0:
        return 1.0
    u1 = _uniform_from_hash(seed_hash)
    u2 = _uniform_from_hash(stable_hash(seed_hash, "second"))
    z = math.sqrt(-2.0 * math.log(u1)) * math.cos(2.0 * math.pi * u2)
    return math.exp(sigma * z)


def config_noise(gpu_name: str, benchmark: str, config: Mapping[str, Any],
                 sigma: float = 0.015) -> float:
    """Persistent multiplicative model-error factor for one configuration."""
    return lognormal_factor(stable_hash("config", gpu_name, benchmark, config), sigma)


def measurement_jitter(gpu_name: str, benchmark: str, config: Mapping[str, Any],
                       repetition: int, sigma: float = 0.003) -> float:
    """Per-repetition multiplicative timing jitter."""
    return lognormal_factor(
        stable_hash("jitter", gpu_name, benchmark, config, repetition), sigma)
