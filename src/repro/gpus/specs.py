"""Architecture specifications of the simulated GPUs.

The four devices mirror the paper's testbed: two Turing-family GPUs (RTX 2080 Ti and
RTX Titan, both TU102) and two Ampere-family GPUs (RTX 3060 / GA106 and RTX 3090 /
GA102).  The numbers are datasheet values; they are the *inputs* of the analytical
performance model, and the family structure (Turing vs Ampere differ in cores per SM,
maximum resident threads per SM, shared-memory capacity and bandwidth/compute ratio)
is what produces the paper's portability result: configurations transfer well within a
family and poorly across families.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["GPUSpec", "all_gpus", "RTX_2080_TI", "RTX_3060", "RTX_3090", "RTX_TITAN"]


@dataclass(frozen=True)
class GPUSpec:
    """Datasheet-level description of one GPU.

    Attributes
    ----------
    name:
        Canonical identifier used throughout the suite (e.g. ``"RTX_3090"``).
    architecture:
        Family name (``"Turing"`` or ``"Ampere"`` for the paper's devices).
    compute_capability:
        CUDA compute capability, e.g. ``(7, 5)``.
    sm_count:
        Number of streaming multiprocessors.
    cores_per_sm:
        FP32 CUDA cores per SM (64 on Turing, 128 on Ampere).
    boost_clock_mhz:
        Boost clock; the model assumes kernels run at boost.
    memory_bandwidth_gb_s:
        Peak DRAM bandwidth in GB/s.
    l2_cache_kb:
        L2 cache size in KiB.
    shared_mem_per_sm_kb / shared_mem_per_block_kb:
        Shared-memory capacity per SM and the per-block limit.
    registers_per_sm / max_registers_per_thread:
        Register file size (32-bit registers) per SM and the per-thread cap.
    max_threads_per_block / max_threads_per_sm / max_blocks_per_sm / warp_size:
        CUDA launch limits used by the occupancy calculator.
    fp32_tflops:
        Peak single-precision throughput.
    preferred_vector_width:
        The widest global-memory vector access that still improves effective
        bandwidth on this device (model calibration knob; wider accesses on Ampere
        benefit more because of its 128-byte sectors and larger L1).
    """

    name: str
    architecture: str
    compute_capability: tuple[int, int]
    sm_count: int
    cores_per_sm: int
    boost_clock_mhz: float
    memory_bandwidth_gb_s: float
    l2_cache_kb: int
    shared_mem_per_sm_kb: float
    shared_mem_per_block_kb: float
    registers_per_sm: int
    max_registers_per_thread: int
    max_threads_per_block: int
    max_threads_per_sm: int
    max_blocks_per_sm: int
    warp_size: int
    fp32_tflops: float
    memory_size_gb: float
    preferred_vector_width: int
    kernel_launch_overhead_us: float = 5.0

    # ------------------------------------------------------------------ derived

    @property
    def total_cores(self) -> int:
        """Total FP32 cores on the device."""
        return self.sm_count * self.cores_per_sm

    @property
    def max_warps_per_sm(self) -> int:
        """Maximum resident warps per SM."""
        return self.max_threads_per_sm // self.warp_size

    @property
    def peak_flops(self) -> float:
        """Peak FP32 FLOP/s (FMA counted as two operations)."""
        return self.fp32_tflops * 1e12

    @property
    def peak_bandwidth_bytes(self) -> float:
        """Peak DRAM bandwidth in bytes/s."""
        return self.memory_bandwidth_gb_s * 1e9

    @property
    def flops_per_byte(self) -> float:
        """Machine balance: FLOPs the device can do per byte of DRAM traffic."""
        return self.peak_flops / self.peak_bandwidth_bytes

    def is_same_family(self, other: "GPUSpec") -> bool:
        """True when both devices belong to the same architecture family."""
        return self.architecture == other.architecture

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable description."""
        return {
            "name": self.name,
            "architecture": self.architecture,
            "compute_capability": list(self.compute_capability),
            "sm_count": self.sm_count,
            "cores_per_sm": self.cores_per_sm,
            "boost_clock_mhz": self.boost_clock_mhz,
            "memory_bandwidth_gb_s": self.memory_bandwidth_gb_s,
            "l2_cache_kb": self.l2_cache_kb,
            "shared_mem_per_sm_kb": self.shared_mem_per_sm_kb,
            "shared_mem_per_block_kb": self.shared_mem_per_block_kb,
            "registers_per_sm": self.registers_per_sm,
            "max_registers_per_thread": self.max_registers_per_thread,
            "max_threads_per_block": self.max_threads_per_block,
            "max_threads_per_sm": self.max_threads_per_sm,
            "max_blocks_per_sm": self.max_blocks_per_sm,
            "warp_size": self.warp_size,
            "fp32_tflops": self.fp32_tflops,
            "memory_size_gb": self.memory_size_gb,
            "preferred_vector_width": self.preferred_vector_width,
        }


# --------------------------------------------------------------------------- devices
# Turing family -- TU102.  64 FP32 cores per SM, 64 KiB shared memory per SM,
# at most 1024 resident threads per SM (CC 7.5), 16 blocks per SM.

RTX_2080_TI = GPUSpec(
    name="RTX_2080_Ti",
    architecture="Turing",
    compute_capability=(7, 5),
    sm_count=68,
    cores_per_sm=64,
    boost_clock_mhz=1545.0,
    memory_bandwidth_gb_s=616.0,
    l2_cache_kb=5632,
    shared_mem_per_sm_kb=64.0,
    shared_mem_per_block_kb=48.0,
    registers_per_sm=65536,
    max_registers_per_thread=255,
    max_threads_per_block=1024,
    max_threads_per_sm=1024,
    max_blocks_per_sm=16,
    warp_size=32,
    fp32_tflops=13.45,
    memory_size_gb=11.0,
    preferred_vector_width=4,
)

RTX_TITAN = GPUSpec(
    name="RTX_Titan",
    architecture="Turing",
    compute_capability=(7, 5),
    sm_count=72,
    cores_per_sm=64,
    boost_clock_mhz=1770.0,
    memory_bandwidth_gb_s=672.0,
    l2_cache_kb=6144,
    shared_mem_per_sm_kb=64.0,
    shared_mem_per_block_kb=48.0,
    registers_per_sm=65536,
    max_registers_per_thread=255,
    max_threads_per_block=1024,
    max_threads_per_sm=1024,
    max_blocks_per_sm=16,
    warp_size=32,
    fp32_tflops=16.31,
    memory_size_gb=24.0,
    preferred_vector_width=4,
)

# Ampere family -- GA106 / GA102.  128 FP32 cores per SM, up to 100 KiB shared memory
# per SM, 1536 resident threads per SM (CC 8.6), 16 blocks per SM.

RTX_3060 = GPUSpec(
    name="RTX_3060",
    architecture="Ampere",
    compute_capability=(8, 6),
    sm_count=28,
    cores_per_sm=128,
    boost_clock_mhz=1777.0,
    memory_bandwidth_gb_s=360.0,
    l2_cache_kb=3072,
    shared_mem_per_sm_kb=100.0,
    shared_mem_per_block_kb=99.0,
    registers_per_sm=65536,
    max_registers_per_thread=255,
    max_threads_per_block=1024,
    max_threads_per_sm=1536,
    max_blocks_per_sm=16,
    warp_size=32,
    fp32_tflops=12.74,
    memory_size_gb=12.0,
    preferred_vector_width=8,
)

RTX_3090 = GPUSpec(
    name="RTX_3090",
    architecture="Ampere",
    compute_capability=(8, 6),
    sm_count=82,
    cores_per_sm=128,
    boost_clock_mhz=1695.0,
    memory_bandwidth_gb_s=936.0,
    l2_cache_kb=6144,
    shared_mem_per_sm_kb=100.0,
    shared_mem_per_block_kb=99.0,
    registers_per_sm=65536,
    max_registers_per_thread=255,
    max_threads_per_block=1024,
    max_threads_per_sm=1536,
    max_blocks_per_sm=16,
    warp_size=32,
    fp32_tflops=35.58,
    memory_size_gb=24.0,
    preferred_vector_width=8,
)


def all_gpus() -> dict[str, GPUSpec]:
    """The four GPUs of the paper's testbed, keyed by canonical name."""
    return {
        RTX_2080_TI.name: RTX_2080_TI,
        RTX_3060.name: RTX_3060,
        RTX_3090.name: RTX_3090,
        RTX_TITAN.name: RTX_TITAN,
    }
