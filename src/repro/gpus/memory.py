"""Memory-hierarchy model.

The analytical kernel models express their memory behaviour as "bytes moved from DRAM"
plus a set of *efficiency* factors describing how well the access pattern uses the
hardware: coalescing, vectorised accesses, the read-only (texture) cache path, L2
reuse, and shared-memory bank conflicts.  This module centralises those factors so the
per-kernel models stay small and the calibration knobs live in one place.

All functions are pure and cheap (a handful of floating-point operations) because they
run inside the innermost loop of exhaustive campaigns covering up to ~10^5 evaluated
configurations per device.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.gpus.specs import GPUSpec

__all__ = [
    "MemoryTraffic",
    "coalescing_efficiency",
    "vector_access_efficiency",
    "read_only_cache_factor",
    "l2_reuse_factor",
    "bank_conflict_factor",
    "dram_time_ms",
    "shared_memory_bytes",
]


@dataclass(frozen=True)
class MemoryTraffic:
    """DRAM traffic of one kernel launch, split by direction.

    Attributes
    ----------
    read_bytes / write_bytes:
        Bytes moved from / to DRAM assuming perfect caching of reused data.
    efficiency:
        Combined access efficiency in ``(0, 1]``; effective bandwidth is
        ``peak * efficiency``.
    """

    read_bytes: float
    write_bytes: float
    efficiency: float = 1.0

    @property
    def total_bytes(self) -> float:
        """Total DRAM traffic in bytes."""
        return self.read_bytes + self.write_bytes


def coalescing_efficiency(gpu: GPUSpec, block_size_x: int) -> float:
    """Fraction of a 32-byte DRAM sector that is useful for a warp's accesses.

    Warps whose x-dimension spans at least a full warp access consecutive addresses
    and are fully coalesced.  Narrow blocks in x (the degenerate 1/2/4/8-wide blocks
    that several BAT benchmarks allow) waste most of each memory transaction.
    """
    if block_size_x >= gpu.warp_size:
        return 1.0
    # A warp is folded over several rows; only block_size_x consecutive elements per
    # row are useful out of a warp-wide transaction.  The floor reflects that the L2
    # still captures part of the wasted sectors for neighbouring rows.
    return max(block_size_x / gpu.warp_size, 0.125)


def vector_access_efficiency(gpu: GPUSpec, vector_width: int) -> float:
    """Bandwidth multiplier of vectorised loads/stores (float2/float4/...).

    Wider accesses reduce the number of memory instructions and improve achieved
    bandwidth up to the device's preferred width; widths beyond the preferred width
    increase register pressure without bandwidth benefit and are slightly penalised.
    """
    if vector_width <= 0:
        vector_width = 1
    preferred = gpu.preferred_vector_width
    if vector_width <= preferred:
        # 1 -> 0.82, preferred -> 1.0, log-shaped ramp.
        span = math.log2(preferred) if preferred > 1 else 1.0
        return 0.82 + 0.18 * (math.log2(vector_width) / span if span else 1.0)
    # Over-wide accesses: mild penalty per doubling beyond preferred.
    over = math.log2(vector_width / preferred)
    return max(1.0 - 0.06 * over, 0.7)


def read_only_cache_factor(gpu: GPUSpec, use_read_only: bool) -> float:
    """Bandwidth multiplier for routing loads through the read-only/texture path.

    The benefit is larger on Turing (smaller, unified L1) than on Ampere (bigger L1),
    which is one of the architecture-specific effects behind the paper's portability
    asymmetries.
    """
    if not use_read_only:
        return 1.0
    return 1.10 if gpu.architecture == "Turing" else 1.04


def l2_reuse_factor(gpu: GPUSpec, working_set_bytes: float) -> float:
    """Fraction of traffic served by DRAM after L2 reuse.

    Working sets that fit in L2 are served mostly from cache; the factor approaches a
    floor of 0.35 (DRAM still has to be touched once).  Working sets much larger than
    L2 see no reuse (factor 1.0).
    """
    l2_bytes = gpu.l2_cache_kb * 1024.0
    if working_set_bytes <= 0:
        return 1.0
    ratio = working_set_bytes / l2_bytes
    if ratio <= 1.0:
        return 0.35 + 0.30 * ratio
    # Smooth decay of reuse as the working set overflows L2.
    return min(1.0, 0.65 + 0.35 * (1.0 - 1.0 / ratio))


def bank_conflict_factor(gpu: GPUSpec, block_size_x: int, use_padding: bool,
                         banks: int = 32) -> float:
    """Shared-memory slowdown factor caused by bank conflicts (>= 1).

    Mirrors the Convolution kernel's padding optimisation: when ``block_size_x`` is
    not a multiple of the number of banks, unpadded shared-memory tiles suffer
    conflicts; padding removes them at a negligible footprint cost.
    """
    if use_padding or block_size_x % banks == 0:
        return 1.0
    # Conflict degree grows as the stride's gcd with the bank count shrinks.
    g = math.gcd(block_size_x, banks)
    degree = banks // g
    return 1.0 + 0.05 * min(degree, 8)


def dram_time_ms(gpu: GPUSpec, traffic: MemoryTraffic) -> float:
    """Time to move ``traffic`` at the achieved bandwidth, in milliseconds."""
    efficiency = min(max(traffic.efficiency, 1e-3), 1.0)
    achieved = gpu.peak_bandwidth_bytes * efficiency
    return traffic.total_bytes / achieved * 1e3


def shared_memory_bytes(elements: float, element_size: int = 4,
                        padding_elements: float = 0.0) -> float:
    """Shared-memory footprint of a tile in bytes."""
    return (elements + padding_elements) * element_size
