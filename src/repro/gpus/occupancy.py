"""CUDA occupancy calculator.

Occupancy -- the ratio of resident warps to the maximum the SM supports -- is the single
most important latency-hiding metric on NVIDIA GPUs, and most of the interesting
interactions between tuning parameters (block size x unroll factor x shared-memory
usage) act through it: larger tiles and deeper unrolling raise per-thread register and
shared-memory demands, which lowers the number of blocks the SM can keep resident,
which in turn reduces the hardware's ability to hide memory latency.

The calculation follows the standard CUDA occupancy rules: the number of resident
blocks per SM is the minimum of four limits (block-count limit, warp limit, register
limit, shared-memory limit), and occupancy is then resident warps over maximum warps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.errors import ResourceLimitError
from repro.gpus.specs import GPUSpec

__all__ = ["OccupancyResult", "compute_occupancy"]


@dataclass(frozen=True)
class OccupancyResult:
    """Outcome of an occupancy calculation for one launch configuration.

    Attributes
    ----------
    blocks_per_sm:
        Resident thread blocks per SM (0 when the block cannot launch at all).
    active_warps:
        Resident warps per SM.
    occupancy:
        ``active_warps / max_warps_per_sm`` in ``[0, 1]``.
    limiting_factor:
        Which resource bound the block count (``"blocks"``, ``"warps"``,
        ``"registers"``, ``"shared_memory"`` or ``"launch_bounds"``).
    warps_per_block:
        Warps needed by one block (ceil of threads / warp size).
    """

    blocks_per_sm: int
    active_warps: int
    occupancy: float
    limiting_factor: str
    warps_per_block: int


def compute_occupancy(gpu: GPUSpec, threads_per_block: int, registers_per_thread: float,
                      shared_mem_per_block_bytes: float,
                      max_blocks_per_sm_hint: int = 0) -> OccupancyResult:
    """Compute the occupancy of a launch configuration on ``gpu``.

    Parameters
    ----------
    gpu:
        Target device specification.
    threads_per_block:
        Total threads in one block (product of the block dimensions).
    registers_per_thread:
        Estimated register usage per thread (the per-kernel models estimate this from
        unroll/tile factors).
    shared_mem_per_block_bytes:
        Static + dynamic shared memory requested per block.
    max_blocks_per_sm_hint:
        The ``__launch_bounds__`` / ``blocks_per_sm`` tuning parameter.  Note that the
        hint asks the compiler to *target* this many resident blocks (by limiting
        register usage); it does not limit how many blocks the hardware may keep
        resident, so it does not appear as a scheduling cap here -- its register
        effect is handled by the caller.  Zero means "no hint".

    Raises
    ------
    ResourceLimitError
        If the block can never launch on this device: too many threads per block,
        more shared memory than the per-block limit, or more registers per thread
        than the hardware cap.
    """
    if threads_per_block <= 0:
        raise ResourceLimitError("thread block must contain at least one thread",
                                 resource="threads", requested=threads_per_block, limit=1)
    if threads_per_block > gpu.max_threads_per_block:
        raise ResourceLimitError(
            f"{threads_per_block} threads per block exceeds the device limit "
            f"of {gpu.max_threads_per_block}",
            resource="threads_per_block", requested=threads_per_block,
            limit=gpu.max_threads_per_block)
    if shared_mem_per_block_bytes > gpu.shared_mem_per_block_kb * 1024:
        raise ResourceLimitError(
            f"{shared_mem_per_block_bytes / 1024:.1f} KiB shared memory per block exceeds "
            f"the device limit of {gpu.shared_mem_per_block_kb} KiB",
            resource="shared_memory", requested=shared_mem_per_block_bytes,
            limit=gpu.shared_mem_per_block_kb * 1024)
    registers_per_thread = max(registers_per_thread, 1.0)
    if registers_per_thread > gpu.max_registers_per_thread:
        # Real compilers spill to local memory instead of failing; the per-kernel
        # models apply a spill penalty.  Here we clamp so occupancy stays defined.
        registers_per_thread = float(gpu.max_registers_per_thread)

    warps_per_block = math.ceil(threads_per_block / gpu.warp_size)

    # The four CUDA limits on resident blocks per SM.
    limit_blocks = gpu.max_blocks_per_sm
    limit_warps = gpu.max_warps_per_sm // warps_per_block
    regs_per_block = registers_per_thread * warps_per_block * gpu.warp_size
    limit_registers = int(gpu.registers_per_sm // regs_per_block) if regs_per_block > 0 else limit_blocks
    if shared_mem_per_block_bytes > 0:
        limit_shared = int((gpu.shared_mem_per_sm_kb * 1024) // shared_mem_per_block_bytes)
    else:
        limit_shared = limit_blocks

    limits = {
        "blocks": limit_blocks,
        "warps": limit_warps,
        "registers": limit_registers,
        "shared_memory": limit_shared,
    }

    limiting_factor = min(limits, key=lambda k: limits[k])
    blocks_per_sm = max(limits[limiting_factor], 0)
    active_warps = blocks_per_sm * warps_per_block
    occupancy = min(active_warps / gpu.max_warps_per_sm, 1.0)

    return OccupancyResult(
        blocks_per_sm=int(blocks_per_sm),
        active_warps=int(active_warps),
        occupancy=float(occupancy),
        limiting_factor=limiting_factor,
        warps_per_block=int(warps_per_block),
    )
