"""Simulated GPU substrate.

The paper measures kernels on four physical NVIDIA GPUs.  This subpackage replaces the
hardware with an analytical substrate:

* :mod:`repro.gpus.specs` -- datasheet-level architecture specifications of the four
  devices (RTX 2080 Ti, RTX Titan, RTX 3060, RTX 3090);
* :mod:`repro.gpus.occupancy` -- a CUDA occupancy calculator (warps, registers, shared
  memory, block limits);
* :mod:`repro.gpus.memory` -- a memory-hierarchy traffic/efficiency model;
* :mod:`repro.gpus.noise` -- deterministic, seeded measurement noise;
* :mod:`repro.gpus.perfmodel` -- the base analytical kernel performance model the
  per-kernel models in :mod:`repro.kernels` build on.
"""

from repro.gpus.specs import GPUSpec, all_gpus, RTX_2080_TI, RTX_3060, RTX_3090, RTX_TITAN
from repro.gpus.occupancy import OccupancyResult, compute_occupancy
from repro.gpus.perfmodel import KernelLaunchConfig, ModelEstimate, AnalyticalKernelModel

__all__ = [
    "GPUSpec",
    "all_gpus",
    "RTX_2080_TI",
    "RTX_3060",
    "RTX_3090",
    "RTX_TITAN",
    "OccupancyResult",
    "compute_occupancy",
    "KernelLaunchConfig",
    "ModelEstimate",
    "AnalyticalKernelModel",
]
